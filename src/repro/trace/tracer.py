"""Deterministic structured tracing and aggregated metrics.

The tracer is a *pure observer* of the simulation: layers emit semantic
events (a thread switched in, the governor changed a cluster frequency,
a perf event was rotated out) into a ring buffer, stamped with the
simulated clock.  Three contracts make it safe to thread through the
whole stack:

* **Zero overhead when disabled.**  ``Machine(trace=None)`` keeps every
  holder's ``tracer`` attribute ``None``; emission sites are guarded by
  one attribute load and a ``None`` test.

* **Pure observer.**  Emitting never mutates simulated state, and every
  holder excludes its ``tracer`` from ``state_digest`` — a traced run
  and an untraced run of the same workload digest equal, bit for bit.

* **Fastpath parity.**  The macro-tick engine replays steady ticks
  without running the scheduler or the perf accrual hooks, so events
  are either *transition-only* (they can only fire on ticks that break
  a batch: placement changes, control ops, multiplex slot changes,
  PMU-mismatch transitions, overflow samples) or emitted from code that
  runs live during replay (DVFS, thermal, RAPL).  The parity suite
  asserts ``fastpath=True`` and ``fastpath=False`` produce identical
  event sequences.

Events are plain tuples ``(ts_s, category, name, tid, cpu, args)`` —
``tid``/``cpu`` are ``None`` when not applicable, ``args`` is ``None``
or a JSON-safe dict.  Categories and names must not contain whitespace
(the text dump in :mod:`repro.trace.export` is whitespace-delimited).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.checkpoint.surface import snapshot_surface

#: Every known event category, in emission-layer order.
CATEGORIES = ("sched", "perf", "papi", "dvfs", "thermal", "rapl", "fault")

#: One trace event: (ts_s, category, name, tid, cpu, args).
TraceEvent = tuple[float, str, str, Optional[int], Optional[int], Optional[dict]]


@dataclass(frozen=True)
@snapshot_surface(
    state=("categories", "capacity", "rapl_sample_every"),
    note="Pure configuration: enabled categories, ring capacity, and "
    "the RAPL energy-sample cadence in ticks.",
)
class TraceConfig:
    """Static tracer configuration (immutable, picklable)."""

    categories: tuple[str, ...] = CATEGORIES
    #: Ring-buffer capacity; older events are dropped (and counted).
    capacity: int = 65536
    #: Emit one RAPL energy sample every N ticks (RAPL steps per tick).
    rapl_sample_every: int = 25


def _bucket(value: float) -> int:
    """Power-of-two histogram bucket: the binary exponent of ``value``.

    ``frexp`` is exact IEEE-754 arithmetic, so bucketing is
    deterministic; non-positive values share the underflow bucket.
    """
    if value <= 0.0 or not math.isfinite(value):
        return -1075  # below the smallest subnormal exponent
    return math.frexp(value)[1]


@snapshot_surface(
    state=("counters", "gauges", "histograms"),
    note="Aggregated observability state keyed (metric name, key) — "
    "typically a core-type name.  Carried by the owning Tracer, so it "
    "shares the tracer's digest exclusion at every holder.",
)
class MetricsRegistry:
    """Counters, gauges and power-of-two histograms.

    Keys are ``(name, key)`` pairs; ``key`` is a free-form dimension,
    conventionally a core-type or PMU name so heterogeneous attribution
    falls out of the keying.
    """

    def __init__(self) -> None:
        self.counters: dict[tuple[str, Optional[str]], float] = {}
        self.gauges: dict[tuple[str, Optional[str]], float] = {}
        self.histograms: dict[tuple[str, Optional[str]], dict[int, int]] = {}

    def counter(
        self, name: str, key: Optional[str] = None, inc: float = 1.0
    ) -> None:
        k = (name, key)
        self.counters[k] = self.counters.get(k, 0.0) + inc

    def gauge(self, name: str, key: Optional[str] = None, value: float = 0.0) -> None:
        self.gauges[(name, key)] = value

    def observe(self, name: str, key: Optional[str] = None, value: float = 0.0) -> None:
        k = (name, key)
        h = self.histograms.get(k)
        if h is None:
            h = self.histograms[k] = {}
        b = _bucket(value)
        h[b] = h.get(b, 0) + 1

    def as_dict(self) -> dict:
        """JSON-able snapshot, keys flattened to ``name|key`` strings."""

        def flat(d: dict) -> dict:
            return {
                (name if key is None else f"{name}|{key}"): v
                for (name, key), v in sorted(
                    d.items(), key=lambda item: (item[0][0], item[0][1] or "")
                )
            }

        return {
            "counters": flat(self.counters),
            "gauges": flat(self.gauges),
            "histograms": {
                k: {str(b): n for b, n in sorted(h.items())}
                for k, h in flat(self.histograms).items()
            },
        }


@snapshot_surface(
    state=(
        "clock",
        "config",
        "events",
        "dropped",
        "metrics",
        "sched",
        "perf",
        "papi",
        "dvfs",
        "thermal",
        "rapl",
        "fault",
        "_rapl_left",
    ),
    note="The tracer is serialized (a restored run carries its prefix "
    "events, so checkpoint stitching is automatic) but every holder "
    "digest-excludes it: tracing is a pure observer and must not "
    "perturb state_digest parity.",
)
class Tracer:
    """Ring-buffered event sink plus aggregated metrics.

    Per-category enablement is exposed as plain bool attributes
    (``tracer.sched`` ...) so hot emission sites pay one attribute load,
    not a set lookup.
    """

    def __init__(self, clock, config: Optional[TraceConfig] = None) -> None:
        if config is None:
            config = TraceConfig()
        bad = [c for c in config.categories if c not in CATEGORIES]
        if bad:
            raise ValueError(
                f"unknown trace categories {bad}; known: {list(CATEGORIES)}"
            )
        self.clock = clock
        self.config = config
        self.events: deque = deque(maxlen=config.capacity)
        self.dropped = 0
        self.metrics = MetricsRegistry()
        enabled = frozenset(config.categories)
        # Explicit per-category flags (not a setattr loop) so the
        # SURFACE-DECL contract sees every attribute this class owns.
        self.sched = "sched" in enabled
        self.perf = "perf" in enabled
        self.papi = "papi" in enabled
        self.dvfs = "dvfs" in enabled
        self.thermal = "thermal" in enabled
        self.rapl = "rapl" in enabled
        self.fault = "fault" in enabled
        self._rapl_left = 1

    # -- emission -----------------------------------------------------------

    def emit(
        self,
        cat: str,
        name: str,
        tid: Optional[int] = None,
        cpu: Optional[int] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Append one event stamped with the current simulated time.

        Callers are responsible for the category-enabled check (it is
        the zero-overhead guard); ``args`` must be JSON-safe.
        """
        events = self.events
        if len(events) == events.maxlen:
            self.dropped += 1
        events.append((self.clock.now_s, cat, name, tid, cpu, args))

    def rapl_sample(self, rapl, package_w: float) -> None:
        """Cadenced RAPL energy sample, called from ``RaplPackage.step``.

        The cadence counter lives *here* (not in RAPL state) so it is
        digest-excluded with the tracer; RAPL steps every tick on both
        engine paths, so the cadence is path-identical.
        """
        self._rapl_left -= 1
        if self._rapl_left > 0:
            return
        self._rapl_left = self.config.rapl_sample_every
        self.emit(
            "rapl",
            "energy",
            args={
                "package_j": rapl.package.energy_j,
                "cores_j": rapl.cores.energy_j,
                "dram_j": rapl.dram.energy_j,
                "package_w": package_w,
            },
        )
        m = self.metrics
        m.gauge("rapl.energy_j", key=rapl.package.name, value=rapl.package.energy_j)
        m.observe("rapl.package_w", key=rapl.package.name, value=package_w)

    # -- introspection ------------------------------------------------------

    def events_list(self) -> list[TraceEvent]:
        return list(self.events)

    def by_category(self, cat: str) -> list[TraceEvent]:
        return [ev for ev in self.events if ev[1] == cat]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def summary(self) -> dict:
        """JSON-able run summary: volumes per category plus metrics."""
        per_cat: dict[str, int] = {}
        for ev in self.events:
            per_cat[ev[1]] = per_cat.get(ev[1], 0) + 1
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "by_category": dict(sorted(per_cat.items())),
            "metrics": self.metrics.as_dict(),
        }


def make_tracer(trace, clock) -> Optional[Tracer]:
    """Normalize the ``System(trace=...)`` argument.

    ``None``/``False`` disable tracing; ``True`` enables everything;
    a :class:`TraceConfig` is used as-is; a sequence of category names
    enables just those categories.
    """
    if trace is None or trace is False:
        return None
    if trace is True:
        return Tracer(clock)
    if isinstance(trace, TraceConfig):
        return Tracer(clock, trace)
    if isinstance(trace, Tracer):
        raise TypeError(
            "pass a TraceConfig (or True), not a Tracer: the tracer is "
            "bound to the machine's clock at construction"
        )
    if isinstance(trace, (list, tuple)):
        return Tracer(clock, TraceConfig(categories=tuple(trace)))
    raise TypeError(f"unsupported trace argument {trace!r}")
