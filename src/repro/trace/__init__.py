"""repro-trace: deterministic structured tracing + metrics.

Entry points:

* ``System(trace=True)`` (or a :class:`TraceConfig`, or a sequence of
  category names) attaches a :class:`Tracer` to the machine; read it
  back via ``system.tracer``.
* :func:`repro.trace.export.to_chrome` / :func:`save_chrome` render a
  Perfetto-loadable Chrome trace-event JSON; :func:`to_text` /
  :func:`parse_text` are the ``perf script``-style dump and its exact
  inverse.
* ``python -m repro.trace`` (or ``tools/trace.py``) runs a workload and
  writes both formats.
"""

from repro.trace.export import parse_text, save_chrome, to_chrome, to_text
from repro.trace.tracer import (
    CATEGORIES,
    MetricsRegistry,
    TraceConfig,
    TraceEvent,
    Tracer,
    make_tracer,
)

__all__ = [
    "CATEGORIES",
    "MetricsRegistry",
    "TraceConfig",
    "TraceEvent",
    "Tracer",
    "make_tracer",
    "parse_text",
    "save_chrome",
    "to_chrome",
    "to_text",
]
