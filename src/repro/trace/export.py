"""Trace exporters: Chrome trace-event JSON and a perf-script-style dump.

``to_chrome`` renders the event tuples into the Chrome trace-event
format (the JSON array-of-objects flavour), which Perfetto and
``chrome://tracing`` load directly.  Lanes are organized as synthetic
processes:

* pid 1 ``sched`` — one track per thread; run intervals are B/E spans
  named after the CPU, migrations and hotplug are instants;
* pid 2 ``papi`` — one track per EventSet; start..stop counting windows
  are B/E spans, other API calls are instants;
* pid 3 ``hardware`` — DVFS frequencies and RAPL energy as counter
  (``ph: "C"``) series, thermal/power-limit transitions as instants;
* pid 4 ``kernel.perf`` — open/close/ioctl/read/rotation/mismatch
  instants;
* pid 5 ``faults`` — injector firings.

``to_text`` is the ``perf script`` analogue: one whitespace-delimited
line per event with a JSON args tail, and ``parse_text`` round-trips it
exactly (floats via ``repr``, args via ``json``).
"""

from __future__ import annotations

import json
import math
from typing import Optional

PID_SCHED = 1
PID_PAPI = 2
PID_HW = 3
PID_PERF = 4
PID_FAULT = 5

_PROCESS_NAMES = {
    PID_SCHED: "sched",
    PID_PAPI: "papi",
    PID_HW: "hardware",
    PID_PERF: "kernel.perf",
    PID_FAULT: "faults",
}

#: Sub-microsecond slack so zero-duration spans still render.
_MIN_SPAN_US = 0.0


def _json_safe(value):
    """Replace non-finite floats (NaN reads after sensor faults) so the
    emitted document is strict JSON that Perfetto accepts."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def to_chrome(events, label: str = "repro-trace") -> dict:
    """Render events into a Chrome trace-event JSON document (dict)."""
    out: list[dict] = []
    depth: dict[tuple[int, int], int] = {}
    last_us = 0.0

    def record(
        ph: str,
        ts_us: float,
        pid: int,
        tid: int,
        name: str,
        cat: str,
        args: Optional[dict] = None,
    ) -> None:
        entry = {
            "ph": ph,
            "ts": ts_us,
            "pid": pid,
            "tid": tid,
            "name": name,
            "cat": cat,
        }
        if args is not None:
            entry["args"] = _json_safe(args)
        if ph == "i":
            entry["s"] = "t"  # thread-scoped instant
        out.append(entry)

    def begin(ts_us: float, pid: int, tid: int, name: str, cat: str, args=None) -> None:
        record("B", ts_us, pid, tid, name, cat, args)
        depth[(pid, tid)] = depth.get((pid, tid), 0) + 1

    def end(ts_us: float, pid: int, tid: int, cat: str, args=None) -> None:
        if depth.get((pid, tid), 0) <= 0:
            return  # orphan end (span began before the ring's horizon)
        depth[(pid, tid)] -= 1
        record("E", ts_us, pid, tid, "", cat, args)

    for ts, cat, name, tid, cpu, args in events:
        us = ts * 1e6
        last_us = us
        if cat == "sched":
            t = tid if tid is not None else 0
            if name == "switch_in":
                begin(us, PID_SCHED, t, f"run cpu{cpu}", cat, args)
            elif name == "switch_out":
                end(us, PID_SCHED, t, cat)
            else:  # migrate / exit / hotplug_*
                record("i", us, PID_SCHED, t, name, cat, args)
        elif cat == "papi":
            esid = (args or {}).get("esid", 0)
            if name == "start":
                begin(us, PID_PAPI, esid, "counting", cat, args)
            elif name == "stop":
                end(us, PID_PAPI, esid, cat, args)
            else:
                record("i", us, PID_PAPI, esid, name, cat, args)
        elif cat == "dvfs":
            cluster = (args or {}).get("cluster", 0)
            record(
                "C",
                us,
                PID_HW,
                0,
                f"freq_mhz[{(args or {}).get('core_type', cluster)}]",
                cat,
                {"mhz": (args or {}).get("to_mhz", 0.0)},
            )
        elif cat == "rapl" and name == "energy":
            record(
                "C",
                us,
                PID_HW,
                0,
                "rapl_energy_j",
                cat,
                {
                    "package": (args or {}).get("package_j", 0.0),
                    "cores": (args or {}).get("cores_j", 0.0),
                    "dram": (args or {}).get("dram_j", 0.0),
                },
            )
        elif cat in ("thermal", "rapl"):
            record("i", us, PID_HW, 0, name, cat, args)
        elif cat == "perf":
            record("i", us, PID_PERF, tid if tid is not None else 0, name, cat, args)
        elif cat == "fault":
            record("i", us, PID_FAULT, 0, name, cat, args)
        else:  # future categories degrade to generic instants
            record("i", us, PID_HW, tid if tid is not None else 0, name, cat, args)

    # Close spans still open at the trace horizon so B/E stay balanced.
    for (pid, tid), n in sorted(depth.items()):
        for _ in range(n):
            record("E", last_us + _MIN_SPAN_US, pid, tid, "", "trace")
        depth[(pid, tid)] = 0

    for pid, name in _PROCESS_NAMES.items():
        out.append(
            {
                "ph": "M",
                "ts": 0.0,
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "cat": "__metadata",
                "args": {"name": name},
            }
        )
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"generator": label},
    }


def save_chrome(path: str, events, label: str = "repro-trace") -> None:
    """Write a Perfetto-loadable ``.trace.json`` file."""
    with open(path, "w") as fh:
        json.dump(to_chrome(events, label=label), fh, indent=1)
        fh.write("\n")


# -- text dump ---------------------------------------------------------------

_TEXT_HEADER = "# repro-trace v1: ts category name tid=<n|-> cpu=<n|-> args-json"


def to_text(events) -> str:
    """``perf script``-style dump: one line per event, exact round-trip.

    Timestamps are ``repr`` floats (round-trip exactly), args a compact
    JSON object or ``-`` when absent.
    """
    lines = [_TEXT_HEADER]
    for ts, cat, name, tid, cpu, args in events:
        tid_s = "-" if tid is None else str(tid)
        cpu_s = "-" if cpu is None else str(cpu)
        args_s = (
            "-"
            if args is None
            else json.dumps(args, separators=(",", ":"))
        )
        lines.append(f"{ts!r} {cat} {name} tid={tid_s} cpu={cpu_s} {args_s}")
    return "\n".join(lines) + "\n"


def parse_text(text: str) -> list:
    """Parse a :func:`to_text` dump back into event tuples."""
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            ts_s, cat, name, tid_s, cpu_s, args_s = line.split(" ", 5)
            if not (tid_s.startswith("tid=") and cpu_s.startswith("cpu=")):
                raise ValueError("malformed tid/cpu fields")
            tid = None if tid_s == "tid=-" else int(tid_s[4:])
            cpu = None if cpu_s == "cpu=-" else int(cpu_s[4:])
            args = None if args_s == "-" else json.loads(args_s)
            events.append((float(ts_s), cat, name, tid, cpu, args))
        except ValueError as exc:
            raise ValueError(f"bad trace line {lineno}: {line!r} ({exc})") from None
    return events
