"""Command-line trace capture: run a canned workload, export the trace.

Equivalent launcher: ``python tools/trace.py``.  Examples::

    python -m repro.trace run --workload migrate --chrome out.trace.json
    python -m repro.trace run --workload hpl --seconds 2 --text out.trace.txt

``--chrome`` output loads directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``; ``--text`` is the ``perf script``-style dump
that :func:`repro.trace.parse_text` round-trips.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.trace.tracer import CATEGORIES, TraceConfig
from repro.trace.export import save_chrome, to_text


def _build_system(ns):
    from repro.system import System

    categories = (
        CATEGORIES
        if ns.categories is None
        else tuple(c.strip() for c in ns.categories.split(",") if c.strip())
    )
    return System(
        ns.machine,
        dt_s=ns.dt_s,
        seed=ns.seed,
        migrate_jitter=ns.migrate_jitter,
        fastpath=not ns.no_fastpath,
        trace=TraceConfig(categories=categories, capacity=ns.capacity),
    )


def _workload_hpl(system, ns) -> None:
    """A small HPL factorization on all cores (the paper's benchmark)."""
    from repro.hpl import HplConfig, run_hpl

    run_hpl(system, HplConfig(n=2048, nb=128), max_s=ns.seconds)


def _workload_migrate(system, ns) -> None:
    """Unpinned compute threads with a PAPI EventSet attached — the
    paper's cross-core-migration counting scenario."""
    from repro.papi import Papi
    from repro.sim.task import Program, SimThread
    from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

    rates = constant_rates(
        PhaseRates(
            ipc=2.0,
            flops_per_instr=0.5,
            llc_refs_per_instr=0.01,
            llc_miss_rate=0.3,
            l2_refs_per_instr=0.05,
            l2_miss_rate=0.2,
        )
    )
    papi = Papi(system)
    threads = [
        system.machine.spawn(
            SimThread(f"w{i}", Program([ComputePhase(1e12, rates)]))
        )
        for i in range(3)
    ]
    es = papi.create_eventset()
    papi.attach(es, threads[0])
    papi.add_event(es, "PAPI_TOT_INS")
    papi.start(es)
    system.machine.run_for(ns.seconds)
    papi.stop(es)
    papi.destroy_eventset(es)


WORKLOADS = {"hpl": _workload_hpl, "migrate": _workload_migrate}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Capture and export simulator traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="trace a canned workload")
    run.add_argument("--machine", default="raptor-lake-i7-13700")
    run.add_argument("--workload", choices=sorted(WORKLOADS), default="migrate")
    run.add_argument("--seconds", type=float, default=1.0)
    run.add_argument("--dt-s", type=float, default=0.01)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--migrate-jitter",
        type=float,
        default=0.02,
        help="per-tick probability of an interference migration",
    )
    run.add_argument(
        "--categories",
        default=None,
        help=f"comma-separated subset of {','.join(CATEGORIES)}",
    )
    run.add_argument("--capacity", type=int, default=65536)
    run.add_argument("--chrome", metavar="PATH", help="write Perfetto JSON")
    run.add_argument("--text", metavar="PATH", help="write the text dump")
    run.add_argument(
        "--no-fastpath", action="store_true", help="force single-tick stepping"
    )
    ns = parser.parse_args(argv)

    system = _build_system(ns)
    WORKLOADS[ns.workload](system, ns)
    tracer = system.tracer
    if ns.chrome:
        save_chrome(ns.chrome, tracer.events_list(), label=f"repro:{ns.workload}")
    if ns.text:
        with open(ns.text, "w") as fh:
            fh.write(to_text(tracer.events_list()))
    json.dump(tracer.summary(), sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
