"""Multi-run aggregation — the ``process_runs.py`` artifact analog.

The paper performs 10 identical HPL runs (each preceded by a thermal
settle) and averages them into one representative run.  Traces of
slightly different lengths are resampled onto a common time grid before
averaging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.monitor.sampler import SampleTrace


@dataclass
class AggregatedTrace:
    """The average of several runs' traces on a common grid."""

    n_runs: int
    times_s: np.ndarray
    freq_mhz: dict[str, np.ndarray] = field(default_factory=dict)
    temp_c: np.ndarray = field(default_factory=lambda: np.empty(0))
    package_w: np.ndarray = field(default_factory=lambda: np.empty(0))

    def median_freq_ghz(self, label: str) -> float:
        return float(np.median(self.freq_mhz[label])) / 1000.0

    def peak_power_w(self) -> float:
        return float(self.package_w.max()) if self.package_w.size else 0.0

    def steady_power_w(self, tail_frac: float = 0.5) -> float:
        if not self.package_w.size:
            return 0.0
        tail = self.package_w[int(len(self.package_w) * (1 - tail_frac)):]
        return float(tail.mean())


def _resample(t_src: np.ndarray, y_src: np.ndarray, t_dst: np.ndarray) -> np.ndarray:
    if len(t_src) == 0:
        return np.zeros_like(t_dst)
    return np.interp(t_dst, t_src, y_src)


def aggregate_traces(traces: Sequence[SampleTrace]) -> AggregatedTrace:
    """Average N traces onto the grid of the shortest run."""
    if not traces:
        raise ValueError("need at least one trace")
    shortest = min(traces, key=lambda tr: tr.times_s[-1] if tr.times_s else 0.0)
    grid = np.asarray(shortest.times_s)
    agg = AggregatedTrace(n_runs=len(traces), times_s=grid)
    labels = set()
    for tr in traces:
        labels.update(tr.freq_mhz)
    for label in sorted(labels):
        stack = [
            _resample(
                np.asarray(tr.times_s), np.asarray(tr.freq_mhz.get(label, [])), grid
            )
            for tr in traces
            if tr.freq_mhz.get(label)
        ]
        if stack:
            agg.freq_mhz[label] = np.mean(stack, axis=0)
    agg.temp_c = np.mean(
        [_resample(np.asarray(tr.times_s), np.asarray(tr.temp_c), grid) for tr in traces],
        axis=0,
    )
    agg.package_w = np.mean(
        [
            _resample(np.asarray(tr.times_s), np.asarray(tr.package_w), grid)
            for tr in traces
        ],
        axis=0,
    )
    return agg
