"""Monitoring tools: the paper's data-acquisition scripts, in-sim.

* :mod:`repro.monitor.sampler` — the ``mon_hpl.py`` analog: 1 Hz polling
  of core frequencies, thermal zones and RAPL energy during a run.
* :mod:`repro.monitor.perf_stat` — a miniature ``perf stat`` built
  directly on the simulated kernel (the heterogeneous-aware baseline
  tool the paper contrasts PAPI with).
* :mod:`repro.monitor.process_runs` — the ``process_runs.py`` analog:
  aggregate N identical runs into one averaged run.
"""

from repro.monitor.sampler import Sampler, SampleTrace, monitored_run
from repro.monitor.perf_stat import PerfStat, PerfStatResult, perf_stat_threads
from repro.monitor.perf_record import PerfRecord, PerfRecordReport
from repro.monitor.process_runs import AggregatedTrace, aggregate_traces

__all__ = [
    "Sampler",
    "SampleTrace",
    "monitored_run",
    "PerfStat",
    "PerfStatResult",
    "perf_stat_threads",
    "PerfRecord",
    "PerfRecordReport",
    "AggregatedTrace",
    "aggregate_traces",
]
