"""A miniature ``perf record``/``perf report`` over the simulated kernel.

The paper notes the perf tool supports "statistically sampled values";
this is that mode: sampling events (one per core-type PMU, perf's hybrid
behaviour) fire every N counted events, and the report aggregates the
samples by PMU and CPU — showing *where* a workload ran, which on a
hybrid machine is the first question.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.kernel.perf.attr import PerfEventAttr
from repro.kernel.perf.event import PerfSample
from repro.kernel.perf.subsystem import PerfIoctl
from repro.pfmlib.library import Pfmlib
from repro.sim.task import SimThread
from repro.system import System


@dataclass
class PerfRecordReport:
    """Aggregated samples."""

    samples: list[PerfSample] = field(default_factory=list)
    lost: int = 0

    @property
    def total(self) -> int:
        return len(self.samples)

    def by_pmu(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.samples:
            out[s.pmu] = out.get(s.pmu, 0) + 1
        return out

    def by_cpu(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for s in self.samples:
            out[s.cpu] = out.get(s.cpu, 0) + 1
        return out

    def share(self, pmu: str) -> float:
        return self.by_pmu().get(pmu, 0) / self.total if self.total else 0.0

    def render(self) -> str:
        lines = [f"{self.total} samples ({self.lost} lost)"]
        for pmu, n in sorted(self.by_pmu().items(), key=lambda kv: -kv[1]):
            lines.append(f"  {n / self.total * 100 if self.total else 0:6.2f}%  {pmu}")
        return "\n".join(lines)


class PerfRecord:
    """Samples an event for a set of threads, one fd per core-type PMU."""

    def __init__(
        self,
        system: System,
        event: str = "INST_RETIRED",
        period: int = 100_000,
        pfm: Pfmlib | None = None,
    ):
        self.system = system
        self.event = event
        self.period = period
        self.pfm = pfm if pfm is not None else Pfmlib(system)
        self._fds: list[int] = []

    def attach(self, threads: Sequence[SimThread]) -> None:
        for info in self.pfm.find_all_matches(self.event):
            attr = PerfEventAttr(
                type=self.pfm.kernel_pmu_type(info),
                config=info.config,
                sample_period=self.period,
                name=info.fullname,
            )
            for t in threads:
                fd = self.system.perf.perf_event_open(attr, pid=t.tid, cpu=-1)
                self.system.perf.ioctl(fd, PerfIoctl.ENABLE)
                self._fds.append(fd)

    def report(self) -> PerfRecordReport:
        rep = PerfRecordReport()
        for fd in self._fds:
            ev = self.system.perf._event(fd)
            rep.samples.extend(ev.read_samples())
            rep.lost += ev.lost_samples
        rep.samples.sort(key=lambda s: s.time_s)
        return rep

    def close(self) -> None:
        for fd in self._fds:
            self.system.perf.close(fd)
        self._fds.clear()
