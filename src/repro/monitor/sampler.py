"""1 Hz run monitoring — the ``mon_hpl.py`` artifact analog.

Polls, at a fixed period, exactly what the paper's script reads from
sysfs: per-cluster CPU frequency (``scaling_cur_freq``), the thermal zone
temperature, RAPL energy counters (on machines that have them), and
instantaneous package power.  It also implements the methodology detail
of waiting for the package temperature to settle (35 degC in the paper)
before starting a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TypeVar

import numpy as np

from repro.checkpoint.surface import snapshot_surface
from repro.hw.sensor import SensorReadError
from repro.system import System

T = TypeVar("T")


@dataclass
class SampleTrace:
    """Time series collected by one monitored run."""

    period_s: float
    times_s: list[float] = field(default_factory=list)
    freq_mhz: dict[str, list[float]] = field(default_factory=dict)  # per cluster label
    temp_c: list[float] = field(default_factory=list)
    package_w: list[float] = field(default_factory=list)
    energy_j: list[float] = field(default_factory=list)
    wall_power_w: list[float] = field(default_factory=list)  # meter incl. board

    def as_arrays(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {
            "t": np.asarray(self.times_s),
            "temp_c": np.asarray(self.temp_c),
            "package_w": np.asarray(self.package_w),
            "energy_j": np.asarray(self.energy_j),
            "wall_power_w": np.asarray(self.wall_power_w),
        }
        for label, series in self.freq_mhz.items():
            out[f"freq_{label}_mhz"] = np.asarray(series)
        return out

    def median_freq_ghz(self, label: str) -> float:
        series = self.freq_mhz.get(label)
        if not series:
            raise KeyError(f"no frequency series {label!r}")
        return float(np.median(series)) / 1000.0

    def peak_power_w(self) -> float:
        return max(self.package_w) if self.package_w else 0.0

    def steady_power_w(self, tail_frac: float = 0.5) -> float:
        """Mean power over the last ``tail_frac`` of the run."""
        if not self.package_w:
            return 0.0
        tail = self.package_w[int(len(self.package_w) * (1 - tail_frac)):]
        return float(np.mean(tail))

    def max_temp_c(self) -> float:
        return max(self.temp_c) if self.temp_c else 0.0


@snapshot_surface(
    state=(
        "system",
        "period_s",
        "trace",
        "_next_sample_s",
        "_active",
        "_t0",
        "_last_energy_j",
        "_last_energy_t",
    ),
    note="All state: the accumulated trace, sampling phase "
    "(_next_sample_s, _t0) and energy baselines.  Snapshot a sampler "
    "together with its system (one composite payload) so the tick-hook "
    "bound method stays shared, not duplicated."
)
class Sampler:
    """Registers a tick hook and records samples every ``period_s``."""

    def __init__(self, system: System, period_s: float = 1.0):
        self.system = system
        self.period_s = period_s
        self.trace = SampleTrace(period_s=period_s)
        self._next_sample_s = 0.0
        self._active = False
        self._t0 = 0.0
        self._last_energy_j: Optional[float] = None
        self._last_energy_t: float = 0.0
        system.machine.tick_hooks.append(self._on_tick)

    def start(self) -> None:
        self._active = True
        self._t0 = self.system.machine.now_s
        self._next_sample_s = self._t0
        self._last_energy_j = None

    def stop(self) -> SampleTrace:
        self._active = False
        return self.trace

    def _on_tick(self, machine) -> None:
        if not self._active or machine.now_s + 1e-12 < self._next_sample_s:
            return
        self._next_sample_s += self.period_s
        trace = self.trace
        trace.times_s.append(machine.now_s - self._t0)
        for i, cl in enumerate(machine.topology.clusters):
            label = cl.ctype.name
            trace.freq_mhz.setdefault(label, []).append(machine.governor.freq_mhz[i])
        # Sensors are read through their fault-aware interfaces: a
        # dropped-out sensor yields NaN samples (the script keeps running)
        # and the first good sample after an outage averages power over
        # the whole gap, not one period.
        try:
            trace.temp_c.append(machine.thermal.zone.visible_c())
        except SensorReadError:
            trace.temp_c.append(float("nan"))
        # Power is derived from energy-counter deltas, exactly like the
        # paper's mon_hpl.py computes it from RAPL readings at 1 Hz — so
        # each point is the average power over the sample period.
        try:
            energy = machine.rapl.package.visible_energy_j()
        except SensorReadError:
            trace.package_w.append(float("nan"))
            trace.wall_power_w.append(float("nan"))
            trace.energy_j.append(float("nan"))
            return
        if self._last_energy_j is None:
            power = machine.last_power.package_w if machine.last_power else 0.0
        else:
            elapsed = max(machine.now_s - self._last_energy_t, 1e-12)
            power = (energy - self._last_energy_j) / elapsed
        self._last_energy_j = energy
        self._last_energy_t = machine.now_s
        trace.package_w.append(power)
        trace.wall_power_w.append(power + machine.spec.board_base_w)
        trace.energy_j.append(energy)


def monitored_run(
    system: System,
    run_fn: Callable[[], T],
    period_s: float = 1.0,
    settle_temp_c: Optional[float] = 35.0,
) -> tuple[T, SampleTrace]:
    """The mon_hpl.py workflow: settle thermally, run, sample throughout."""
    if settle_temp_c is not None:
        system.machine.cool_down(settle_temp_c, max_s=600.0)
    sampler = Sampler(system, period_s=period_s)
    sampler.start()
    result = run_fn()
    trace = sampler.stop()
    return result, trace
