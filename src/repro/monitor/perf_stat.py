"""A miniature ``perf stat`` over the simulated kernel.

This is the tool the paper contrasts PAPI with: on a heterogeneous
machine it opens one event *per core-type PMU* and reports them all,
with time_enabled/time_running scaling — straightforward, but aggregate
only (no calipering) and needing one read syscall per PMU.

Two modes, like the real tool:

* per-thread (``perf stat <cmd>``): events follow given threads;
* system-wide (``perf stat -a``): one event per (CPU, matching PMU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.kernel.perf.attr import PerfEventAttr
from repro.kernel.perf.subsystem import PerfIoctl
from repro.pfmlib.library import Pfmlib
from repro.sim.task import SimThread
from repro.system import System


@dataclass
class PerfStatCount:
    """One (event, pmu) line of perf stat output."""

    event: str
    pmu: str
    raw: float
    scaled: float
    time_enabled_s: float
    time_running_s: float

    @property
    def multiplexed(self) -> bool:
        return self.time_running_s < self.time_enabled_s * 0.999


@dataclass
class PerfStatResult:
    counts: list[PerfStatCount] = field(default_factory=list)

    def total(self, event: str) -> float:
        return sum(c.scaled for c in self.counts if c.event == event)

    def by_pmu(self, event: str) -> dict[str, float]:
        out: dict[str, float] = {}
        for c in self.counts:
            if c.event == event:
                out[c.pmu] = out.get(c.pmu, 0.0) + c.scaled
        return out

    def render(self) -> str:
        lines = ["    count  (scaled)        event                    pmu"]
        for c in self.counts:
            mux = " [mux]" if c.multiplexed else ""
            lines.append(
                f"{c.raw:15.0f} ({c.scaled:15.0f})  {c.event:24s} {c.pmu}{mux}"
            )
        return "\n".join(lines)


class PerfStat:
    """Counts unqualified events across every core-type PMU."""

    def __init__(self, system: System, pfm: Optional[Pfmlib] = None):
        self.system = system
        self.pfm = pfm if pfm is not None else Pfmlib(system)
        self._fds: list[tuple[int, str, str]] = []  # (fd, event label, pmu)

    # -- setup ---------------------------------------------------------------

    def open_for_threads(
        self, events: Sequence[str], threads: Sequence[SimThread]
    ) -> None:
        """Per-thread mode: every event is opened once per core PMU per
        thread, the way perf handles hybrid machines."""
        for label in events:
            for info in self.pfm.find_all_matches(label):
                attr = PerfEventAttr(
                    type=self.pfm.kernel_pmu_type(info),
                    config=info.config,
                    name=info.fullname,
                )
                for t in threads:
                    fd = self.system.perf.perf_event_open(attr, pid=t.tid, cpu=-1)
                    self._fds.append((fd, label, info.pmu.name))

    def open_system_wide(self, events: Sequence[str]) -> None:
        """``perf stat -a``: one event per CPU, on that CPU's own PMU."""
        for label in events:
            for info in self.pfm.find_all_matches(label):
                ptype = self.pfm.kernel_pmu_type(info)
                pmu = self.system.perf.registry.by_type[ptype]
                attr = PerfEventAttr(type=ptype, config=info.config, name=info.fullname)
                for cpu in pmu.cpus:
                    fd = self.system.perf.perf_event_open(attr, pid=-1, cpu=cpu)
                    self._fds.append((fd, label, info.pmu.name))

    # -- control ----------------------------------------------------------------

    def start(self) -> None:
        for fd, _, _ in self._fds:
            self.system.perf.ioctl(fd, PerfIoctl.RESET)
            self.system.perf.ioctl(fd, PerfIoctl.ENABLE)

    def stop(self) -> PerfStatResult:
        result = PerfStatResult()
        for fd, label, pmu in self._fds:
            rv = self.system.perf.read(fd)
            self.system.perf.ioctl(fd, PerfIoctl.DISABLE)
            result.counts.append(
                PerfStatCount(
                    event=label,
                    pmu=pmu,
                    raw=float(rv.value),
                    scaled=rv.scaled_value(),
                    time_enabled_s=rv.time_enabled_ns / 1e9,
                    time_running_s=rv.time_running_ns / 1e9,
                )
            )
        return result

    def close(self) -> None:
        for fd, _, _ in self._fds:
            self.system.perf.close(fd)
        self._fds.clear()


def perf_stat_threads(
    system: System,
    threads: Sequence[SimThread],
    events: Sequence[str],
    run_fn,
) -> PerfStatResult:
    """Convenience: open per-thread events, run, and report."""
    tool = PerfStat(system)
    tool.open_for_threads(events, threads)
    tool.start()
    run_fn()
    result = tool.stop()
    tool.close()
    return result
