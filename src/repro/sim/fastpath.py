"""Steady-state macro-tick engine: record one tick, replay it cheaply.

The slow path executes every tick through the full scheduler / phase /
accounting machinery.  Most simulated time, however, is spent in *steady
state*: every thread stays inside the same phase, placements and DVFS
frequencies do not move, and no wake, RAPL or thermal boundary fires.
Such a tick is exactly reproducible: its entire effect on the world is a
fixed set of in-place additions (counter vectors, runtimes, perf-event
clocks) plus the hardware-controller updates (RAPL, thermal, governor)
driven by the *same* power sample.

The fast path therefore runs each tick with a :class:`TickRecorder`
attached.  The engine marks the recorder dead at the first non-steady
event (phase boundary, wake, migration, overflow sample); otherwise the
recorder ends the tick holding

* the ordered list of numeric increments the tick performed
  (``ops``), each of which is replayed as the *identical* float/int
  operation on the identical live object — so a replayed tick is
  bit-for-bit the same as a slow-path tick;
* the guards that must hold for the *next* tick to be a repeat: spin/
  sleep wake conditions still false, compute phases not completing,
  multiplexing rotation slot unchanged, DVFS frequencies unchanged;
* the (constant) inputs of the power/thermal/governor step, which is
  replayed *live* on the real objects because RAPL and thermal state are
  genuine per-tick recurrences.

:class:`FastPathEngine` drives ``run_ticks``/``run_until``: record a
tick; if it stayed steady, replay it while the guards hold, falling back
to full ticks at any boundary.  Recording is only attempted when no
unsafe hooks are registered (see ``Machine.mark_hook_fastpath_safe``)
and scheduler jitter is off — otherwise every tick runs the slow way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.workload import ChunkStream, SleepPhase

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Machine

#: The multiplexing rotation period, duplicated from the perf subsystem
#: to avoid an import cycle (asserted equal in the test suite).
MUX_ROTATION_PERIOD_S = 0.004

#: Slack for float time comparisons against tick boundaries (must match
#: the fault injector's epsilon: time guards reproduce its batch guard).
TIME_GUARD_EPS = 1e-12

#: Record-attempt backoff cap, in ticks.  Attaching a recorder to a tick
#: costs real wall time (guard bookkeeping, per-bucket vector copies in
#: the accounting flush); during sustained churn — e.g. HPL's
#: dynamic-claim stage, where some phase boundary fires almost every
#: tick — that cost buys nothing.  After a failed recording the engine
#: runs plain ticks for a geometrically growing interval before trying
#: again, so a churn-bound run costs the same as the single-tick engine.
#: Recording
#: is purely observational (a recorded tick computes bit-identical state
#: to a plain one), so the backoff schedule cannot affect results.
RECORD_BACKOFF_CAP = 32


class TickRecorder:
    """Collects one tick's increments and replay guards."""

    __slots__ = (
        "unsteady",
        "ops",
        "blocked",
        "spin_guards",
        "compute_guards",
        "mux_guards",
        "time_guards",
        "overflow_guards",
        "power_inputs",
        "freq_before",
        "freq_after",
        "_pre_sched",
        "_rt_incs",
    )

    def __init__(self):
        self.unsteady = False
        # Ordered numeric increments: ("v", array, inc_array) for numpy
        # in-place adds, ("s", obj, attr, inc) for attribute adds,
        # ("d", dict, key, inc) for dict-value adds.
        self.ops: list[tuple] = []
        self.blocked: list[tuple] = []          # (thread, SleepPhase|None)
        self.spin_guards: list = []             # until() callables
        self.compute_guards: dict = {}          # id(phase) -> [phase, incs...]
        self.mux_guards: list[tuple] = []       # (thread, rt_incs, slot, n_rot)
        self.time_guards: list[float] = []      # absolute due times (s)
        self.overflow_guards: dict = {}         # id(event) -> [event, incs...]
        self.power_inputs = None                # (sample, activity, other_w, util)
        self.freq_before: list[float] | None = None
        self.freq_after: list[float] | None = None
        self._pre_sched = None
        # Per-thread runtime increments recorded so far this tick, used to
        # predict the post-accrual runtime the mux guard must check.
        self._rt_incs: dict = {}

    # -- cells ---------------------------------------------------------------

    def vec(self, target, inc) -> None:
        self.ops.append(("v", target, inc))

    def scalar(self, obj, attr: str, inc) -> None:
        self.ops.append(("s", obj, attr, inc))

    def dict_add(self, d: dict, key, inc) -> None:
        self.ops.append(("d", d, key, inc))

    def rt_add(self, thread, time_s: float) -> None:
        """A ``total_runtime_s`` increment (tracked for mux guards)."""
        self.ops.append(("s", thread, "total_runtime_s", time_s))
        lst = self._rt_incs.get(id(thread))
        if lst is None:
            self._rt_incs[id(thread)] = [time_s]
        else:
            lst.append(time_s)

    def mux_guard(self, thread, slot: int, n_rot: int) -> None:
        """The rotation slot seen by this tick's perf dispatch must repeat."""
        incs = tuple(self._rt_incs.get(id(thread), ()))
        self.mux_guards.append((thread, incs, slot, n_rot))

    def time_guard(self, at_s: float) -> None:
        """The batch must end one tick before absolute time ``at_s``
        (a timed fault or other scheduled transition comes due there)."""
        self.time_guards.append(at_s)

    def overflow_step(self, event, inc: float) -> None:
        """An armed sampling event's count grew without crossing its
        threshold; replayed ticks repeat ``inc`` and must stop one tick
        before ``event.count`` reaches ``event._next_overflow``."""
        guard = self.overflow_guards.get(id(event))
        if guard is None:
            self.overflow_guards[id(event)] = [event, inc]
        else:
            guard.append(inc)

    # -- engine callbacks ----------------------------------------------------

    def kill(self, machine: "Machine") -> None:
        """Mark this tick non-replayable and stop recording."""
        self.unsteady = True
        machine._rec = None

    def compute_step(self, phase, executed: float) -> None:
        guard = self.compute_guards.get(id(phase))
        if guard is None:
            self.compute_guards[id(phase)] = [phase, executed]
        else:
            guard.append(executed)

    def spin_step(self, thread, until, time_s: float) -> None:
        self.spin_guards.append(until)
        self.scalar(thread, "spin_time_s", time_s)

    def note_pre_schedule(self, scheduler, runnable) -> None:
        self._pre_sched = (
            scheduler.total_switches,
            [(t.cpu, t.last_cpu, t.nr_switches, t.nr_migrations) for t in runnable],
        )

    def note_post_schedule(self, machine: "Machine", scheduler, runnable) -> None:
        total_switches0, before = self._pre_sched
        for t, (cpu0, last_cpu0, sw0, mig0) in zip(runnable, before):
            if t.cpu != cpu0 or t.last_cpu != last_cpu0 or t.nr_migrations != mig0:
                self.kill(machine)  # migration / fresh placement
                return
            if t.nr_switches != sw0:
                self.scalar(t, "nr_switches", t.nr_switches - sw0)
        if scheduler.total_switches != total_switches0:
            self.scalar(
                scheduler,
                "total_switches",
                scheduler.total_switches - total_switches0,
            )

    def steady(self) -> bool:
        return (
            not self.unsteady
            and self.power_inputs is not None
            and self.freq_before is not None
            and self.freq_before == self.freq_after
        )


class _Batch:
    """Replays one recorded steady tick while its guards hold."""

    def __init__(self, machine: "Machine", rec: TickRecorder):
        self.m = machine
        self.rec = rec
        self.freq_expect = rec.freq_after
        # Flatten compute/overflow guard chains once.
        self.computes = list(rec.compute_guards.values())
        self.overflows = list(rec.overflow_guards.values())

    def guards_hold(self) -> bool:
        """True if the next tick would repeat the recorded one exactly."""
        rec = self.rec
        now_s = self.m.clock.now_s
        if rec.time_guards:
            due = now_s + self.m.clock.dt_s + TIME_GUARD_EPS
            for at_s in rec.time_guards:
                if at_s <= due:
                    return False
        for t, phase in rec.blocked:
            if isinstance(phase, SleepPhase) and phase.until is not None:
                if phase.until():
                    return False
            if t.wake_at_s is not None and now_s >= t.wake_at_s:
                return False
            if not isinstance(phase, SleepPhase):
                return False  # would wake unconditionally
        for until in rec.spin_guards:
            if until():
                return False
        for chain in self.computes:
            r = chain[0].remaining
            for e in chain[1:]:
                if r < e:
                    return False  # would execute less and complete
                r = r - e
                if r <= 0.0:
                    return False  # would complete exactly
        for thread, rt_incs, slot, n_rot in rec.mux_guards:
            r = thread.total_runtime_s
            for inc in rt_incs:
                r = r + inc
            if int(r / MUX_ROTATION_PERIOD_S) % n_rot != slot:
                return False
        for chain in self.overflows:
            event = chain[0]
            threshold = event._next_overflow
            if threshold is None:
                continue
            c = event.count
            for inc in chain[1:]:
                c = c + inc
            if c >= threshold:
                return False  # next tick would cross and emit a sample
        return True

    def apply_tick(self) -> bool:
        """Replay the recorded tick; returns False if the batch must end
        afterwards (DVFS frequency moved for the next tick)."""
        m = self.m
        rec = self.rec
        for op in rec.ops:
            kind = op[0]
            if kind == "v":
                target = op[1]
                target += op[2]
            elif kind == "s":
                _, obj, attr, inc = op
                setattr(obj, attr, getattr(obj, attr) + inc)
            else:
                _, d, key, inc = op
                d[key] = d[key] + inc
        for chain in self.computes:
            phase = chain[0]
            r = phase.remaining
            for e in chain[1:]:
                r = r - e
            phase.remaining = r
        sample, cluster_activity, other_w, cluster_util = rec.power_inputs
        dt = m.clock.dt_s
        m.last_power = sample
        m.rapl.step(m.governor, sample.package_w, sample.cores_w, sample.dram_w, dt)
        m.thermal.step(sample.package_w, dt)
        m.thermal.apply_throttling(m.governor, cluster_activity, other_w, dt)
        m.governor.update(cluster_util)
        m.clock.advance()
        return m.governor.freq_mhz == self.freq_expect


class FastPathEngine:
    """Routes ``run_ticks``/``run_until`` through macro-tick batching."""

    def __init__(self, machine: "Machine"):
        self.m = machine

    def _record_ok(self) -> bool:
        m = self.m
        sched = m.scheduler
        return (
            sched.migrate_jitter == 0.0
            and sched.rebalance_jitter == 0.0
            and m.hooks_fastpath_safe()
        )

    def _claim_in_flight(self) -> bool:
        """True while any live thread sits in a dynamic chunk stream.

        A shared-pool claim makes the tick unreplayable by definition
        (the executing slice kills the recorder anyway), but threads
        scheduled *before* the claimant would still pay full recording
        bookkeeping for nothing — so don't attach a recorder at all.
        """
        for t in self.m.threads:
            if isinstance(t.current_phase, ChunkStream):
                return True
        return False

    def run_ticks(self, n: int) -> None:
        m = self.m
        left = n
        record_ok = self._record_ok()
        skip = 0      # plain ticks to run before the next record attempt
        penalty = 1   # backoff length charged for the next failed attempt
        while left > 0:
            if left >= 2 and record_ok and skip == 0:
                if self._claim_in_flight():
                    m.tick()
                    left -= 1
                    skip = penalty
                    penalty = min(penalty * 4, RECORD_BACKOFF_CAP)
                    continue
                rec = TickRecorder()
                m._rec = rec
                try:
                    m.tick()
                finally:
                    m._rec = None
                left -= 1
                if not rec.steady():
                    # Hooks can be registered from inside control ops.
                    record_ok = self._record_ok()
                    skip = penalty
                    penalty = min(penalty * 4, RECORD_BACKOFF_CAP)
                    continue
                batch = _Batch(m, rec)
                replayed = 0
                while left > 0 and batch.guards_hold():
                    more = batch.apply_tick()
                    left -= 1
                    replayed += 1
                    if not more:
                        break
                if replayed:
                    skip, penalty = 0, 1
                else:
                    # Steady but instantly guarded-out: same as a miss.
                    skip = penalty
                    penalty = min(penalty * 4, RECORD_BACKOFF_CAP)
            else:
                m.tick()
                left -= 1
                if skip > 0:
                    skip -= 1

    def run_until(self, cond, deadline: float) -> bool:
        m = self.m
        clock = m.clock
        record_ok = self._record_ok()
        skip = 0
        penalty = 1
        while not cond():
            if clock.now_s >= deadline:
                return False
            if record_ok and skip == 0:
                if self._claim_in_flight():
                    m.tick()
                    skip = penalty
                    penalty = min(penalty * 4, RECORD_BACKOFF_CAP)
                    continue
                rec = TickRecorder()
                m._rec = rec
                try:
                    m.tick()
                finally:
                    m._rec = None
                if not rec.steady():
                    record_ok = self._record_ok()
                    skip = penalty
                    penalty = min(penalty * 4, RECORD_BACKOFF_CAP)
                    continue
                batch = _Batch(m, rec)
                replayed = 0
                while (
                    not cond()
                    and clock.now_s < deadline
                    and batch.guards_hold()
                ):
                    replayed += 1
                    if not batch.apply_tick():
                        break
                if replayed:
                    skip, penalty = 0, 1
                else:
                    skip = penalty
                    penalty = min(penalty * 4, RECORD_BACKOFF_CAP)
            else:
                m.tick()
                if skip > 0:
                    skip -= 1
        return True
