"""Event-driven engine: advance straight to the next state-changing event.

The macro-tick engine (:mod:`repro.sim.fastpath`) replays a recorded
steady tick while *polling* every guard between replays — each replayed
tick re-evaluates every spin condition, compute chain, rotation slot and
fault deadline even though none of them can fire for thousands of ticks.
The event engine keeps the same record/replay foundation (a replayed
tick is the identical sequence of float operations, so all engines
digest equal) but treats the recorded guards as *event sources*, each
able to report the number of ticks until it next fires:

* **workload phase change** — a compute chain's remaining instructions
  divided by its per-tick retirement;
* **multiplex rotation** — runtime to the next rotation-slot boundary;
* **thread wake-up** — an absolute wake time solved exactly against the
  tick grid (``now_s`` is ``ticks * dt_s``, so the crossing tick is a
  pure float comparison, not an accumulation);
* **fault firing** — the injector's next timed due-time
  (``TickRecorder.time_guards``), solved the same way;
* **overflow threshold crossing** — an armed sampling event's distance
  to ``_next_overflow`` at its recorded per-tick increment;
* **DVFS/thermal transition** — frequency moves are detected by the
  replay itself (the hardware recurrence runs live every tick).

A span drains a deterministic queue of these pending events: it leaps
guard-free to a conservative bound just short of the earliest event,
then polls tick-by-tick through the boundary so the event fires on
exactly the same tick as the single-tick engine.  Rate-based bounds
(compute, mux, overflow) are shaved by ``_SLACK`` to stay provably below
the crossing despite float rounding in the replayed accumulations;
grid-time bounds (wake, fault) are exact.  Opaque predicates — spin
``until`` conditions, conditional faults, ``run_until``'s caller
condition — cannot report a horizon and degrade that span to the
macro-tick engine's per-tick polling.

Two further optimizations ride on the event queue, both invisible to
the digest law:

* **adaptive record back-off** — recording is pure observation, so after
  a tick whose recorder was killed the engine runs plainly for an
  exponentially growing number of ticks (capped) before paying for a
  recorder again.  Unsteady workloads (HPL's work-stealing loop) stop
  paying recording overhead almost entirely.
* **cached scheduling** (installed on the machine by this engine only)
  — see :class:`SchedCache`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.fastpath import (
    MUX_ROTATION_PERIOD_S,
    TIME_GUARD_EPS,
    TickRecorder,
    _Batch,
    FastPathEngine,
)
from repro.sim.workload import SleepPhase

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Machine

#: Relative margin shaved off rate-based event horizons.  A replayed
#: accumulation drifts from ``k * step`` by at most ~``k`` ulps, so any
#: horizon below ``true_crossing * (1 - _SLACK)`` is provably on the
#: safe side for the leap lengths ``_MAX_LEAP`` permits.
_SLACK = 1e-6

#: Cap on a single guard-free leap (keeps the ``_SLACK`` safety argument
#: valid for astronomically long horizons; the span just leaps again).
_MAX_LEAP = 10 ** 9

#: Cap on the record back-off (ticks run plainly after a killed
#: recorder before the next recording attempt).
_BACKOFF_CAP = 32


class _Span(_Batch):
    """One recorded steady tick driven by its pending-event queue."""

    def __init__(self, machine: "Machine", rec: TickRecorder):
        super().__init__(machine, rec)
        # Opaque predicates force per-tick polling for the whole span.
        polling = bool(rec.spin_guards)
        if not polling:
            for _t, phase in rec.blocked:
                if not isinstance(phase, SleepPhase) or phase.until is not None:
                    polling = True
                    break
        self.polling = polling

    # -- the pending-event queue --------------------------------------------

    def _wake_crossing(self, wake: float) -> int:
        """Smallest j >= 0 with ``(ticks+j)*dt >= wake`` — the exact
        expression the wake guard evaluates (``now_s`` is ``ticks*dt``),
        so the returned tick index matches per-tick polling bit-for-bit.
        """
        clock = self.m.clock
        dt = clock.dt_s
        ticks0 = clock.ticks
        j = int((wake - clock.now_s) / dt) - 2
        if j < 0:
            j = 0
        while (ticks0 + j) * dt < wake:
            j += 1
        return j

    def _due_crossing(self, at_s: float) -> int:
        """Smallest j >= 0 where the time guard fires: the exact float
        expression ``at_s <= now + dt + eps`` the guard evaluates."""
        clock = self.m.clock
        dt = clock.dt_s
        ticks0 = clock.ticks
        j = int((at_s - clock.now_s) / dt) - 2
        if j < 0:
            j = 0
        while not (at_s <= (ticks0 + j) * dt + dt + TIME_GUARD_EPS):
            j += 1
        return j

    def horizon(self) -> int | None:
        """Ticks to the earliest pending event (None: nothing pending)."""
        rec = self.rec
        nearest: int | None = None

        # Workload phase changes: compute chains exhaust their phase.
        for chain in self.computes:
            step = 0.0
            for e in chain[1:]:
                step += e
            if step <= 0.0:
                continue
            k = int(chain[0].remaining / (step * (1.0 + _SLACK))) - 2
            if k < 0:
                k = 0
            if nearest is None or k < nearest:
                nearest = k

        # Multiplex rotation: predicted runtime crosses a slot boundary.
        for thread, rt_incs, slot, n_rot in rec.mux_guards:
            if n_rot <= 1:
                continue
            step = 0.0
            v = thread.total_runtime_s
            for inc in rt_incs:
                step += inc
                v = v + inc
            if step <= 0.0:
                continue
            boundary = (int(v / MUX_ROTATION_PERIOD_S) + 1) * MUX_ROTATION_PERIOD_S
            k = int((boundary - v) / (step * (1.0 + _SLACK))) - 2
            if k < 0:
                k = 0
            if nearest is None or k < nearest:
                nearest = k

        # Thread wake-ups: exact tick-grid crossing of the wake time.
        for t, _phase in rec.blocked:
            wake = t.wake_at_s
            if wake is None:
                continue  # sleeps forever (no until: caller's choice)
            k = self._wake_crossing(wake)
            if nearest is None or k < nearest:
                nearest = k

        # Timed faults: the guard fires one tick before the due time.
        for at_s in rec.time_guards:
            k = self._due_crossing(at_s)
            if nearest is None or k < nearest:
                nearest = k

        # Overflow crossings: counter distance to the armed threshold.
        for chain in self.overflows:
            event = chain[0]
            threshold = event._next_overflow
            if threshold is None:
                continue
            step = 0.0
            v = event.count
            for inc in chain[1:]:
                step += inc
                v = v + inc
            if step <= 0.0:
                continue
            k = int((threshold - v) / (step * (1.0 + _SLACK))) - 2
            if k < 0:
                k = 0
            if nearest is None or k < nearest:
                nearest = k

        if nearest is not None and nearest > _MAX_LEAP:
            nearest = _MAX_LEAP
        return nearest

    # -- span drivers --------------------------------------------------------

    def drive(self, left: int) -> int:
        """Replay up to ``left`` ticks; returns the ticks still owed."""
        if self.polling:
            while left > 0 and self.guards_hold():
                left -= 1
                if not self.apply_tick():
                    break
            return left
        while left > 0:
            k = self.horizon()
            k = left if k is None else min(k, left)
            if k <= 0:
                # Boundary region: step through it under full polling.
                if not self.guards_hold():
                    return left
                left -= 1
                if not self.apply_tick():
                    return left
                continue
            while k > 0:
                k -= 1
                left -= 1
                if not self.apply_tick():
                    return left
        return left

    def drive_until(self, cond, deadline: float) -> None:
        """Replay while ``cond`` is false; the caller's condition is
        opaque, so it is polled every tick even mid-leap."""
        clock = self.m.clock
        if self.polling:
            while (
                not cond()
                and clock.now_s < deadline
                and self.guards_hold()
            ):
                if not self.apply_tick():
                    return
            return
        while True:
            k = self.horizon()
            if k is not None and k <= 0:
                if not self.guards_hold():
                    return
                if cond() or clock.now_s >= deadline:
                    return
                if not self.apply_tick():
                    return
                continue
            n = _MAX_LEAP if k is None else k
            while n > 0:
                n -= 1
                if cond() or clock.now_s >= deadline:
                    return
                if not self.apply_tick():
                    return


class SchedCache:
    """Replays the scheduler's decision for pure-sticky placements.

    Installed on the machine by the event engine only (the other engines
    call the scheduler every tick, so a caching bug here is caught by
    the three-way parity matrix).  A placement is cached only when it is
    provably side-effect-free to repeat: every runnable thread single-
    occupies the CPU it was already on (``cpu == last_cpu``), so the
    scheduler's sticky pass would reproduce it with no switch/migration
    accounting, no trace emission and untouched RNG.  The per-tick
    validation re-checks identity and order of the runnable set, each
    thread's current placement, the placed core's hotplug state, and
    that the thread's affinity is the *same object* it was placed under
    (``taskset`` installs a new set, invalidating the hit).  Placements
    reached through the empty-effective-mask fallback are never cached —
    a hit requires direct affinity membership, checked at store time —
    so the identity test is strictly conservative against
    ``Scheduler._usable``.
    """

    __slots__ = ("scheduler", "assignment", "threads", "cpus", "cores",
                 "affs", "valid")

    def __init__(self, scheduler):
        self.scheduler = scheduler
        self.assignment = None
        self.threads: list = []
        self.cpus: list[int] = []
        self.cores: list = []
        self.affs: list = []
        self.valid = False

    def lookup(self, runnable: list):
        sched = self.scheduler
        if (
            not self.valid
            or sched.migrate_jitter != 0.0
            or sched.rebalance_jitter != 0.0
        ):
            return None
        threads = self.threads
        if len(runnable) != len(threads):
            return None
        cpus = self.cpus
        cores = self.cores
        affs = self.affs
        for i, t in enumerate(runnable):
            if (
                t is not threads[i]
                or t.cpu != cpus[i]
                or t.affinity is not affs[i]
                or not cores[i].online
            ):
                return None
        return self.assignment

    def store(self, runnable: list, assignment: dict) -> None:
        self.valid = False
        if len(assignment) != len(runnable):
            return  # shared or unplaced: repeating has side effects
        placement: dict[int, int] = {}
        for cpu, entries in assignment.items():
            if len(entries) != 1:
                return
            t = entries[0].thread
            if t.cpu != cpu or t.last_cpu != cpu:
                return
            aff = t.affinity
            if aff is not None and cpu not in aff:
                return  # fallback-mode placement: never cache
            placement[id(t)] = cpu
        threads = []
        cpus = []
        cores = []
        affs = []
        topo_core = self.scheduler.topology.core
        for t in runnable:
            cpu = placement.get(id(t))
            if cpu is None:
                return
            threads.append(t)
            cpus.append(cpu)
            cores.append(topo_core(cpu))
            affs.append(t.affinity)
        self.assignment = assignment
        self.threads = threads
        self.cpus = cpus
        self.cores = cores
        self.affs = affs
        self.valid = True


class EventEngine(FastPathEngine):
    """Routes ``run_ticks``/``run_until`` through event-queue spans."""

    def run_ticks(self, n: int) -> None:
        m = self.m
        left = n
        record_ok = self._record_ok()
        backoff = 0
        penalty = 1
        while left > 0:
            if left >= 2 and record_ok and backoff == 0:
                rec = TickRecorder()
                m._rec = rec
                try:
                    m.tick()
                finally:
                    m._rec = None
                left -= 1
                if not rec.steady():
                    # Hooks can be registered from inside control ops.
                    record_ok = self._record_ok()
                    backoff = penalty
                    if penalty < _BACKOFF_CAP:
                        penalty *= 2
                    continue
                penalty = 1
                left = _Span(m, rec).drive(left)
            else:
                m.tick()
                left -= 1
                if backoff > 0:
                    backoff -= 1

    def run_until(self, cond, deadline: float) -> bool:
        m = self.m
        clock = m.clock
        record_ok = self._record_ok()
        backoff = 0
        penalty = 1
        while not cond():
            if clock.now_s >= deadline:
                return False
            if record_ok and backoff == 0:
                rec = TickRecorder()
                m._rec = rec
                try:
                    m.tick()
                finally:
                    m._rec = None
                if not rec.steady():
                    record_ok = self._record_ok()
                    backoff = penalty
                    if penalty < _BACKOFF_CAP:
                        penalty *= 2
                    continue
                penalty = 1
                _Span(m, rec).drive_until(cond, deadline)
            else:
                m.tick()
                if backoff > 0:
                    backoff -= 1
        return True
