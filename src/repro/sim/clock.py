"""Virtual time."""

from __future__ import annotations

from repro.checkpoint.surface import snapshot_surface


@snapshot_surface(
    state=("dt_s", "ticks", "now_s"),
    note="Pure state (dt_s, ticks, now_s); slots-only class, pickled "
    "via the default slots protocol."
)
class SimClock:
    """Monotonic simulated time advancing in fixed ticks.

    ``now_s`` is kept as a plain attribute (recomputed as ``ticks * dt_s``
    on every advance, so it cannot drift) because it is read on hot paths
    far more often than it changes.
    """

    __slots__ = ("dt_s", "ticks", "now_s")

    def __init__(self, dt_s: float = 0.01):
        if dt_s <= 0:
            raise ValueError("tick length must be positive")
        self.dt_s = dt_s
        self.ticks = 0
        self.now_s = 0.0

    def advance(self) -> None:
        self.ticks += 1
        self.now_s = self.ticks * self.dt_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(t={self.now_s:.3f}s, dt={self.dt_s}s)"
