"""Virtual time."""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time advancing in fixed ticks."""

    def __init__(self, dt_s: float = 0.01):
        if dt_s <= 0:
            raise ValueError("tick length must be positive")
        self.dt_s = dt_s
        self.ticks = 0

    @property
    def now_s(self) -> float:
        return self.ticks * self.dt_s

    def advance(self) -> None:
        self.ticks += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(t={self.now_s:.3f}s, dt={self.dt_s}s)"
