"""Discrete-time simulation engine.

The engine advances a :class:`~repro.sim.engine.Machine` in fixed ticks
(default 10 ms).  Each tick the kernel scheduler places runnable threads
on logical CPUs, every running thread executes a slice of its current
:class:`~repro.sim.workload.WorkPhase` at the core's DVFS frequency
(generating architectural counter events), and the power, RAPL, and
thermal control loops close around the result.
"""

from repro.sim.clock import SimClock
from repro.sim.workload import (
    PhaseRates,
    WorkPhase,
    ComputePhase,
    SpinPhase,
    SleepPhase,
    SpinBarrier,
)
from repro.sim.task import SimThread, ThreadState, Program, ControlOp
from repro.sim.engine import Machine

__all__ = [
    "SimClock",
    "PhaseRates",
    "WorkPhase",
    "ComputePhase",
    "SpinPhase",
    "SleepPhase",
    "SpinBarrier",
    "SimThread",
    "ThreadState",
    "Program",
    "ControlOp",
    "Machine",
]
