"""Simulated threads and the programs they run.

A :class:`SimThread` executes phases delivered by a *work source* — any
object with ``next_phase(thread)`` returning the next
:class:`~repro.sim.workload.WorkPhase` or ``None`` when the thread is
finished.  :class:`Program` is the common source: an ordered list of
phases interleaved with :class:`ControlOp` callables that run
instantaneously at phase boundaries (this is how measured applications
make PAPI calls "from inside" the simulation, with the call overhead
injected back as extra instructions).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Iterable, Optional

import numpy as np

from repro.checkpoint.surface import snapshot_surface
from repro.hw.coretype import N_ARCH_EVENTS
from repro.sim.workload import ComputePhase, PhaseRates, WorkPhase, constant_rates


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


#: Rates used for injected overhead work (library/syscall code: scalar,
#: branchy, cache-resident).
OVERHEAD_RATES = PhaseRates(ipc=1.6, branches_per_instr=0.2, branch_miss_rate=0.02)

#: Per-class memo of which work-source protocol applies (``next_item``
#: vs ``next_phase``).  The protocol is defined by the source's class,
#: so probing with ``hasattr`` — a raised-and-caught AttributeError on
#: every miss — is paid once per class, not once per phase boundary.
_SOURCE_HAS_NEXT_ITEM: dict[type, bool] = {}


class ControlOp:
    """An instantaneous action at a phase boundary (e.g. a PAPI call)."""

    __slots__ = ("fn", "label")

    def __init__(self, fn: Callable[["SimThread"], None], label: str = "control"):
        self.fn = fn
        self.label = label


class Program:
    """A finite sequence of phases and control ops."""

    def __init__(self, items: Iterable[WorkPhase | ControlOp]):
        self._items = deque(items)

    def next_item(self) -> WorkPhase | ControlOp | None:
        return self._items.popleft() if self._items else None

    def extend(self, items: Iterable[WorkPhase | ControlOp]) -> None:
        self._items.extend(items)

    def __len__(self) -> int:
        return len(self._items)


@snapshot_surface(
    state=(
        "tid",
        "name",
        "source",
        "state",
        "cpu",
        "last_cpu",
        "affinity",
        "weight",
        "vruntime",
        "wake_at_s",
        "current_phase",
        "counters",
        "runtime_s",
        "total_runtime_s",
        "spin_time_s",
        "nr_switches",
        "nr_migrations",
        "_injected",
    ),
    note="Everything is state: run/ready/blocked status, the in-flight "
    "phase (including closure-captured coordinators and barriers), "
    "per-PMU counters, accrued runtimes, pending control ops."
)
class SimThread:
    """One schedulable thread.

    Ground-truth architectural counters are kept per PMU name (i.e. per
    core type the thread has run on) — the reference the perf/PAPI stack
    is validated against.
    """

    def __init__(
        self,
        name: str,
        source,
        affinity: Optional[set[int]] = None,
        weight: float = 1.0,
    ):
        self.name = name
        self.source = source
        self.affinity = set(affinity) if affinity is not None else None
        self.weight = weight

        self.tid: int = -1              # assigned by the engine
        self.state = ThreadState.NEW
        self.cpu: Optional[int] = None   # current CPU while RUNNING
        self.last_cpu: Optional[int] = None
        self.current_phase: Optional[WorkPhase] = None
        self.wake_at_s: Optional[float] = None

        self.counters: dict[str, np.ndarray] = {}
        self.runtime_s: dict[str, float] = {}
        self.total_runtime_s = 0.0
        self.spin_time_s = 0.0
        self.nr_switches = 0
        self.nr_migrations = 0
        self.vruntime = 0.0

        self._injected: deque[WorkPhase] = deque()

    # -- work delivery -----------------------------------------------------

    def inject(self, phase: WorkPhase) -> None:
        """Queue a phase to run before the source's next phase."""
        self._injected.append(phase)

    def inject_overhead(self, instructions: float) -> None:
        """Charge overhead work (library code, syscall entry/exit)."""
        if instructions > 0:
            self._injected.append(
                ComputePhase(instructions, constant_rates(OVERHEAD_RATES), label="overhead")
            )

    def take_next(self) -> WorkPhase | ControlOp | None:
        if self._injected:
            return self._injected.popleft()
        source = self.source
        cls = type(source)
        has_item = _SOURCE_HAS_NEXT_ITEM.get(cls)
        if has_item is None:
            has_item = hasattr(source, "next_item")
            _SOURCE_HAS_NEXT_ITEM[cls] = has_item
        if has_item:
            return source.next_item()
        return source.next_phase(self)

    # -- accounting --------------------------------------------------------

    def account(
        self, pmu_name: str, values: np.ndarray, time_s: float, rec=None
    ) -> None:
        buf = self.counters.get(pmu_name)
        if buf is None:
            buf = np.zeros(N_ARCH_EVENTS, dtype=np.float64)
            self.counters[pmu_name] = buf
        buf += values
        self.runtime_s[pmu_name] = self.runtime_s.get(pmu_name, 0.0) + time_s
        self.total_runtime_s += time_s
        if rec is not None:
            rec.vec(buf, values)
            rec.dict_add(self.runtime_s, pmu_name, time_s)
            rec.rt_add(self, time_s)

    def counters_total(self) -> np.ndarray:
        total = np.zeros(N_ARCH_EVENTS, dtype=np.float64)
        for buf in self.counters.values():
            total += buf
        return total

    def allowed_on(self, cpu_id: int) -> bool:
        return self.affinity is None or cpu_id in self.affinity

    @property
    def done(self) -> bool:
        return self.state is ThreadState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread({self.name!r}, tid={self.tid}, {self.state.value}, cpu={self.cpu})"
