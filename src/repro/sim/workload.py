"""Work phases: the unit of simulated execution.

A thread's life is a sequence of phases.  A :class:`ComputePhase` retires a
fixed number of instructions whose per-core-type execution rates come from
a ``rates_fn`` — this is where microarchitecture differences (IPC, SIMD
width, LLC behaviour) enter.  A :class:`SpinPhase` models busy-waiting at a
synchronization barrier (retiring spin-loop instructions and burning
power); a :class:`SleepPhase` blocks the thread off-CPU.

:class:`SpinBarrier` is the synchronization primitive the HPL workload
model uses between panel steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.hw.coretype import ArchEvent, CoreType, N_ARCH_EVENTS

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread

#: Intel's top-down pipeline width (slots per cycle) on Golden Cove.
TOPDOWN_SLOTS_PER_CYCLE = 6


@dataclass
class PhaseRates:
    """Execution rates of one phase on one core type.

    ``ipc`` is the *effective* retired-instruction rate (memory stalls
    already folded in — use :func:`repro.hw.cache.memory_stall_cycles` when
    deriving it).  The remaining fields translate retired instructions into
    the other architectural events.
    """

    ipc: float
    flops_per_instr: float = 0.0
    llc_refs_per_instr: float = 0.0
    llc_miss_rate: float = 0.0
    l2_refs_per_instr: float = 0.0
    l2_miss_rate: float = 0.0
    branches_per_instr: float = 0.05
    branch_miss_rate: float = 0.01

    def __post_init__(self) -> None:
        if self.ipc <= 0:
            raise ValueError("ipc must be positive")


RatesFn = Callable[[CoreType], PhaseRates]


def constant_rates(rates: PhaseRates) -> RatesFn:
    """A rates function that ignores the core type."""
    return lambda ctype: rates


def arch_event_rates(ct: CoreType, rates: PhaseRates) -> np.ndarray:
    """Per-instruction architectural event rates of a phase on ``ct``.

    This is *the* translation from :class:`PhaseRates` to the 14-slot
    architectural event vector — both the engine's accounting hot path
    (via its caches) and the validation oracle call it, so measured
    counters and analytic expectations are two integrals of the same
    function.  ``REF_CYCLES`` is time-based, not instruction-based; its
    slot stays zero here and is patched from accumulated seconds by the
    caller (engine flush / oracle runtime).
    """
    v = np.zeros(N_ARCH_EVENTS, dtype=np.float64)
    cycles_per_instr = 1.0 / rates.ipc
    v[ArchEvent.CYCLES] = cycles_per_instr
    v[ArchEvent.INSTRUCTIONS] = 1.0
    v[ArchEvent.FP_OPS] = rates.flops_per_instr
    v[ArchEvent.LLC_REFERENCES] = rates.llc_refs_per_instr
    v[ArchEvent.LLC_MISSES] = rates.llc_refs_per_instr * rates.llc_miss_rate
    v[ArchEvent.L2_REFERENCES] = rates.l2_refs_per_instr
    v[ArchEvent.L2_MISSES] = rates.l2_refs_per_instr * rates.l2_miss_rate
    v[ArchEvent.BRANCHES] = rates.branches_per_instr
    v[ArchEvent.BRANCH_MISSES] = (
        rates.branches_per_instr * rates.branch_miss_rate
    )
    v[ArchEvent.STALLED_CYCLES] = max(
        0.0, cycles_per_instr - 1.0 / ct.ipc
    )
    if ct.supports_event(ArchEvent.TOPDOWN_SLOTS):
        v[ArchEvent.TOPDOWN_SLOTS] = (
            cycles_per_instr * TOPDOWN_SLOTS_PER_CYCLE
        )
    return v


class WorkPhase:
    """Base class; engine dispatches on the concrete type."""

    __slots__ = ()


class ComputePhase(WorkPhase):
    """Retire ``instructions`` instructions, then optionally call back."""

    __slots__ = ("remaining", "total", "rates_fn", "on_complete", "label")

    def __init__(
        self,
        instructions: float,
        rates_fn: RatesFn,
        on_complete: Optional[Callable[["SimThread"], None]] = None,
        label: str = "compute",
    ):
        if instructions <= 0:
            raise ValueError("a compute phase needs a positive instruction count")
        self.remaining = float(instructions)
        self.total = float(instructions)
        self.rates_fn = rates_fn
        self.on_complete = on_complete
        self.label = label

    @property
    def done(self) -> bool:
        return self.remaining <= 0.0

    def expected_counts(self, ct: CoreType) -> np.ndarray:
        """Analytic event expectations for running this phase on ``ct``.

        The ground-truth surface of the validation oracle: the event
        vector the engine will account for this phase, computed without
        running anything.  ``REF_CYCLES`` is time-based and stays zero
        (the oracle patches it from measured runtime).
        """
        return arch_event_rates(ct, self.rates_fn(ct)) * self.total


class ChunkStream(WorkPhase):
    """A stream of equal-grain compute chunks claimed from a shared pool.

    Work-stealing runtimes (the dynamic phase of Intel's HPL build) hand
    out many small chunks from one shared pool.  Modelling each chunk as
    its own :class:`ComputePhase` makes every claim a phase boundary —
    thousands of phase objects and closure allocations per simulated
    second, all on the engine's hot path.  A ``ChunkStream`` instead
    exposes the pool itself (``pool[index]``), the claim ``grain`` and
    the flops→instruction conversion, so the engine executes the whole
    claim-execute loop fused, with the *same* arithmetic a chunk-per-
    phase run performs: ``take = min(grain, pool)``, ``pool -= take``,
    ``instructions = max(1.0, take / flops_per_instr)``.

    The pool is shared mutable state across threads, so a tick that
    claims from it is never macro-tick-replayable; the engine kills the
    tick recorder when a stream executes.  ``on_claimed`` (if given) is
    called once per executed slice with the flops claimed in that slice.

    The stream is finished when its current chunk is exhausted and the
    pool is drained (possibly by other threads).
    """

    __slots__ = (
        "pool",
        "index",
        "grain",
        "rates_fn",
        "flops_per_instr",
        "on_claimed",
        "remaining",
        "label",
    )

    def __init__(
        self,
        pool: list,
        index: int,
        grain: float,
        rates_fn: RatesFn,
        flops_per_instr: float,
        on_claimed: Optional[Callable[[float], None]] = None,
        label: str = "chunk-stream",
    ):
        if grain <= 0:
            raise ValueError("a chunk stream needs a positive grain")
        if flops_per_instr <= 0:
            raise ValueError("flops_per_instr must be positive")
        self.pool = pool
        self.index = index
        self.grain = float(grain)
        self.rates_fn = rates_fn
        self.flops_per_instr = float(flops_per_instr)
        self.on_claimed = on_claimed
        #: Instructions left in the chunk claimed but not yet retired.
        self.remaining = 0.0
        self.label = label

    @property
    def done(self) -> bool:
        return self.remaining <= 0.0 and self.pool[self.index] <= 0.0


#: Spin loops retire mostly test-and-branch (and pause) instructions;
#: a tight register-resident loop sustains high retirement rates.
SPIN_RATES = PhaseRates(
    ipc=3.0,
    flops_per_instr=0.0,
    llc_refs_per_instr=0.0,
    branches_per_instr=0.45,
    branch_miss_rate=0.001,
)


class SpinPhase(WorkPhase):
    """Busy-wait until ``until()`` turns true (checked each tick)."""

    __slots__ = ("until", "label")

    def __init__(self, until: Callable[[], bool], label: str = "spin"):
        self.until = until
        self.label = label


class SleepPhase(WorkPhase):
    """Block off-CPU until ``until()`` turns true or for a duration."""

    __slots__ = ("until", "wake_at_s", "label")

    def __init__(
        self,
        until: Optional[Callable[[], bool]] = None,
        duration_s: Optional[float] = None,
        label: str = "sleep",
    ):
        if until is None and duration_s is None:
            raise ValueError("sleep needs a wake condition or a duration")
        self.until = until
        self.wake_at_s = duration_s  # engine converts to absolute time
        self.label = label


class SpinBarrier:
    """A generational barrier.

    Threads call :meth:`arrive`; the barrier releases a generation once
    ``parties`` arrivals are in.  ``wait_phase`` returns the phase a thread
    should execute while waiting (spin by default, matching BLAS runtime
    behaviour with active waiting).
    """

    def __init__(self, parties: int, spin: bool = True):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self.spin = spin
        self.generation = 0
        self._arrived = 0

    def arrive(self) -> None:
        self._arrived += 1
        if self._arrived >= self.parties:
            self._arrived = 0
            self.generation += 1

    def wait_phase(self) -> WorkPhase:
        gen = self.generation
        cond = lambda: self.generation != gen  # noqa: E731
        if self.spin:
            return SpinPhase(until=cond, label="barrier-spin")
        return SleepPhase(until=cond, label="barrier-sleep")
