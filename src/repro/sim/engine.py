"""The machine: couples hardware models, scheduler and threads.

:class:`Machine` advances in fixed ticks.  Per tick:

1. wake sleeping threads whose condition fired,
2. the scheduler places runnable threads on CPUs,
3. each placed thread executes its time share at the CPU's current DVFS
   frequency, generating architectural counter events that are credited to
   the thread (per PMU), the per-CPU hardware PMU, and any registered
   account hooks (the kernel perf layer),
4. power is sampled; RAPL accounts energy and runs the PL1/PL2 capping
   controller; the thermal model integrates and applies throttling,
5. the DVFS governor picks next-tick frequencies.

The engine is deterministic for a given seed.

Accounting kernel
-----------------

Event generation is *fused per slice*: while a thread executes its time
share, each work chunk only accumulates ``(instructions, seconds)`` into a
per-rates bucket; the architectural event vector is materialized once per
bucket as a single numpy multiply of a cached per-``(core type, rates)``
*event-rate vector* (events per retired instruction).  Buckets are flushed
early at every point where other code could observe counters — before a
:class:`ControlOp` runs, before a phase ``on_complete`` callback, and when
the thread blocks or finishes — so the fusion is invisible to measured
programs.

Engines
-------

Three interchangeable engines drive the loop (``Machine(engine=...)``):

* ``"ticks"`` — the plain single-tick loop above; the reference.
* ``"macro"`` — the steady-state macro-tick engine in
  :mod:`repro.sim.fastpath`: record one tick, replay it while guards
  hold, polling every guard between replays.
* ``"events"`` — the event-driven engine in :mod:`repro.sim.events`:
  the recorded guards become a queue of pending events (phase change,
  mux rotation, wake-up, timed fault, overflow crossing) and the span
  leaps straight to the earliest one, plus sticky-placement scheduling
  reuse and adaptive record back-off.

All three produce bit-identical state (gated by the engine parity
matrix in ``tests/test_fastpath_parity.py``).  The legacy ``fastpath``
bool maps True -> "macro", False -> "ticks" when ``engine`` is not
given.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from repro.checkpoint.surface import snapshot_surface
from repro.hw.coretype import ArchEvent, CoreType, N_ARCH_EVENTS
from repro.hw.cpuid import CpuidEmulator
from repro.hw.cache import LlcModel
from repro.hw.dvfs import DvfsGovernor
from repro.hw.machines import MachineSpec
from repro.hw.pmu import CorePmu
from repro.hw.power import CorePowerState, PowerModel, PowerSample, SPIN_POWER_FRACTION
from repro.hw.rapl import RaplPackage
from repro.hw.thermal import ThermalModel
from repro.hw.topology import Core
from repro.kernel.sched import Scheduler
from repro.sim.clock import SimClock
from repro.sim.task import ControlOp, Program, SimThread, ThreadState
from repro.trace.tracer import make_tracer
from repro.sim.workload import (
    ChunkStream,
    ComputePhase,
    SleepPhase,
    SpinPhase,
    SPIN_RATES,
    PhaseRates,
    arch_event_rates,
)

#: Safety valve: max control ops a thread may run inside one time slice.
MAX_CONTROL_OPS_PER_SLICE = 100_000

#: Cap on the identity-keyed rate-vector cache; a workload that builds a
#: fresh ``PhaseRates`` per call falls back to the value-keyed cache.
_RATE_VEC_ID_CACHE_CAP = 4096

#: Plain-int index of the time-based event slot patched at flush time
#: (IntEnum indexing costs a conversion per use on the hot path).
_REF_CYCLES = int(ArchEvent.REF_CYCLES)

AccountHook = Callable[[SimThread, Core, np.ndarray, float], None]
TickHook = Callable[["Machine"], None]
HotplugHook = Callable[[int, bool], None]


class SimTimeout(RuntimeError):
    """``run_until``/``run_until_done`` hit ``max_s`` in strict mode.

    The message names the threads that were still unfinished — with the
    CPU and core type each is wedged on — and the machine's last
    checkpoint path, so a stuck run is diagnosable (and resumable) from
    the error alone.
    """

    def __init__(
        self,
        message: str,
        stuck: Optional[list[SimThread]] = None,
        checkpoint_path: Optional[str] = None,
        details: Optional[list[dict]] = None,
    ):
        super().__init__(message)
        self.stuck = stuck if stuck is not None else []
        self.checkpoint_path = checkpoint_path
        self._details = details

    def stuck_details(self) -> list[dict]:
        """JSON-able description of the stuck threads (for manifests)."""
        if self._details is not None:
            return self._details
        return [
            {
                "name": t.name,
                "tid": t.tid,
                "state": t.state.value,
                "cpu": t.cpu if t.cpu is not None else t.last_cpu,
                "core_type": None,
                "phase": getattr(t.current_phase, "label", None),
            }
            for t in self.stuck
        ]


@snapshot_surface(
    state=(
        "spec",
        "topology",
        "clock",
        "scheduler",
        "governor",
        "thermal",
        "rapl",
        "power_model",
        "pmus",
        "llc",
        "cpuid",
        "tsc_ghz",
        "threads",
        "tick_hooks",
        "account_hooks",
        "hotplug_hooks",
        "last_power",
        "last_checkpoint_path",
        "fastpath",
        "engine",
        "tracer",
        "_next_tid",
        "_tid_index",
        "_busy",
        "_spin",
        "_fastpath_engine",
        "_fastpath_safe_hooks",
    ),
    caches=(
        "_rate_vecs_by_id",
        "_rate_vecs_by_value",
        "_rec",
        "_sched_cache",
        "_vec_scratch",
    ),
    rebuild="_init_snapshot_caches",
    digest_exclude=(
        "fastpath",
        "engine",
        "_fastpath_engine",
        "last_checkpoint_path",
        "tracer",
    ),
    note=(
        "Rate-vector caches are identity-keyed memos rebuilt lazily; a "
        "tick recorder never outlives a tick.  Engine-path selection, "
        "the checkpoint breadcrumb and the tracer (a pure observer that "
        "must not perturb trace-on/off digest parity) are configuration, "
        "not machine state, so they stay out of the digest."
    ),
)
class Machine:
    """A simulated machine executing simulated threads."""

    def __init__(
        self,
        spec: MachineSpec,
        dt_s: float = 0.01,
        seed: int = 0,
        migrate_jitter: float = 0.0,
        rebalance_jitter: float = 0.0,
        fastpath: bool = True,
        engine: Optional[str] = None,
        trace=None,
    ):
        if engine is None:
            engine = "macro" if fastpath else "ticks"
        if engine not in ("ticks", "macro", "events"):
            raise ValueError(
                f"unknown engine {engine!r}; want 'ticks', 'macro' or 'events'"
            )
        self.engine = engine
        self.spec = spec
        self.topology = spec.topology
        self.clock = SimClock(dt_s)
        self.tracer = make_tracer(trace, self.clock)
        self.governor = DvfsGovernor(self.topology)
        self.power_model = PowerModel(spec)
        self.thermal = ThermalModel(spec)
        self.rapl = RaplPackage(spec)
        self.llc = LlcModel(float(spec.extra.get("llc_mib", 8.0)))
        self.cpuid = CpuidEmulator(spec)
        self.pmus = [CorePmu(c.cpu_id, c.ctype) for c in self.topology.cores]
        self.scheduler = Scheduler(
            self.topology,
            seed=seed,
            migrate_jitter=migrate_jitter,
            rebalance_jitter=rebalance_jitter,
        )
        # Hand the observer to the layers that emit from their own step
        # functions; perf/PAPI/faults reach it through ``machine.tracer``.
        self.scheduler.tracer = self.tracer
        self.governor.tracer = self.tracer
        self.thermal.tracer = self.tracer
        self.rapl.tracer = self.tracer

        self.threads: list[SimThread] = []
        self._next_tid = 1000
        self._tid_index: dict[int, SimThread] = {}
        self.account_hooks: list[AccountHook] = []
        self.tick_hooks: list[TickHook] = []
        #: Called as ``hook(cpu_id, online)`` after a CPU changes hotplug
        #: state (the perf subsystem parks/resumes events through this).
        self.hotplug_hooks: list[HotplugHook] = []
        #: Hooks the macro-tick engine may batch over (their per-tick
        #: effects are fully captured by the tick recorder).  Hooks not
        #: registered here disable macro-ticking, never correctness.
        self._fastpath_safe_hooks: list = []
        self.last_power: Optional[PowerSample] = None
        # The TSC / architectural timer rate (invariant across the package).
        self.tsc_ghz = self.topology.clusters[-1].ctype.base_freq_mhz / 1000.0
        self._busy = np.zeros(self.topology.n_cpus, dtype=np.float64)
        self._spin = np.zeros(self.topology.n_cpus, dtype=np.float64)
        self._init_snapshot_caches()
        #: Path of the most recent checkpoint of this machine (set by
        #: ``System.save``); surfaced by SimTimeout for diagnosability.
        self.last_checkpoint_path: Optional[str] = None

        self.fastpath = engine != "ticks"
        if engine == "macro":
            from repro.sim.fastpath import FastPathEngine

            self._fastpath_engine = FastPathEngine(self)
        elif engine == "events":
            from repro.sim.events import EventEngine

            self._fastpath_engine = EventEngine(self)
        else:
            self._fastpath_engine = None

    def _init_snapshot_caches(self) -> None:
        """(Re)create the cache attributes excluded from snapshots.

        Event-rate vector caches are identity-keyed hot memos over a
        value-keyed canonical cache (see ``_rate_vec``); ``_rec`` is the
        active tick recorder (fast path only; None on every plain tick);
        ``_sched_cache`` replays provably side-effect-free sticky
        placements (event engine only — the other engines exercise the
        scheduler every tick, which is what keeps the cache honest under
        the parity matrix).
        """
        self._rate_vecs_by_id: dict = {}
        self._rate_vecs_by_value: dict = {}
        self._rec = None
        self._vec_scratch = np.zeros(N_ARCH_EVENTS, dtype=np.float64)
        if getattr(self, "engine", None) == "events":
            from repro.sim.events import SchedCache

            self._sched_cache = SchedCache(self.scheduler)
        else:
            self._sched_cache = None

    # -- thread lifecycle ---------------------------------------------------

    def spawn(self, thread: SimThread) -> SimThread:
        """Register a thread; it becomes runnable on the next tick."""
        if thread.tid == -1:
            thread.tid = self._next_tid
            self._next_tid += 1
        thread.state = ThreadState.READY
        self.threads.append(thread)
        self._tid_index[thread.tid] = thread
        return thread

    def spawn_program(
        self,
        name: str,
        items: Iterable,
        affinity: Optional[set[int]] = None,
        weight: float = 1.0,
    ) -> SimThread:
        return self.spawn(SimThread(name, Program(items), affinity=affinity, weight=weight))

    def thread_by_tid(self, tid: int) -> SimThread:
        try:
            return self._tid_index[tid]
        except KeyError:
            raise KeyError(f"no thread with tid {tid}") from None

    def mark_hook_fastpath_safe(self, hook) -> None:
        """Declare that ``hook``'s per-tick effects are recorder-visible."""
        self._fastpath_safe_hooks.append(hook)

    # -- CPU hotplug ---------------------------------------------------------

    def offline_cpu(self, cpu_id: int) -> None:
        """Take a CPU offline (``echo 0 > /sys/.../cpuN/online``).

        Linux semantics: cpu0 is not hotpluggable, threads running on the
        dying CPU migrate off at the next scheduling point, and perf
        events bound to the CPU stop counting (parked via the hotplug
        hooks).  Idempotent for an already-offline CPU.
        """
        from repro.kernel.errno import Errno, KernelError

        core = self.topology.core(cpu_id)  # KeyError on bad id
        if cpu_id == 0:
            raise KernelError(Errno.EBUSY, "cpu0 is not hotpluggable")
        if not core.online:
            return
        core.online = False
        tr = self.tracer
        if tr is not None and not tr.sched:
            tr = None
        # Threads on the dead CPU lose their placement; the scheduler
        # gives them a fresh capacity-aware placement next tick.
        for t in self.threads:
            if t.cpu == cpu_id:
                if tr is not None:
                    tr.emit("sched", "switch_out", tid=t.tid, cpu=cpu_id)
                t.cpu = None
            if t.last_cpu == cpu_id:
                t.last_cpu = None
        if tr is not None:
            tr.emit("sched", "hotplug_offline", cpu=cpu_id)
        if self._rec is not None:
            self._rec.kill(self)
        for hook in self.hotplug_hooks:
            hook(cpu_id, False)

    def online_cpu(self, cpu_id: int) -> None:
        """Bring a previously offlined CPU back (idempotent)."""
        core = self.topology.core(cpu_id)
        if core.online:
            return
        core.online = True
        tr = self.tracer
        if tr is not None and tr.sched:
            tr.emit("sched", "hotplug_online", cpu=cpu_id)
        if self._rec is not None:
            self._rec.kill(self)
        for hook in self.hotplug_hooks:
            hook(cpu_id, True)

    def hooks_fastpath_safe(self) -> bool:
        safe = self._fastpath_safe_hooks
        return all(h in safe for h in self.account_hooks) and all(
            h in safe for h in self.tick_hooks
        )

    # -- main loop ------------------------------------------------------------

    @property
    def now_s(self) -> float:
        return self.clock.now_s

    def tick(self) -> None:
        dt = self.clock.dt_s
        rec = self._rec
        _blocked = ThreadState.BLOCKED
        _ready = ThreadState.READY
        _running = ThreadState.RUNNING

        # 1. Wake sleepers.
        for t in self.threads:
            if t.state is not _blocked:
                continue
            phase = t.current_phase
            woke = False
            if isinstance(phase, SleepPhase):
                if phase.until is not None and phase.until():
                    woke = True
                elif t.wake_at_s is not None and self.now_s >= t.wake_at_s:
                    woke = True
            else:
                woke = True
            if woke:
                t.current_phase = None
                t.wake_at_s = None
                t.state = ThreadState.READY
                if rec is not None:
                    rec.kill(self)
                    rec = None
            elif rec is not None:
                rec.blocked.append((t, phase))

        # 2. Place runnable threads (through the sticky-placement cache
        # when the event engine installed one and the placement repeats).
        runnable = [
            t
            for t in self.threads
            if t.state is _ready or t.state is _running
        ]
        if rec is not None:
            rec.freq_before = list(self.governor.freq_mhz)
        cache = self._sched_cache
        assignment = cache.lookup(runnable) if cache is not None else None
        if assignment is None:
            if rec is not None:
                rec.note_pre_schedule(self.scheduler, runnable)
            assignment = self.scheduler.schedule(runnable)
            if rec is not None:
                rec.note_post_schedule(self, self.scheduler, runnable)
                rec = self._rec  # note_post_schedule kills on migration
            if cache is not None:
                cache.store(runnable, assignment)

        # 3. Execute.  Per-CPU activity accumulates in plain lists (the
        # values are bit-identical to numpy scalar accumulation; list
        # indexing is what keeps the whole-machine reductions below off
        # the numpy scalar-boxing path) and lands in the persistent
        # arrays once per tick.
        n_cpus = self.topology.n_cpus
        busy_l = [0.0] * n_cpus
        spin_l = [0.0] * n_cpus
        for t in runnable:
            t.state = _ready  # set RUNNING below if placed
        topo_core = self.topology.core
        freq_mhz = self.governor.freq_mhz
        for cpu_id, entries in assignment.items():
            core = topo_core(cpu_id)
            freq_ghz = freq_mhz[core.cluster] / 1000.0
            for entry in entries:
                entry.thread.state = _running
                busy_s, spin_s = self._execute_slice(
                    entry.thread, core, freq_ghz, dt * entry.share
                )
                busy_l[cpu_id] += busy_s / dt
                spin_l[cpu_id] += spin_s / dt
        self._busy[:] = busy_l
        self._spin[:] = spin_l

        # 4. Power, energy, thermal.
        sample = self.power_model.sample_activity(
            busy_l, spin_l, self.governor.freq_mhz
        )
        self.last_power = sample
        self.rapl.step(
            self.governor,
            sample.package_w,
            sample.cores_w,
            sample.dram_w,
            dt,
        )
        self.thermal.step(sample.package_w, dt)

        # Per-cluster activity (for throttling) and peak utilization (for
        # the governor) in one pass; the accumulation order matches the
        # former sum()/max() reductions term for term.
        cluster_activity = []
        cluster_util = []
        for cl in self.topology.clusters:
            act = 0.0
            peak = 0.0
            for c in cl.cpu_ids:
                b = busy_l[c]
                s = spin_l[c]
                act += b + SPIN_POWER_FRACTION * s
                u = b + s
                if u > peak:
                    peak = u
            cluster_activity.append(act)
            cluster_util.append(peak if peak < 1.0 else 1.0)
        self.thermal.apply_throttling(
            self.governor,
            cluster_activity,
            sample.uncore_w + sample.dram_w,
            dt,
        )

        # 5. Governor for next tick.
        self.governor.update(cluster_util)

        rec = self._rec  # a slice may have killed the recorder
        if rec is not None:
            rec.power_inputs = (
                sample,
                cluster_activity,
                sample.uncore_w + sample.dram_w,
                cluster_util,
            )
            rec.freq_after = list(self.governor.freq_mhz)

        self.clock.advance()
        for hook in self.tick_hooks:
            hook(self)

    def _execute_slice(
        self, thread: SimThread, core: Core, freq_ghz: float, t_slice: float
    ) -> tuple[float, float]:
        """Run ``thread`` on ``core`` for up to ``t_slice`` seconds."""
        time_left = t_slice
        busy_s = 0.0
        spin_s = 0.0
        control_ops = 0
        rec = self._rec
        ct = core.ctype
        # Per-slice fused accounting: id(rates) -> [rates, instr, seconds].
        buckets: dict[int, list] = {}
        while time_left > 1e-15:
            phase = thread.current_phase
            if phase is None:
                # Any phase-boundary event makes this tick non-replayable.
                if rec is not None:
                    rec.kill(self)
                    rec = None
                item = thread.take_next()
                if item is None:
                    if buckets:
                        self._flush_slice(thread, core, buckets)
                    thread.state = ThreadState.DONE
                    tr = self.tracer
                    if tr is not None and tr.sched:
                        tr.emit("sched", "switch_out", tid=thread.tid, cpu=core.cpu_id)
                        tr.emit("sched", "exit", tid=thread.tid, cpu=core.cpu_id)
                    thread.cpu = None
                    break
                if isinstance(item, ControlOp):
                    control_ops += 1
                    if control_ops > MAX_CONTROL_OPS_PER_SLICE:
                        raise RuntimeError(
                            f"thread {thread.name!r} ran {control_ops} control ops "
                            "in one slice; likely an infinite control loop"
                        )
                    if buckets:
                        self._flush_slice(thread, core, buckets)
                    item.fn(thread)
                    continue
                thread.current_phase = item
                phase = item

            if isinstance(phase, ComputePhase):
                rates = phase.rates_fn(ct)
                instr_per_s = freq_ghz * 1e9 * rates.ipc
                possible = instr_per_s * time_left
                remaining = phase.remaining
                executed = remaining if remaining < possible else possible
                dt_used = executed / instr_per_s if instr_per_s > 0 else time_left
                phase.remaining = remaining - executed
                bucket = buckets.get(id(rates))
                if bucket is None:
                    buckets[id(rates)] = [rates, executed, dt_used]
                else:
                    bucket[1] += executed
                    bucket[2] += dt_used
                if rec is not None:
                    rec.compute_step(phase, executed)
                busy_s += dt_used
                time_left -= dt_used
                if phase.remaining <= 0.0:
                    thread.current_phase = None
                    if rec is not None:
                        rec.kill(self)
                        rec = None
                    if phase.on_complete is not None:
                        if buckets:
                            self._flush_slice(thread, core, buckets)
                        phase.on_complete(thread)
                continue

            if isinstance(phase, ChunkStream):
                # Fused claim-execute loop: the whole dynamic-chunk
                # stream advances without per-chunk phase objects.  The
                # shared pool makes the tick unreplayable.
                if rec is not None:
                    rec.kill(self)
                    rec = None
                rates = phase.rates_fn(ct)
                instr_per_s = freq_ghz * 1e9 * rates.ipc
                pool_list = phase.pool
                idx = phase.index
                grain = phase.grain
                fpi = phase.flops_per_instr
                pool = pool_list[idx]
                remaining = phase.remaining
                claimed = 0.0
                executed_total = 0.0
                time_used = 0.0
                if instr_per_s <= 0:  # pragma: no cover - defensive
                    time_left = 0.0
                else:
                    # Finish the chunk carried over from the last slice.
                    if remaining > 0.0:
                        possible = instr_per_s * time_left
                        executed = remaining if remaining < possible else possible
                        dt_used = executed / instr_per_s
                        remaining -= executed
                        executed_total += executed
                        time_used += dt_used
                        time_left -= dt_used
                    # Claim every whole chunk this slice can retire in one
                    # bulk step: mid-stream chunks are all grain-sized, so
                    # their count is the min of what the remaining time
                    # and the pool admit.
                    if remaining <= 0.0 and pool > 0.0 and time_left > 1e-15:
                        x = grain / fpi
                        chunk_instr = x if x > 1.0 else 1.0
                        dt_chunk = chunk_instr / instr_per_s
                        n_time = int(time_left / dt_chunk)
                        n_pool = int(pool / grain)
                        n = n_time if n_time < n_pool else n_pool
                        if n > 0:
                            bulk = n * grain
                            pool -= bulk
                            claimed += bulk
                            executed_total += n * chunk_instr
                            t_bulk = n * dt_chunk
                            time_used += t_bulk
                            time_left -= t_bulk
                        # Tail: the final partial chunk / partial tick.
                        while time_left > 1e-15:
                            if remaining <= 0.0:
                                if pool <= 0.0:
                                    break
                                take = grain if grain < pool else pool
                                pool -= take
                                claimed += take
                                x = take / fpi
                                remaining = x if x > 1.0 else 1.0
                            possible = instr_per_s * time_left
                            executed = remaining if remaining < possible else possible
                            dt_used = executed / instr_per_s
                            remaining -= executed
                            executed_total += executed
                            time_used += dt_used
                            time_left -= dt_used
                pool_list[idx] = pool
                phase.remaining = remaining
                if claimed > 0.0 and phase.on_claimed is not None:
                    phase.on_claimed(claimed)
                if executed_total > 0.0:
                    bucket = buckets.get(id(rates))
                    if bucket is None:
                        buckets[id(rates)] = [rates, executed_total, time_used]
                    else:
                        bucket[1] += executed_total
                        bucket[2] += time_used
                    busy_s += time_used
                if remaining <= 0.0 and pool_list[idx] <= 0.0:
                    thread.current_phase = None
                continue

            if isinstance(phase, SpinPhase):
                if phase.until():
                    thread.current_phase = None
                    if rec is not None:
                        rec.kill(self)
                        rec = None
                    continue
                # Spin for the rest of the slice.
                instr = SPIN_RATES.ipc * (freq_ghz * 1e9 * time_left)
                bucket = buckets.get(id(SPIN_RATES))
                if bucket is None:
                    buckets[id(SPIN_RATES)] = [SPIN_RATES, instr, time_left]
                else:
                    bucket[1] += instr
                    bucket[2] += time_left
                thread.spin_time_s += time_left
                if rec is not None:
                    rec.spin_step(thread, phase.until, time_left)
                spin_s += time_left
                time_left = 0.0
                break

            if isinstance(phase, SleepPhase):
                if rec is not None:
                    rec.kill(self)
                    rec = None
                if phase.until is not None and phase.until():
                    thread.current_phase = None
                    continue
                if buckets:
                    self._flush_slice(thread, core, buckets)
                thread.state = ThreadState.BLOCKED
                tr = self.tracer
                if tr is not None and tr.sched:
                    tr.emit("sched", "switch_out", tid=thread.tid, cpu=core.cpu_id)
                thread.cpu = None
                if phase.wake_at_s is not None and thread.wake_at_s is None:
                    thread.wake_at_s = self.now_s + phase.wake_at_s
                break

            raise TypeError(f"unknown phase type {type(phase)!r}")
        if buckets:
            self._flush_slice(thread, core, buckets)
        vdelta = (busy_s + spin_s) / thread.weight
        thread.vruntime += vdelta
        if rec is not None and vdelta != 0.0:
            rec.scalar(thread, "vruntime", vdelta)
        return busy_s, spin_s

    def _flush_slice(self, thread: SimThread, core: Core, buckets: dict) -> None:
        """Materialize fused event vectors and credit all consumers.

        The event vector handed to consumers is transient: accounting
        hooks must read it during the call, never retain it.  With no
        recorder live (nothing retains the vector for replay) it is a
        reused scratch buffer, so flushing allocates nothing.
        """
        rec = self._rec
        ct = core.ctype
        pmu_name = ct.pmu_name
        totals = self.pmus[core.cpu_id].totals
        ref_per_s = self.tsc_ghz * 1e9
        scratch = self._vec_scratch if rec is None else None
        hooks = self.account_hooks
        for rates, instr, time_s in buckets.values():
            if time_s <= 0:
                continue
            if scratch is None:
                v = self._rate_vec(ct, rates) * instr
            else:
                v = np.multiply(self._rate_vec(ct, rates), instr, out=scratch)
            v[_REF_CYCLES] = ref_per_s * time_s
            thread.account(pmu_name, v, time_s, rec)
            totals += v
            if rec is not None:
                rec.vec(totals, v)
            for hook in hooks:
                hook(thread, core, v, time_s)
        buckets.clear()

    def _rate_vec(self, ct: CoreType, rates: PhaseRates) -> np.ndarray:
        """Cached per-instruction architectural event rates.

        ``REF_CYCLES`` is time-based, not instruction-based; its slot is
        zero here and patched from accumulated seconds at flush time.
        """
        key = (id(ct), id(rates))
        vec = self._rate_vecs_by_id.get(key)
        if vec is not None:
            return vec
        vkey = (
            id(ct),
            rates.ipc,
            rates.flops_per_instr,
            rates.llc_refs_per_instr,
            rates.llc_miss_rate,
            rates.l2_refs_per_instr,
            rates.l2_miss_rate,
            rates.branches_per_instr,
            rates.branch_miss_rate,
        )
        entry = self._rate_vecs_by_value.get(vkey)
        if entry is None:
            # Shared with the validation oracle: sim.workload owns the
            # PhaseRates -> event-vector translation.
            v = arch_event_rates(ct, rates)
            # Pin ct and rates so the id() keys cannot be recycled.
            entry = (v, ct, rates)
            self._rate_vecs_by_value[vkey] = entry
        if len(self._rate_vecs_by_id) >= _RATE_VEC_ID_CACHE_CAP:
            self._rate_vecs_by_id.clear()
        self._rate_vecs_by_id[key] = entry[0]
        return entry[0]

    # -- convenience runners ---------------------------------------------------

    def run_ticks(self, n: int) -> None:
        if self._fastpath_engine is not None:
            self._fastpath_engine.run_ticks(n)
        else:
            for _ in range(n):
                self.tick()

    def run_for(self, seconds: float) -> None:
        self.run_ticks(max(1, round(seconds / self.clock.dt_s)))

    def run_until(
        self,
        cond: Callable[[], bool],
        max_s: float = 3600.0,
        strict: bool = False,
        watch: Optional[list[SimThread]] = None,
    ) -> bool:
        """Tick until ``cond()`` is true; returns False on timeout.

        With ``strict=True`` a timeout raises :class:`SimTimeout` naming
        the unfinished threads (``watch`` if given, else all threads)
        instead of returning a silently discardable ``False``.
        """
        deadline = self.now_s + max_s
        if self._fastpath_engine is not None:
            ok = self._fastpath_engine.run_until(cond, deadline)
        else:
            ok = True
            while not cond():
                if self.now_s >= deadline:
                    ok = False
                    break
                self.tick()
        if not ok and strict:
            pool = watch if watch is not None else self.threads
            stuck = [t for t in pool if not t.done]
            details = [self._stuck_detail(t) for t in stuck]
            names = ", ".join(
                f"{d['name']!r} (tid={d['tid']}, {d['state']}, "
                f"cpu={d['cpu']} [{d['core_type'] or 'off-cpu'}], "
                f"phase={d['phase']})"
                for d in details
            ) or "<none>"
            ckpt = (
                f"; last checkpoint: {self.last_checkpoint_path}"
                if self.last_checkpoint_path
                else "; no checkpoint taken"
            )
            raise SimTimeout(
                f"condition not reached within {max_s} simulated seconds "
                f"(t={self.now_s:.3f}s); stuck threads: {names}{ckpt}",
                stuck,
                checkpoint_path=self.last_checkpoint_path,
                details=details,
            )
        return ok

    def _stuck_detail(self, t: SimThread) -> dict:
        """One stuck thread's manifest entry: where it is wedged."""
        cpu = t.cpu if t.cpu is not None else t.last_cpu
        core_type = None
        if cpu is not None:
            try:
                core_type = self.topology.core(cpu).ctype.name
            except KeyError:  # pragma: no cover - defensive
                core_type = None
        return {
            "name": t.name,
            "tid": t.tid,
            "state": t.state.value,
            "cpu": cpu,
            "core_type": core_type,
            "phase": getattr(t.current_phase, "label", None),
        }

    def run_until_done(
        self,
        threads: Optional[Iterable[SimThread]] = None,
        max_s: float = 3600.0,
        strict: bool = False,
    ) -> bool:
        watch = list(threads) if threads is not None else self.threads
        return self.run_until(
            lambda: all(t.done for t in watch),
            max_s=max_s,
            strict=strict,
            watch=watch,
        )

    def cool_down(self, target_c: float = 35.0, max_s: float = 600.0) -> bool:
        """Idle the machine until the package settles at ``target_c``.

        Mirrors the paper's methodology of waiting for ``x86_pkg_temp`` to
        settle at 35 degC before each HPL run.
        """
        return self.run_until(lambda: self.thermal.is_settled(target_c), max_s=max_s)
