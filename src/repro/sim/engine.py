"""The machine: couples hardware models, scheduler and threads.

:class:`Machine` advances in fixed ticks.  Per tick:

1. wake sleeping threads whose condition fired,
2. the scheduler places runnable threads on CPUs,
3. each placed thread executes its time share at the CPU's current DVFS
   frequency, generating architectural counter events that are credited to
   the thread (per PMU), the per-CPU hardware PMU, and any registered
   account hooks (the kernel perf layer),
4. power is sampled; RAPL accounts energy and runs the PL1/PL2 capping
   controller; the thermal model integrates and applies throttling,
5. the DVFS governor picks next-tick frequencies.

The engine is deterministic for a given seed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from repro.hw.coretype import ArchEvent, N_ARCH_EVENTS
from repro.hw.cpuid import CpuidEmulator
from repro.hw.cache import LlcModel
from repro.hw.dvfs import DvfsGovernor
from repro.hw.machines import MachineSpec
from repro.hw.pmu import CorePmu
from repro.hw.power import CorePowerState, PowerModel, PowerSample
from repro.hw.rapl import RaplPackage
from repro.hw.thermal import ThermalModel
from repro.hw.topology import Core
from repro.kernel.sched import Scheduler
from repro.sim.clock import SimClock
from repro.sim.task import ControlOp, Program, SimThread, ThreadState
from repro.sim.workload import (
    ComputePhase,
    SleepPhase,
    SpinPhase,
    SPIN_RATES,
    PhaseRates,
)

#: Intel's top-down pipeline width (slots per cycle) on Golden Cove.
TOPDOWN_SLOTS_PER_CYCLE = 6

#: Safety valve: max control ops a thread may run inside one time slice.
MAX_CONTROL_OPS_PER_SLICE = 100_000

AccountHook = Callable[[SimThread, Core, np.ndarray, float], None]
TickHook = Callable[["Machine"], None]


class Machine:
    """A simulated machine executing simulated threads."""

    def __init__(
        self,
        spec: MachineSpec,
        dt_s: float = 0.01,
        seed: int = 0,
        migrate_jitter: float = 0.0,
        rebalance_jitter: float = 0.0,
    ):
        self.spec = spec
        self.topology = spec.topology
        self.clock = SimClock(dt_s)
        self.governor = DvfsGovernor(self.topology)
        self.power_model = PowerModel(spec)
        self.thermal = ThermalModel(spec)
        self.rapl = RaplPackage(spec)
        self.llc = LlcModel(float(spec.extra.get("llc_mib", 8.0)))
        self.cpuid = CpuidEmulator(spec)
        self.pmus = [CorePmu(c.cpu_id, c.ctype) for c in self.topology.cores]
        self.scheduler = Scheduler(
            self.topology,
            seed=seed,
            migrate_jitter=migrate_jitter,
            rebalance_jitter=rebalance_jitter,
        )

        self.threads: list[SimThread] = []
        self._next_tid = 1000
        self.account_hooks: list[AccountHook] = []
        self.tick_hooks: list[TickHook] = []
        self.last_power: Optional[PowerSample] = None
        # The TSC / architectural timer rate (invariant across the package).
        self.tsc_ghz = self.topology.clusters[-1].ctype.base_freq_mhz / 1000.0
        self._scratch = np.zeros(N_ARCH_EVENTS, dtype=np.float64)
        self._busy = np.zeros(self.topology.n_cpus, dtype=np.float64)
        self._spin = np.zeros(self.topology.n_cpus, dtype=np.float64)

    # -- thread lifecycle ---------------------------------------------------

    def spawn(self, thread: SimThread) -> SimThread:
        """Register a thread; it becomes runnable on the next tick."""
        if thread.tid == -1:
            thread.tid = self._next_tid
            self._next_tid += 1
        thread.state = ThreadState.READY
        self.threads.append(thread)
        return thread

    def spawn_program(
        self,
        name: str,
        items: Iterable,
        affinity: Optional[set[int]] = None,
        weight: float = 1.0,
    ) -> SimThread:
        return self.spawn(SimThread(name, Program(items), affinity=affinity, weight=weight))

    def thread_by_tid(self, tid: int) -> SimThread:
        for t in self.threads:
            if t.tid == tid:
                return t
        raise KeyError(f"no thread with tid {tid}")

    # -- main loop ------------------------------------------------------------

    @property
    def now_s(self) -> float:
        return self.clock.now_s

    def tick(self) -> None:
        dt = self.clock.dt_s

        # 1. Wake sleepers.
        for t in self.threads:
            if t.state is not ThreadState.BLOCKED:
                continue
            phase = t.current_phase
            woke = False
            if isinstance(phase, SleepPhase):
                if phase.until is not None and phase.until():
                    woke = True
                elif t.wake_at_s is not None and self.now_s >= t.wake_at_s:
                    woke = True
            else:
                woke = True
            if woke:
                t.current_phase = None
                t.wake_at_s = None
                t.state = ThreadState.READY

        # 2. Place runnable threads.
        runnable = [
            t
            for t in self.threads
            if t.state in (ThreadState.READY, ThreadState.RUNNING)
        ]
        assignment = self.scheduler.schedule(runnable)

        # 3. Execute.
        self._busy[:] = 0.0
        self._spin[:] = 0.0
        for t in runnable:
            t.state = ThreadState.READY  # set RUNNING below if placed
        for cpu_id, entries in assignment.items():
            core = self.topology.core(cpu_id)
            freq_ghz = self.governor.freq_of_cpu_ghz(cpu_id)
            for entry in entries:
                entry.thread.state = ThreadState.RUNNING
                busy_s, spin_s = self._execute_slice(
                    entry.thread, core, freq_ghz, dt * entry.share
                )
                self._busy[cpu_id] += busy_s / dt
                self._spin[cpu_id] += spin_s / dt

        # 4. Power, energy, thermal.
        states = [
            CorePowerState(busy_frac=float(self._busy[i]), spin_frac=float(self._spin[i]))
            for i in range(self.topology.n_cpus)
        ]
        sample = self.power_model.sample(states, self.governor.freq_mhz)
        self.last_power = sample
        self.rapl.step(
            self.governor,
            sample.package_w,
            sample.cores_w,
            sample.dram_w,
            dt,
        )
        self.thermal.step(sample.package_w, dt)
        from repro.hw.power import SPIN_POWER_FRACTION

        cluster_activity = [
            sum(
                float(self._busy[c]) + SPIN_POWER_FRACTION * float(self._spin[c])
                for c in cl.cpu_ids
            )
            for cl in self.topology.clusters
        ]
        self.thermal.apply_throttling(
            self.governor,
            cluster_activity,
            sample.uncore_w + sample.dram_w,
            dt,
        )

        # 5. Governor for next tick.
        cluster_util = []
        for cl in self.topology.clusters:
            u = max(
                (float(self._busy[c] + self._spin[c]) for c in cl.cpu_ids),
                default=0.0,
            )
            cluster_util.append(min(1.0, u))
        self.governor.update(cluster_util)

        self.clock.advance()
        for hook in self.tick_hooks:
            hook(self)

    def _execute_slice(
        self, thread: SimThread, core: Core, freq_ghz: float, t_slice: float
    ) -> tuple[float, float]:
        """Run ``thread`` on ``core`` for up to ``t_slice`` seconds."""
        time_left = t_slice
        busy_s = 0.0
        spin_s = 0.0
        control_ops = 0
        while time_left > 1e-15:
            phase = thread.current_phase
            if phase is None:
                item = thread.take_next()
                if item is None:
                    thread.state = ThreadState.DONE
                    thread.cpu = None
                    break
                if isinstance(item, ControlOp):
                    control_ops += 1
                    if control_ops > MAX_CONTROL_OPS_PER_SLICE:
                        raise RuntimeError(
                            f"thread {thread.name!r} ran {control_ops} control ops "
                            "in one slice; likely an infinite control loop"
                        )
                    item.fn(thread)
                    continue
                thread.current_phase = item
                phase = item

            if isinstance(phase, SleepPhase):
                if phase.until is not None and phase.until():
                    thread.current_phase = None
                    continue
                thread.state = ThreadState.BLOCKED
                thread.cpu = None
                if phase.wake_at_s is not None and thread.wake_at_s is None:
                    thread.wake_at_s = self.now_s + phase.wake_at_s
                break

            if isinstance(phase, SpinPhase):
                if phase.until():
                    thread.current_phase = None
                    continue
                # Spin for the rest of the slice.
                self._account(thread, core, freq_ghz, SPIN_RATES, time_left, spin=True)
                spin_s += time_left
                thread.spin_time_s += time_left
                time_left = 0.0
                break

            if isinstance(phase, ComputePhase):
                rates = phase.rates_fn(core.ctype)
                instr_per_s = freq_ghz * 1e9 * rates.ipc
                possible = instr_per_s * time_left
                executed = min(phase.remaining, possible)
                dt_used = executed / instr_per_s if instr_per_s > 0 else time_left
                phase.remaining -= executed
                self._account(
                    thread, core, freq_ghz, rates, dt_used, instructions=executed
                )
                busy_s += dt_used
                time_left -= dt_used
                if phase.done:
                    thread.current_phase = None
                    if phase.on_complete is not None:
                        phase.on_complete(thread)
                continue

            raise TypeError(f"unknown phase type {type(phase)!r}")
        thread.vruntime += (busy_s + spin_s) / thread.weight
        return busy_s, spin_s

    def _account(
        self,
        thread: SimThread,
        core: Core,
        freq_ghz: float,
        rates: PhaseRates,
        time_s: float,
        instructions: Optional[float] = None,
        spin: bool = False,
    ) -> None:
        if time_s <= 0:
            return
        ct = core.ctype
        cycles = freq_ghz * 1e9 * time_s
        instr = instructions if instructions is not None else rates.ipc * cycles
        v = self._scratch
        v[:] = 0.0
        v[ArchEvent.CYCLES] = cycles
        v[ArchEvent.INSTRUCTIONS] = instr
        v[ArchEvent.FP_OPS] = instr * rates.flops_per_instr
        refs = instr * rates.llc_refs_per_instr
        v[ArchEvent.LLC_REFERENCES] = refs
        v[ArchEvent.LLC_MISSES] = refs * rates.llc_miss_rate
        l2 = instr * rates.l2_refs_per_instr
        v[ArchEvent.L2_REFERENCES] = l2
        v[ArchEvent.L2_MISSES] = l2 * rates.l2_miss_rate
        branches = instr * rates.branches_per_instr
        v[ArchEvent.BRANCHES] = branches
        v[ArchEvent.BRANCH_MISSES] = branches * rates.branch_miss_rate
        v[ArchEvent.REF_CYCLES] = self.tsc_ghz * 1e9 * time_s
        v[ArchEvent.STALLED_CYCLES] = max(0.0, cycles - instr / ct.ipc)
        if ct.supports_event(ArchEvent.TOPDOWN_SLOTS):
            v[ArchEvent.TOPDOWN_SLOTS] = cycles * TOPDOWN_SLOTS_PER_CYCLE

        thread.account(ct.pmu_name, v, time_s)
        self.pmus[core.cpu_id].totals += v
        for hook in self.account_hooks:
            hook(thread, core, v, time_s)

    # -- convenience runners ---------------------------------------------------

    def run_ticks(self, n: int) -> None:
        for _ in range(n):
            self.tick()

    def run_for(self, seconds: float) -> None:
        self.run_ticks(max(1, round(seconds / self.clock.dt_s)))

    def run_until(self, cond: Callable[[], bool], max_s: float = 3600.0) -> bool:
        """Tick until ``cond()`` is true; returns False on timeout."""
        deadline = self.now_s + max_s
        while not cond():
            if self.now_s >= deadline:
                return False
            self.tick()
        return True

    def run_until_done(
        self, threads: Optional[Iterable[SimThread]] = None, max_s: float = 3600.0
    ) -> bool:
        watch = list(threads) if threads is not None else self.threads
        return self.run_until(lambda: all(t.done for t in watch), max_s=max_s)

    def cool_down(self, target_c: float = 35.0, max_s: float = 600.0) -> bool:
        """Idle the machine until the package settles at ``target_c``.

        Mirrors the paper's methodology of waiting for ``x86_pkg_temp`` to
        settle at 35 degC before each HPL run.
        """
        return self.run_until(lambda: self.thermal.is_settled(target_c), max_s=max_s)
