"""``repro-mon-hpl``: the mon_hpl.py artifact, on the simulator.

Workflow T1 of artifact A2: run HPL ``-n_runs`` times, each preceded by
waiting for the named thermal zone to settle, polling CPU frequency,
thermal-zone temperatures and RAPL energy at 1 Hz, and write one CSV of
raw samples per run plus a summary file.

Example (the paper's exact parameters)::

    repro-mon-hpl --machine raptor-lake-i7-13700 \\
        -n_runs 10 -cores 0,2,4,6,8,10,12,14,16-24 \\
        -settled_temps thermal_zone9:35000 \\
        --variant intel --out raw_data/
"""

from __future__ import annotations

import argparse
import csv
import json
from pathlib import Path

from repro.hpl import HplConfig, run_hpl
from repro.hw.machines import MACHINE_PRESETS
from repro.kernel.sched.affinity import parse_cpu_list
from repro.monitor import Sampler
from repro.system import System


def parse_settled_temps(text: str) -> tuple[int, float]:
    """Parse ``thermal_zoneN:millidegrees`` into (zone index, degC)."""
    zone, _, milli = text.partition(":")
    if not zone.startswith("thermal_zone") or not milli:
        raise argparse.ArgumentTypeError(
            f"expected thermal_zoneN:millidegrees, got {text!r}"
        )
    return int(zone[len("thermal_zone"):]), int(milli) / 1000.0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-mon-hpl", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--machine", default="raptor-lake-i7-13700",
                   choices=sorted(MACHINE_PRESETS))
    p.add_argument("-n_runs", type=int, default=1, help="identical runs to perform")
    p.add_argument("-cores", default=None,
                   help="CPU list to bind HPL threads to (e.g. 0,2,4-7)")
    p.add_argument("-settled_temps", type=parse_settled_temps, default=None,
                   metavar="thermal_zoneN:MILLIC",
                   help="wait for this zone to settle before each run")
    p.add_argument("--variant", default="openblas", choices=["openblas", "intel"])
    p.add_argument("--n", type=int, default=23040, help="HPL problem size N")
    p.add_argument("--nb", type=int, default=192, help="HPL block size NB")
    p.add_argument("--poll-hz", type=float, default=1.0)
    p.add_argument("--dt", type=float, default=0.02, help="simulation tick (s)")
    p.add_argument("--out", type=Path, default=Path("raw_data"))
    return p


def run_one(args, run_idx: int) -> dict:
    system = System(args.machine, dt_s=args.dt, seed=run_idx)
    cpus = sorted(parse_cpu_list(args.cores)) if args.cores else None
    if args.settled_temps is not None:
        zone_idx, settle_c = args.settled_temps
        if zone_idx != system.spec.thermal_zone_index:
            raise SystemExit(
                f"machine exposes thermal_zone{system.spec.thermal_zone_index} "
                f"({system.spec.thermal_zone_name}), not thermal_zone{zone_idx}"
            )
        system.machine.cool_down(settle_c, max_s=600.0)
    sampler = Sampler(system, period_s=1.0 / args.poll_hz)
    sampler.start()
    result = run_hpl(
        system, HplConfig(n=args.n, nb=args.nb), variant=args.variant, cpus=cpus
    )
    trace = sampler.stop()
    return {"result": result, "trace": trace}


def write_run_csv(path: Path, trace) -> None:
    labels = sorted(trace.freq_mhz)
    with path.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["t_s", *(f"freq_{l}_mhz" for l in labels), "temp_c",
                    "package_w", "energy_j"])
        for i, t in enumerate(trace.times_s):
            w.writerow(
                [f"{t:.3f}",
                 *(f"{trace.freq_mhz[l][i]:.0f}" for l in labels),
                 f"{trace.temp_c[i]:.3f}",
                 f"{trace.package_w[i]:.3f}",
                 f"{trace.energy_j[i]:.3f}"]
            )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    args.out.mkdir(parents=True, exist_ok=True)
    summary = []
    for i in range(args.n_runs):
        out = run_one(args, i)
        result, trace = out["result"], out["trace"]
        csv_path = args.out / f"run_{i:03d}.csv"
        write_run_csv(csv_path, trace)
        summary.append(
            {
                "run": i,
                "gflops": result.gflops,
                "wall_s": result.wall_s,
                "energy_j": result.energy_j,
                "avg_power_w": result.avg_power_w,
                "csv": csv_path.name,
            }
        )
        print(
            f"run {i}: {result.gflops:.2f} Gflop/s in {result.wall_s:.1f} s, "
            f"avg {result.avg_power_w:.1f} W -> {csv_path}"
        )
    meta = {
        "machine": args.machine,
        "variant": args.variant,
        "n": args.n,
        "nb": args.nb,
        "cores": args.cores,
        "runs": summary,
    }
    (args.out / "summary.json").write_text(json.dumps(meta, indent=2))
    print(f"wrote {args.out / 'summary.json'}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
