"""``repro-papi-cost``: PAPI's self-overhead, papi_cost style.

Measures the per-call cost of PAPI_start/read/stop (in modeled
instructions and syscalls) for EventSets spanning 1..N PMUs — the §V-5
question ("we need to run extensive tests to see if there are any
overhead regressions"), as a reusable tool.
"""

from __future__ import annotations

import argparse

from repro.hw.machines import MACHINE_PRESETS
from repro.papi import Papi
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0))


def measure_eventset(system: System, papi: Papi, events: list[str], iterations: int):
    t = system.machine.spawn(
        SimThread("cost-target", Program([ComputePhase(1e9, RATES)]), affinity={0})
    )
    es = papi.create_eventset()
    papi.attach(es, t)
    for name in events:
        papi.add_event(es, name)
    stats = system.perf.cost.stats
    costs = {}
    for op, fn in (
        ("start+stop", lambda: (papi.start(es), papi.stop(es))),
        ("read", None),
    ):
        if op == "read":
            papi.start(es)
            before = stats.snapshot()
            for _ in range(iterations):
                papi.read(es)
            delta = stats.delta(before)
            papi.stop(es)
        else:
            before = stats.snapshot()
            for _ in range(iterations):
                fn()
            delta = stats.delta(before)
        costs[op] = (
            delta.total_calls / iterations,
            delta.instructions_charged / iterations,
        )
    papi.destroy_eventset(es)
    return costs


def main(argv=None) -> int:
    p = argparse.ArgumentParser(prog="repro-papi-cost", description=__doc__)
    p.add_argument("--machine", default="raptor-lake-i7-13700",
                   choices=sorted(MACHINE_PRESETS))
    p.add_argument("--iterations", type=int, default=100)
    args = p.parse_args(argv)

    system = System(args.machine, dt_s=1e-3)
    papi = Papi(system, mode="hybrid")
    core_pmus = papi.pfm.default_pmus()
    inst = "INST_RETIRED:ANY" if core_pmus[0].name.startswith(("adl", "skx")) else "INST_RETIRED"

    configs = {}
    configs["1 PMU"] = [f"{core_pmus[0].name}::{inst}"]
    if len(core_pmus) > 1:
        configs[f"{len(core_pmus)} PMUs"] = [
            f"{t.name}::{inst}" for t in core_pmus
        ]

    print(f"PAPI operation cost on {args.machine} "
          f"({args.iterations} iterations each)\n")
    print(f"{'EventSet':12s} {'op':12s} {'syscalls/op':>12s} {'instr/op':>12s}")
    for label, events in configs.items():
        costs = measure_eventset(system, papi, events, args.iterations)
        for op, (calls, instr) in costs.items():
            print(f"{label:12s} {op:12s} {calls:12.1f} {instr:12.0f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
