"""Command-line tools.

Analogs of the paper's artifact scripts and PAPI's utilities, operating
on the simulated machines:

* ``repro-mon-hpl`` — artifact A2's ``mon_hpl.py``: run HPL N times with
  1 Hz monitoring, writing raw per-run CSVs (same ``-n_runs``,
  ``-cores``, ``-settled_temps`` parameters as the paper's Table I of
  the artifact appendix);
* ``repro-process-runs`` — artifact A2's ``process_runs.py``: aggregate
  a raw-data directory into one averaged run;
* ``repro-hwinfo`` — ``papi_hwinfo``-style hardware report including the
  §V-1 per-core-type classes and the §IV-B detection survey;
* ``repro-papi-avail`` — ``papi_avail``/``papi_native_avail``: list the
  presets and native events available on a machine;
* ``repro-perf-stat`` — the mini perf tool: count events for a workload.
"""
