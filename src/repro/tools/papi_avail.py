"""``repro-papi-avail``: list presets and native events on a machine.

Combines PAPI's ``papi_avail`` (presets, with derivation info) and
``papi_native_avail`` (per-PMU native events).
"""

from __future__ import annotations

import argparse

from repro.hw.machines import MACHINE_PRESETS
from repro.papi import Papi
from repro.papi.consts import PRESETS, pmu_family
from repro.system import System


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro-papi-avail", description=__doc__)
    p.add_argument("--machine", default="raptor-lake-i7-13700",
                   choices=sorted(MACHINE_PRESETS))
    p.add_argument("--mode", default="hybrid", choices=["hybrid", "legacy"])
    p.add_argument("--native", action="store_true", help="list native events too")
    p.add_argument("--pmu", default=None, help="restrict native list to one PMU")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    system = System(args.machine)
    papi = Papi(system, mode=args.mode)

    defaults = papi.pfm.default_pmus()
    print(f"PAPI ({args.mode} mode) on {args.machine}")
    print(f"Core PMUs: {', '.join(t.name for t in defaults)}")
    print("\nPreset events:")
    print(f"  {'Name':14s} {'Avail':6s} {'Derived':12s} Native mapping")
    for name, spec in sorted(PRESETS.items()):
        avail = papi.query_event(name)
        if not avail:
            print(f"  {name:14s} no")
            continue
        natives = []
        for t in defaults:
            native = spec.get(pmu_family(t.name))
            if native and native.split(":")[0] in t:
                natives.append(f"{t.name}::{native}")
        derived = "DERIVED_ADD" if len(natives) > 1 else "NOT_DERIVED"
        if args.mode == "legacy" and len(defaults) > 1:
            derived = "UNAVAILABLE"
            print(f"  {name:14s} no     (multiple default PMUs)")
            continue
        print(f"  {name:14s} yes    {derived:12s} {' + '.join(natives)}")

    if args.native:
        print("\nNative events:")
        for full in papi.list_events(args.pmu):
            print(f"  {full}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
