"""``repro-process-runs``: the process_runs.py artifact.

Workflow T2 of artifact A2: read the raw-data directory written by
``repro-mon-hpl`` and produce an averaged run (CSV) plus summary
statistics ready for plotting or analysis.
"""

from __future__ import annotations

import argparse
import csv
import json
import statistics
from pathlib import Path

from repro.monitor import aggregate_traces
from repro.monitor.sampler import SampleTrace


def read_run_csv(path: Path) -> SampleTrace:
    trace = SampleTrace(period_s=1.0)
    with path.open() as fh:
        reader = csv.DictReader(fh)
        freq_cols = [c for c in reader.fieldnames or [] if c.startswith("freq_")]
        for row in reader:
            trace.times_s.append(float(row["t_s"]))
            for col in freq_cols:
                label = col[len("freq_"):-len("_mhz")]
                trace.freq_mhz.setdefault(label, []).append(float(row[col]))
            trace.temp_c.append(float(row["temp_c"]))
            trace.package_w.append(float(row["package_w"]))
            trace.energy_j.append(float(row["energy_j"]))
            trace.wall_power_w.append(float(row["package_w"]))
    if len(trace.times_s) >= 2:
        trace.period_s = trace.times_s[1] - trace.times_s[0]
    return trace


def main(argv=None) -> int:
    p = argparse.ArgumentParser(prog="repro-process-runs", description=__doc__)
    p.add_argument("raw_dir", type=Path, help="directory written by repro-mon-hpl")
    p.add_argument("--out", type=Path, default=None,
                   help="averaged CSV path (default: <raw_dir>/averaged.csv)")
    args = p.parse_args(argv)

    summary_path = args.raw_dir / "summary.json"
    if not summary_path.exists():
        raise SystemExit(f"{summary_path} not found; run repro-mon-hpl first")
    meta = json.loads(summary_path.read_text())
    traces = [read_run_csv(args.raw_dir / run["csv"]) for run in meta["runs"]]
    if not traces:
        raise SystemExit("no runs recorded")
    agg = aggregate_traces(traces)

    out = args.out or (args.raw_dir / "averaged.csv")
    labels = sorted(agg.freq_mhz)
    with out.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["t_s", *(f"freq_{l}_mhz" for l in labels), "temp_c", "package_w"])
        for i, t in enumerate(agg.times_s):
            w.writerow(
                [f"{t:.3f}",
                 *(f"{agg.freq_mhz[l][i]:.0f}" for l in labels),
                 f"{agg.temp_c[i]:.3f}",
                 f"{agg.package_w[i]:.3f}"]
            )

    gflops = [run["gflops"] for run in meta["runs"]]
    print(f"aggregated {len(traces)} runs -> {out}")
    print(
        f"Gflop/s: mean {statistics.mean(gflops):.2f}"
        + (f" +- {statistics.stdev(gflops):.2f}" if len(gflops) > 1 else "")
    )
    for label in labels:
        print(f"median freq {label}: {agg.median_freq_ghz(label):.2f} GHz")
    print(f"peak power: {agg.peak_power_w():.1f} W, steady: {agg.steady_power_w():.1f} W")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
