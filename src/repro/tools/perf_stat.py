"""``repro-perf-stat``: count events for a workload, perf-style.

Runs a workload (an HPL configuration, or a plain instruction loop) with
one event per core-type PMU per thread and prints the per-PMU counts —
the heterogeneous behaviour of the Linux perf tool the paper describes.
"""

from __future__ import annotations

import argparse

from repro.hpl import HplConfig
from repro.hpl.runner import HplCoordinator, HplThreadSource
from repro.hpl.model import hpl_steps
from repro.hpl.variants import VARIANTS
from repro.hw.machines import MACHINE_PRESETS
from repro.kernel.sched.affinity import parse_cpu_list
from repro.monitor import PerfStat
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro-perf-stat", description=__doc__)
    p.add_argument("--machine", default="raptor-lake-i7-13700",
                   choices=sorted(MACHINE_PRESETS))
    p.add_argument("-e", "--events", default="INST_RETIRED",
                   help="comma-separated unqualified event names")
    p.add_argument("--workload", default="loop", choices=["loop", "hpl"])
    p.add_argument("--instructions", type=float, default=5e7,
                   help="loop workload size")
    p.add_argument("--n", type=int, default=9216, help="HPL N")
    p.add_argument("--nb", type=int, default=192, help="HPL NB")
    p.add_argument("--variant", default="openblas", choices=sorted(VARIANTS))
    p.add_argument("--cores", default=None, help="CPU list to pin to")
    p.add_argument("--jitter", type=float, default=0.02,
                   help="scheduler migration noise probability per tick")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    events = [e.strip() for e in args.events.split(",") if e.strip()]
    system = System(
        args.machine,
        dt_s=1e-3 if args.workload == "loop" else 0.02,
        migrate_jitter=args.jitter,
        rebalance_jitter=args.jitter,
    )
    cpus = sorted(parse_cpu_list(args.cores)) if args.cores else None

    if args.workload == "loop":
        rates = constant_rates(PhaseRates(ipc=2.0, llc_refs_per_instr=0.005,
                                          llc_miss_rate=0.3))
        threads = [
            system.machine.spawn(
                SimThread("loop", Program([ComputePhase(args.instructions, rates)]),
                          affinity=set(cpus) if cpus else None)
            )
        ]
    else:
        config = HplConfig(n=args.n, nb=args.nb)
        cpu_list = cpus if cpus else system.topology.primary_threads()
        ctypes = [system.topology.core(c).ctype for c in cpu_list]
        coord = HplCoordinator(hpl_steps(config), VARIANTS[args.variant], ctypes)
        threads = [
            system.machine.spawn(
                SimThread(f"hpl-{i}",
                          HplThreadSource(coord, i, ctypes[i], nb=config.nb),
                          affinity={cpu})
            )
            for i, cpu in enumerate(cpu_list)
        ]

    tool = PerfStat(system)
    tool.open_for_threads(events, threads)
    tool.start()
    system.machine.run_until_done(threads, max_s=36_000)
    result = tool.stop()
    tool.close()

    print(f"Performance counter stats ({args.workload} on {args.machine}):\n")
    print(result.render())
    print()
    for ev in events:
        by_pmu = result.by_pmu(ev)
        total = sum(by_pmu.values())
        split = "  ".join(
            f"{pmu}: {v:.0f} ({v / total * 100 if total else 0:.1f}%)"
            for pmu, v in sorted(by_pmu.items())
        )
        print(f"{ev}: total {total:.0f}   {split}")
    print(f"\n{system.machine.now_s:.3f} seconds (simulated) elapsed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
