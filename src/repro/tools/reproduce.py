"""``repro-reproduce``: regenerate every paper artifact in one command.

Runs all the experiments from DESIGN.md's index (Tables I–IV, Figures
1–4, the §IV-F functional result, the §V-5 overhead study) and writes a
markdown report of regenerated-vs-paper values together with the shape
verdicts.  ``--quick`` shrinks the problem sizes for a fast smoke pass;
``--full-scale`` uses the paper's exact parameters.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import (
    energy_efficiency,
    fig1_frequencies,
    fig2_power,
    fig3_arm_throttle,
    fig4_arm_scaling,
    hybrid_eventset,
    overhead,
    rapl_overhead,
    table1_hw,
    table2_hpl,
    table3_counters,
)
from repro.experiments.common import orangepi_system, raptor_system
from repro.hpl import HplConfig

QUICK_RAPTOR = HplConfig(n=29952, nb=192)
QUICK_OPI = HplConfig(n=9984, nb=128)


def _block(title: str, body: str, verdicts: dict | None = None) -> str:
    out = [f"## {title}", "", "```", body, "```", ""]
    if verdicts is not None:
        out.append("Shape claims: " + ", ".join(
            f"{k}={'PASS' if v else 'FAIL'}" for k, v in verdicts.items()
        ))
        out.append("")
    return "\n".join(out)


def run_all(full_scale: bool = False, quick: bool = False, log=print) -> tuple[str, bool]:
    """Returns (markdown report, all shape claims passed)."""
    raptor_cfg = QUICK_RAPTOR if quick else None
    opi_cfg = QUICK_OPI if quick else None
    sections: list[str] = ["# Reproduction report", ""]
    all_ok = True

    def record(title, body, verdicts=None):
        nonlocal all_ok
        if verdicts is not None:
            all_ok = all_ok and all(verdicts.values())
        sections.append(_block(title, body, verdicts))

    log("Table I / Table IV (hardware config)...")
    record("Table I — Raptor Lake", table1_hw.render(table1_hw.run_hw_config(raptor_system())))
    record("Table IV — OrangePi 800", table1_hw.render(table1_hw.run_hw_config(orangepi_system())))

    log("Table II (six HPL cells)...")
    t2 = table2_hpl.run_table2(full_scale=full_scale, config=raptor_cfg)
    record("Table II — HPL Gflop/s", table2_hpl.render(t2), table2_hpl.shape_holds(t2))

    log("Table III (counter measurements)...")
    t3 = table3_counters.run_table3(full_scale=full_scale, config=raptor_cfg)
    record("Table III — counters", table3_counters.render(t3), table3_counters.shape_holds(t3))

    log("Figure 1 (frequencies)...")
    f1 = fig1_frequencies.run_fig1(full_scale=full_scale, config=raptor_cfg)
    record("Figure 1 — frequencies", fig1_frequencies.render(f1), fig1_frequencies.shape_holds(f1))

    log("Figure 2 (power and temperature)...")
    f2 = fig2_power.run_fig2(full_scale=full_scale, config=raptor_cfg)
    record("Figure 2 — power/temperature", fig2_power.render(f2), fig2_power.shape_holds(f2))

    log("Figure 3 (ARM throttling)...")
    f3 = fig3_arm_throttle.run_fig3(full_scale=full_scale, config=opi_cfg)
    record("Figure 3 — ARM throttling", fig3_arm_throttle.render(f3), fig3_arm_throttle.shape_holds(f3))

    log("Figure 4 (ARM core scaling)...")
    f4 = fig4_arm_scaling.run_fig4(full_scale=full_scale, config=opi_cfg)
    record("Figure 4 — ARM scaling", fig4_arm_scaling.render(f4), fig4_arm_scaling.shape_holds(f4))

    log("papi_hybrid_100m_one_eventset (both machines)...")
    scenarios = hybrid_eventset.run_paper_scenarios("raptor-lake-i7-13700")
    free = next(r for r in scenarios if (r.mode, r.pinned) == ("hybrid", None))
    r1_ok = {
        "counts_split": free.average(0) > 0 and free.average(1) > 0,
        "sum_near_1m": 1e6 <= free.avg_total <= 1.05e6,
    }
    record("§IV-F — hybrid EventSet test", hybrid_eventset.render(scenarios), r1_ok)

    log("§V-5 overhead ablation...")
    ov = overhead.run_overhead()
    record("§V-5 — overhead", overhead.render(ov), overhead.shape_holds(ov))

    log("V2 RAPL monitoring-overhead sweep...")
    ro = rapl_overhead.run_rapl_overhead()
    record("V2 — RAPL monitoring overhead", rapl_overhead.render(ro),
           rapl_overhead.shape_holds(ro))

    log("Energy efficiency extension...")
    ee = energy_efficiency.run_energy_efficiency(full_scale=full_scale, config=raptor_cfg)
    record("Extension — energy efficiency", energy_efficiency.render(ee),
           energy_efficiency.shape_holds(ee))

    sections.append(
        f"**Overall: {'ALL SHAPE CLAIMS HOLD' if all_ok else 'SOME CLAIMS FAILED'}**"
    )
    return "\n".join(sections), all_ok


def main(argv=None) -> int:
    p = argparse.ArgumentParser(prog="repro-reproduce", description=__doc__)
    p.add_argument("--out", type=Path, default=Path("reproduction_report.md"))
    p.add_argument("--quick", action="store_true",
                   help="reduced problem sizes (fast smoke pass)")
    p.add_argument("--full-scale", action="store_true",
                   help="the paper's exact problem sizes (slow)")
    args = p.parse_args(argv)
    report, ok = run_all(full_scale=args.full_scale, quick=args.quick)
    args.out.write_text(report)
    print(f"wrote {args.out}")
    print("ALL SHAPE CLAIMS HOLD" if ok else "SOME SHAPE CLAIMS FAILED")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
