"""``repro-hwinfo``: hardware report plus the core-type detection survey."""

from __future__ import annotations

import argparse

from repro.hw.machines import MACHINE_PRESETS, orangepi_800
from repro.kernel.sched.affinity import format_cpu_list
from repro.papi import detect_core_types
from repro.papi.hwinfo import get_hardware_info
from repro.system import System


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro-hwinfo", description=__doc__)
    p.add_argument("--machine", default="raptor-lake-i7-13700",
                   choices=sorted(MACHINE_PRESETS))
    p.add_argument("--firmware", default=None, choices=["devicetree", "acpi"],
                   help="ARM boot firmware personality (affects PMU names)")
    p.add_argument("--detect", action="store_true",
                   help="also run every core-type detection strategy")
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.firmware and args.machine == "orangepi-800":
        system = System(orangepi_800(firmware=args.firmware))
    else:
        system = System(args.machine)
    info = get_hardware_info(system)
    print(f"Model:          {info.model_string}")
    print(f"Vendor:         {info.vendor_string}")
    print(f"CPUs:           {info.totalcpus} logical / {info.cores} cores / "
          f"{info.sockets} socket(s)")
    print(f"Memory:         {info.memory_gib} GiB")
    print(f"Heterogeneous:  {info.heterogeneous}")
    for cc in info.core_classes:
        print(
            f"  class {cc.name:10s} {cc.n_physical_cores} cores "
            f"({cc.n_logical_cpus} threads)  "
            f"{cc.base_mhz / 1000:.2f}-{cc.max_mhz / 1000:.2f} GHz  "
            f"capacity {cc.capacity:4d}  PMU {cc.pmu_name} (pfm {cc.pfm_pmu})  "
            f"cpus [{format_cpu_list(cc.cpu_ids)}]"
        )
    if args.detect:
        print("\nCore-type detection strategies (IV-B):")
        report = detect_core_types(system)
        for r in report.results:
            if not r.applicable:
                print(f"  {r.strategy:20s} n/a  ({r.detail})")
                continue
            classes = ", ".join(
                f"{k}=[{format_cpu_list(v)}]" for k, v in sorted(r.classes.items())
            )
            print(f"  {r.strategy:20s} {r.n_classes} class(es): {classes}")
        print(f"  consensus: {len(report.consensus)} core type(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
