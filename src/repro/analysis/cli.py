"""``python -m repro.analysis`` — the repro-lint command line.

Exit codes: 0 clean (baseline allowed), 1 findings (or parse errors),
2 usage errors.  ``--strict`` also fails on warnings; the default mode
fails on errors only.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.core import RULE_REGISTRY, all_rules
from repro.analysis.driver import DEFAULT_PATHS, run_analysis
from repro.analysis.report import render_human, render_json

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: statically enforce the simulator's determinism "
            "and PAPI-contract invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root paths are relative to (default: cwd)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only errors",
    )
    parser.add_argument("--json", action="store_true", help="JSON report")
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE-ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:16s} [{rule.severity}] {rule.description}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: root {args.root!r} is not a directory", file=sys.stderr)
        return 2
    if args.rules:
        unknown = set(args.rules) - set(RULE_REGISTRY)
        # Unknown names are caught after rule modules load inside
        # all_rules(); pre-check gives a cleaner usage error.
        all_rules()
        unknown = set(args.rules) - set(RULE_REGISTRY)
        if unknown:
            print(
                f"error: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    baseline = None
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result = run_analysis(
        root, paths=args.paths, baseline=baseline, only_rules=args.rules
    )

    if args.write_baseline:
        Baseline.from_findings(
            result.new_findings + result.baselined
        ).save(baseline_path)
        print(
            f"wrote {baseline_path} with "
            f"{len(result.new_findings) + len(result.baselined)} entr(ies)"
        )
        return 0

    report = (
        render_json(result, strict=args.strict)
        if args.json
        else render_human(result, strict=args.strict)
    )
    print(report)
    return 1 if result.failed(strict=args.strict) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
