"""``python -m repro.analysis`` — the repro-lint command line.

Exit codes: 0 clean (baseline allowed), 1 findings (or parse errors),
2 usage errors.  ``--strict`` also fails on warnings; the default mode
fails on errors only.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.core import RULE_REGISTRY, all_rules
from repro.analysis.driver import DEFAULT_PATHS, run_analysis
from repro.analysis.report import render_human, render_json, render_sarif

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: statically enforce the simulator's determinism "
            "and PAPI-contract invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root paths are relative to (default: cwd)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only errors",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="JSON report (alias for --format json)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default=None,
        dest="fmt",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "report only on files changed vs git HEAD (plus untracked); "
            "whole-program rules still read the full program, so their "
            "findings on touched files match a full run"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE-ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    return parser


def changed_files(root: Path) -> Optional[list[str]]:
    """Root-relative ``.py`` files changed vs HEAD, plus untracked ones.

    Covers staged and unstaged modifications (``git diff HEAD``) and
    new files not yet tracked; deletions drop out naturally because the
    driver only reports on files it can still discover on disk.
    Returns None when git is unavailable (callers fall back to a full
    run rather than silently reporting nothing).
    """
    out: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, cwd=root, capture_output=True, text=True, check=False
            )
        except OSError:
            return None
        if proc.returncode != 0:
            return None
        out.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    return sorted(p for p in out if p.endswith(".py"))


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:16s} [{rule.severity}] {rule.description}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: root {args.root!r} is not a directory", file=sys.stderr)
        return 2
    if args.rules:
        unknown = set(args.rules) - set(RULE_REGISTRY)
        # Unknown names are caught after rule modules load inside
        # all_rules(); pre-check gives a cleaner usage error.
        all_rules()
        unknown = set(args.rules) - set(RULE_REGISTRY)
        if unknown:
            print(
                f"error: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    baseline = None
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    report_paths: Optional[list[str]] = None
    if args.changed_only:
        report_paths = changed_files(root)
        if report_paths is None:
            print(
                "warning: --changed-only needs git; running on everything",
                file=sys.stderr,
            )
        elif not report_paths:
            print("repro-lint: ok — no changed files")
            return 0

    result = run_analysis(
        root,
        paths=args.paths,
        baseline=baseline,
        only_rules=args.rules,
        report_paths=report_paths,
    )

    if args.write_baseline:
        Baseline.from_findings(
            result.new_findings + result.baselined
        ).save(baseline_path)
        print(
            f"wrote {baseline_path} with "
            f"{len(result.new_findings) + len(result.baselined)} entr(ies)"
        )
        return 0

    fmt = args.fmt or ("json" if args.json else "human")
    if fmt == "json":
        report = render_json(result, strict=args.strict)
    elif fmt == "sarif":
        report = render_sarif(result)
    else:
        report = render_human(result, strict=args.strict)
    print(report)
    return 1 if result.failed(strict=args.strict) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
