"""Snapshot-surface cross-check.

Every stateful layer declares its full attribute surface on the
:func:`repro.checkpoint.surface.snapshot_surface` decorator:
``state=(...)`` names the serialized attributes, ``caches=(...)`` the
attributes dropped at snapshot time and rebuilt on restore.  At runtime
the registry test only asserts that the *classes* are declared; this
rule statically diffs the declaration against every attribute the class
body actually assigns, so adding a new mutable attribute without
deciding its snapshot fate fails CI immediately:

* an assigned attribute missing from ``state`` + ``caches`` is an
  undeclared-surface error (it would silently join the pickle payload
  and the digest without review);
* a declared attribute never assigned anywhere in the class body is a
  stale declaration;
* ``digest_exclude`` must name serialized attributes (a subset of
  ``state``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, Rule, Severity, SourceModule, register


def _decorator_call(cls: ast.ClassDef, name: str) -> Optional[ast.Call]:
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call):
            func = deco.func
            if (isinstance(func, ast.Name) and func.id == name) or (
                isinstance(func, ast.Attribute) and func.attr == name
            ):
                return deco
    return None


def _has_decorator(cls: ast.ClassDef, name: str) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if (isinstance(target, ast.Name) and target.id == name) or (
            isinstance(target, ast.Attribute) and target.attr == name
        ):
            return True
    return False


def _str_tuple(node: Optional[ast.expr]) -> Optional[tuple[str, ...]]:
    """A literal tuple/list of strings, or None when unparsable."""
    if node is None:
        return ()
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return tuple(out)
    return None


def _self_attr_assignments(
    cls: ast.ClassDef,
) -> dict[str, ast.AST]:
    """attribute name -> first AST node assigning ``self.<name>``."""
    assigned: dict[str, ast.AST] = {}

    def collect_target(target: ast.expr, self_name: str, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect_target(elt, self_name, node)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == self_name
        ):
            assigned.setdefault(target.attr, node)

    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if any(
            isinstance(d, ast.Name) and d.id in ("staticmethod", "classmethod")
            for d in item.decorator_list
        ):
            continue
        if not item.args.args:
            continue
        self_name = item.args.args[0].arg
        for node in ast.walk(item):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    collect_target(target, self_name, node)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                collect_target(node.target, self_name, node)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "setattr"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == self_name
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                assigned.setdefault(node.args[1].value, node)
    return assigned


def _dataclass_fields(cls: ast.ClassDef) -> dict[str, ast.AST]:
    """Instance attributes a ``@dataclass`` class gains from its fields."""
    fields: dict[str, ast.AST] = {}
    if not _has_decorator(cls, "dataclass"):
        return fields
    for item in cls.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            ann = item.annotation
            text = ast.unparse(ann) if ann is not None else ""
            if "ClassVar" in text:
                continue
            fields.setdefault(item.target.id, item)
    return fields


@register
class SnapshotSurfaceRule(Rule):
    id = "SURFACE-DECL"
    severity = Severity.ERROR
    description = (
        "every @snapshot_surface class must declare its complete attribute "
        "surface (state= plus caches=) and keep it in sync with the code"
    )
    scope = ("src/repro",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.tree is None:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                deco = _decorator_call(node, "snapshot_surface")
                if deco is not None:
                    yield from self._check_class(module, node, deco)

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef, deco: ast.Call
    ) -> Iterator[Finding]:
        kwargs = {kw.arg: kw.value for kw in deco.keywords if kw.arg}
        if "state" not in kwargs:
            yield self.finding(
                module,
                deco,
                f"{cls.name} declares no state=; list every serialized "
                "attribute so additions are reviewed",
                symbol=cls.name,
            )
            return
        state = _str_tuple(kwargs.get("state"))
        caches = _str_tuple(kwargs.get("caches"))
        digest_exclude = _str_tuple(kwargs.get("digest_exclude"))
        if state is None or caches is None or digest_exclude is None:
            yield self.finding(
                module,
                deco,
                f"{cls.name}: state=/caches=/digest_exclude= must be "
                "literal tuples of attribute names",
                symbol=cls.name,
            )
            return

        assigned = _dataclass_fields(cls)
        for name, site in _self_attr_assignments(cls).items():
            assigned.setdefault(name, site)
        declared = set(state) | set(caches)

        for name in sorted(set(assigned) - declared):
            yield self.finding(
                module,
                assigned[name],
                f"{cls.name}.{name} is assigned but not in the snapshot "
                "surface; add it to state= (serialized) or caches= "
                "(dropped and rebuilt)",
                symbol=cls.name,
            )
        for name in sorted(declared - set(assigned)):
            yield self.finding(
                module,
                deco,
                f"{cls.name}.{name} is declared in the snapshot surface "
                "but never assigned in the class body",
                symbol=cls.name,
            )
        overlap = set(state) & set(caches)
        for name in sorted(overlap):
            yield self.finding(
                module,
                deco,
                f"{cls.name}.{name} is listed as both state and cache",
                symbol=cls.name,
            )
        for name in sorted(set(digest_exclude) - set(state)):
            yield self.finding(
                module,
                deco,
                f"{cls.name}.{name} is digest-excluded but not serialized "
                "state",
                symbol=cls.name,
            )
