"""Versioned baseline of accepted findings.

The baseline records *deliberate* exceptions — e.g. the overhead
experiment's intentionally mixed-PMU eventsets — by fingerprint
(rule + path + symbol + message, no line number, so unrelated edits do
not invalidate entries).  New findings fail the run; baselined ones are
reported as accepted; entries whose finding disappeared are reported as
stale so the file never rots silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.core import Finding

BASELINE_VERSION = 1


@dataclass
class Baseline:
    entries: dict[str, dict] = field(default_factory=dict)  # fingerprint -> entry

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("tool") != "repro-lint":
            raise ValueError(f"{path} is not a repro-lint baseline")
        version = data.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{path}: baseline version {version!r} not supported "
                f"(expected {BASELINE_VERSION}); regenerate with "
                "--write-baseline"
            )
        return cls(entries={e["fingerprint"]: e for e in data.get("entries", [])})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries = {}
        for f in findings:
            entries[f.fingerprint] = {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "symbol": f.symbol,
                "message": f.message,
            }
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "tool": "repro-lint",
            "version": BASELINE_VERSION,
            "entries": sorted(
                self.entries.values(),
                key=lambda e: (e["path"], e["rule"], e["fingerprint"]),
            ),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def stale_entries(self, findings: Iterable[Finding]) -> list[dict]:
        seen = {f.fingerprint for f in findings}
        return [e for fp, e in sorted(self.entries.items()) if fp not in seen]
