"""A small typestate engine over the per-function CFG.

Tracks *resources* — values returned by designated creator methods
(``create_eventset``, ``perf_event_open``) and bound to plain local
names — through the states of a declared protocol, merging with set
union at CFG joins.  Reports:

* **must-violations** — a method invoked in a state where *every*
  possible abstract state is illegal (read-before-start, double-start,
  use-after-destroy).  May-violations (legal on one path, illegal on
  another) are deliberately not reported to keep the false-positive
  rate near zero;
* **leaks** — a resource whose state at the function's *normal* exit is
  possibly-live on every path and whose handle never escapes the
  function (no store into a container/attribute, no return, no closure
  capture, no call handing it to unknown code).

Escape analysis is flow-insensitive: one escaping use anywhere exempts
the variable entirely.  Exceptional exits are not leak-checked — an
escaping exception already aborts the protocol, and the runtime layers
surface those loudly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.cfg import CFG, build_cfg


@dataclass(frozen=True)
class Protocol:
    """Typestate specification for one resource kind."""

    name: str
    #: creator method name -> initial state
    creators: dict[str, str]
    #: (state, method) -> next state for legal moves
    transitions: dict[tuple[str, str], str]
    #: (state, method) -> error message for illegal moves; the state
    #: ``"*"`` matches any method on that state (use-after-destroy).
    errors: dict[tuple[str, str], str]
    #: methods that accept the resource without changing its state
    neutral: frozenset[str]
    #: states that constitute a leak if still possible at normal exit
    leak_states: frozenset[str]
    leak_message: str
    #: *function* (not method) call extensions, derived by the
    #: interprocedural pass: ``make_es()`` -> initial state,
    #: ``cleanup(es)`` -> resulting state, ``probe(es)`` -> no change.
    func_creators: dict[str, str] = field(default_factory=dict)
    func_closers: dict[str, str] = field(default_factory=dict)
    func_neutral: frozenset[str] = frozenset()

    def tracked_methods(self) -> set[str]:
        out = set(self.neutral)
        for _state, method in self.transitions:
            out.add(method)
        for _state, method in self.errors:
            if method != "*":
                out.add(method)
        return out


@dataclass(frozen=True)
class Violation:
    node: ast.AST
    message: str
    kind: str                  # "protocol" or "leak"


@dataclass
class _Tracked:
    creation: ast.AST
    escaped: bool = False


# -- AST scanning helpers ----------------------------------------------------


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an AST without descending into nested function bodies."""
    stack = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def _call_name(node: ast.expr) -> Optional[str]:
    """Bare callee name of ``f(...)`` or ``mod.f(...)`` (last component)."""
    if not isinstance(node, ast.Call):
        return None
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _creation_state(node: ast.expr, protocol: Protocol) -> Optional[str]:
    """Initial state when ``node`` is a creator call, else ``None``.

    Matches both ``<recv>.creator(...)`` method calls (the base
    protocol) and ``make_handle(...)`` function calls registered by the
    interprocedural pass in ``func_creators``.
    """
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in protocol.creators
    ):
        return protocol.creators[node.func.attr]
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        state = protocol.func_creators.get(node.func.id)
        if state is not None:
            return state
    return None


def _find_creations(
    func: ast.FunctionDef | ast.AsyncFunctionDef, protocol: Protocol
) -> dict[str, _Tracked]:
    """Locals bound directly to a creator call, e.g. ``es = p.create_eventset()``."""
    tracked: dict[str, _Tracked] = {}
    for node in _walk_shallow(func):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if (
            target is not None
            and value is not None
            and isinstance(target, ast.Name)
            and _creation_state(value, protocol) is not None
        ):
            tracked.setdefault(target.id, _Tracked(creation=node))
    return tracked


def _mark_escapes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    tracked: dict[str, _Tracked],
    protocol: Protocol,
) -> None:
    """Flow-insensitive: any use that may hand the value to unknown code."""
    names = set(tracked)
    known = protocol.tracked_methods()

    def contains(node: ast.AST, name: str) -> bool:
        return any(
            isinstance(n, ast.Name) and n.id == name and isinstance(n.ctx, ast.Load)
            for n in ast.walk(node)
        )

    for node in _walk_shallow(func):
        # Closure capture: a nested function/lambda reading the name.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                for name in names:
                    if contains(child, name):
                        tracked[name].escaped = True

        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            # Returning the handle itself aliases it; returning f(handle)
            # does not (the call-argument rule governs that use).
            if isinstance(node.value, ast.Name) and node.value.id in names:
                tracked[node.value.id].escaped = True
        elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for elt in node.elts:
                if isinstance(elt, ast.Name) and elt.id in names:
                    tracked[elt.id].escaped = True
        elif isinstance(node, ast.Dict):
            for v in list(node.keys) + list(node.values):
                if isinstance(v, ast.Name) and v.id in names:
                    tracked[v.id].escaped = True
        elif isinstance(node, ast.Assign):
            # The handle itself stored into an attribute/subscript ->
            # reachable elsewhere.  Storing f(handle) is not an escape;
            # the call-argument rule governs that use.
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
            ):
                if isinstance(node.value, ast.Name) and node.value.id in names:
                    tracked[node.value.id].escaped = True
        elif isinstance(node, ast.Call):
            is_attr = isinstance(node.func, ast.Attribute)
            method = node.func.attr if is_attr else None
            is_name = isinstance(node.func, ast.Name)
            fname = node.func.id if is_name else None
            known_func = fname is not None and (
                fname in protocol.func_closers or fname in protocol.func_neutral
            )
            first_pos_is_resource = bool(
                node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in names
            )
            for i, arg in enumerate(node.args):
                if not (isinstance(arg, ast.Name) and arg.id in names):
                    continue
                # <recv>.known_method(res, ...) and summarized helper
                # functions (interproc closers/neutral) keep ownership
                # local; anything else may stash the handle.
                if is_attr and method in known and i == 0 and first_pos_is_resource:
                    continue
                if known_func and i == 0 and first_pos_is_resource:
                    continue
                tracked[arg.id].escaped = True
            for kw in node.keywords:
                if isinstance(kw.value, ast.Name) and kw.value.id in names:
                    tracked[kw.value.id].escaped = True


# -- the dataflow ------------------------------------------------------------


_ESCAPED = "<escaped>"

StateSet = frozenset[str]
Env = dict[str, StateSet]


def _merge(a: Env, b: Env) -> Env:
    out = dict(a)
    for var, states in b.items():
        out[var] = out.get(var, frozenset()) | states
    return out


def _stmt_parts(stmt: ast.stmt) -> list[ast.AST]:
    """What a CFG node for ``stmt`` actually evaluates.

    Compound statements appear in the CFG as a *header* node with their
    bodies lowered to separate nodes, so only the header expressions
    (loop iterable, branch test, with-items) belong to this node.
    """
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.While, ast.If)):
        return [stmt.test]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def analyze_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef, protocol: Protocol
) -> list[Violation]:
    """Run the typestate protocol over one function."""
    tracked = _find_creations(func, protocol)
    if not tracked:
        return []
    _mark_escapes(func, tracked, protocol)
    # Escaped handles leave the analysis entirely: once the value is
    # reachable from elsewhere, any local conclusion about its state is
    # unsound, so precision wins over recall.
    tracked = {name: t for name, t in tracked.items() if not t.escaped}
    if not tracked:
        return []
    live = set(tracked)

    cfg = build_cfg(func)
    violations: list[Violation] = []
    reported: set[tuple[int, str]] = set()

    def transfer(env: Env, stmt: ast.stmt, emit: bool = False) -> Env:
        env = dict(env)
        for part in _stmt_parts(stmt):
            env = _transfer_part(env, part, emit)
        return env

    def _transfer_part(env: Env, stmt: ast.AST, emit: bool) -> Env:
        env = dict(env)
        for node in _walk_shallow(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if not (
                    node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in tracked
                ):
                    continue
                var = node.args[0].id
                states = env.get(var)
                if not states or states == {_ESCAPED}:
                    continue
                relevant = protocol.tracked_methods()
                if method not in relevant and (
                    not any(key[1] == "*" for key in protocol.errors)
                ):
                    continue
                msgs = []
                next_states: set[str] = set()
                for state in states:
                    err = protocol.errors.get((state, method)) or protocol.errors.get(
                        (state, "*")
                    )
                    if err is not None:
                        msgs.append(err)
                        next_states.add(state)
                        continue
                    nxt = protocol.transitions.get((state, method))
                    if nxt is not None:
                        next_states.add(nxt)
                    else:
                        next_states.add(state)  # neutral / unknown: no change
                if emit and msgs and len(msgs) == len(states):
                    # Illegal on every path -> must-violation.  Only
                    # emitted after the fixpoint converged: partial
                    # state sets mid-iteration would over-report.
                    key = (node.lineno, msgs[0])
                    if key not in reported:
                        reported.add(key)
                        violations.append(
                            Violation(node, msgs[0].format(var=var), "protocol")
                        )
                env[var] = frozenset(next_states)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                # Summarized helper functions from the interprocedural
                # pass: ``cleanup(res)`` transitions the resource into
                # the closer's final state; neutral helpers leave it.
                fname = node.func.id
                if fname not in protocol.func_closers:
                    continue
                if not (
                    node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in tracked
                ):
                    continue
                var = node.args[0].id
                if env.get(var):
                    env[var] = frozenset({protocol.func_closers[fname]})
        # (Re)creation and rebinding, after uses inside the value expr.
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if isinstance(target, ast.Name) and target.id in tracked and value is not None:
            var = target.id
            state = _creation_state(value, protocol)
            if state is not None:
                env[var] = frozenset({state})
            else:
                env[var] = frozenset()  # rebound to something else
        return env

    # Worklist fixpoint over the CFG.
    in_env: dict[int, Env] = {cfg.entry.idx: {}}
    worklist = [cfg.entry.idx]
    out_env: dict[int, Env] = {}
    iterations = 0
    limit = 50 * max(1, len(cfg.nodes))
    while worklist and iterations < limit:
        iterations += 1
        idx = worklist.pop(0)
        node = cfg.nodes[idx]
        env = in_env.get(idx, {})
        if node.stmt is not None and not isinstance(node.stmt, ast.ExceptHandler):
            env = transfer(env, node.stmt)
        if out_env.get(idx) == env:
            continue
        out_env[idx] = env
        for succ in node.succs:
            merged = _merge(in_env.get(succ, {}), env)
            if merged != in_env.get(succ):
                in_env[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)

    # Reporting pass over the converged solution.
    for idx, env in in_env.items():
        node = cfg.nodes[idx]
        if node.stmt is not None and not isinstance(node.stmt, ast.ExceptHandler):
            transfer(env, node.stmt, emit=True)

    exit_env = in_env.get(cfg.exit.idx, {})
    for var in sorted(live):
        states = exit_env.get(var, frozenset())
        if states and states <= protocol.leak_states:
            violations.append(
                Violation(
                    tracked[var].creation,
                    protocol.leak_message.format(var=var),
                    "leak",
                )
            )
    return violations


def functions_of(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
