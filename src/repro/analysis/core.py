"""Core model of the repro-lint static analyzer.

The analyzer enforces, *before* anything runs, the two invariant
families the rest of the stack only checks dynamically:

* **determinism** — the bit-identity guarantees (fastpath parity,
  checkpoint/restore) hold only if no sim-layer code consults wall
  clocks, OS entropy, the process-global ``random`` module, or
  PYTHONHASHSEED-sensitive iteration order;
* **PAPI/perf contracts** — the eventset lifecycle and perf fd
  discipline whose violation the paper shows is *silent* (an event on
  the wrong core type counts zero, a leaked fd keeps charging syscall
  cost).

This module holds the shared vocabulary: :class:`Finding`,
:class:`Rule`, the rule registry, and :class:`SourceModule` (one parsed
file plus its ``# repro-lint: disable=...`` suppressions).
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Iterable, Iterator, Optional


class Severity(str, Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str                 # root-relative, posix separators
    line: int
    col: int
    message: str
    symbol: str = ""          # enclosing function/class qualname, if any

    @property
    def fingerprint(self) -> str:
        """Location-drift-tolerant identity used by the baseline file.

        Deliberately excludes the line number *and the file path*: a
        baselined finding survives unrelated edits above it and — since
        the enclosing symbol and message already pin it down — survives
        the file being renamed or moved.  The (accepted) cost is that
        two byte-identical findings in different files share one
        fingerprint, so baselining one accepts both.
        """
        raw = "|".join((self.rule, self.symbol, self.message))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        where = f" [{self.symbol}]" if self.symbol else ""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"{self.severity}: {self.message}{where}"
        )


#: ``# repro-lint: disable=RULE[,RULE...]`` or ``disable=all``.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-,\s]+|all)")


class SourceModule:
    """One parsed source file, with suppression comments resolved."""

    def __init__(self, path: str, text: str):
        self.path = path          # root-relative posix path
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None
        self._origins: Optional[dict[str, str]] = None
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            self.parse_error = exc
        #: line number -> set of rule ids (or {"all"}) disabled there.
        self.suppressions: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                self.suppressions[lineno] = rules

    @property
    def origins(self) -> dict[str, str]:
        """Cached :func:`import_origins` of this module (empty when the
        module failed to parse)."""
        if self._origins is None:
            self._origins = (
                import_origins(self.tree) if self.tree is not None else {}
            )
        return self._origins

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if not rules:
            return False
        return "all" in rules or finding.rule in rules

    @classmethod
    def load(cls, root: Path, relpath: str) -> "SourceModule":
        text = (root / relpath).read_text(encoding="utf-8")
        return cls(relpath, text)


class Rule:
    """Base class: one named invariant checked against one module.

    ``scope`` restricts the rule to files whose root-relative path
    starts with one of the given prefixes (``None`` = every analyzed
    file).  Rules are registered with :func:`register` and instantiated
    fresh per run.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    scope: Optional[tuple[str, ...]] = None

    def applies_to(self, relpath: str) -> bool:
        if self.scope is None:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        message: str,
        symbol: str = "",
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


class ProgramRule(Rule):
    """A rule that sees the whole program at once.

    Per-module :meth:`check` is a no-op; the driver calls
    :meth:`check_program` exactly once with every parsed module.  The
    ``scope`` attribute still gates which files the rule *reports on*
    (via :meth:`applies_to`), but a program rule may read any module to
    build its call graph or protocol tables.
    """

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def check_program(self, modules: list[SourceModule]) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self,
        path: str,
        node: ast.AST,
        message: str,
        symbol: str = "",
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


#: rule id -> rule class
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} has no rule id")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules(only: Optional[Iterable[str]] = None) -> list[Rule]:
    """Fresh instances of every registered rule (or a named subset)."""
    # Importing the rule modules populates the registry.
    from repro.analysis import interproc  # noqa: F401
    from repro.analysis import protocol  # noqa: F401
    from repro.analysis import rules_concurrency  # noqa: F401
    from repro.analysis import rules_determinism  # noqa: F401
    from repro.analysis import rules_hotpath  # noqa: F401
    from repro.analysis import rules_papi  # noqa: F401
    from repro.analysis import rules_surface  # noqa: F401
    from repro.analysis import taint  # noqa: F401

    wanted = set(only) if only is not None else None
    rules = []
    for rule_id in sorted(RULE_REGISTRY):
        if wanted is None or rule_id in wanted:
            rules.append(RULE_REGISTRY[rule_id]())
    if wanted:
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    return rules


# -- shared AST helpers ------------------------------------------------------


def import_origins(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported as.

    ``import time`` -> ``{"time": "time"}``;
    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime as dt`` ->
    ``{"dt": "datetime.datetime"}``.
    """
    origins: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origins[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                origins[local] = f"{node.module}.{alias.name}"
    return origins


def resolve_dotted(node: ast.expr, origins: dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.seed`` to ``"numpy.random.seed"`` using the
    import map; ``None`` when the expression is not a plain dotted name.
    """
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = origins.get(cur.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def enclosing_symbols(tree: ast.Module) -> dict[int, str]:
    """Map every AST node id to its enclosing function/class qualname."""
    out: dict[int, str] = {}

    def visit(node: ast.AST, qual: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_qual = qual
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                child_qual = f"{qual}.{child.name}" if qual else child.name
            out[id(child)] = child_qual
            visit(child, child_qual)

    visit(tree, "")
    return out


@dataclass
class LiteralEnv:
    """Constant bindings usable for best-effort literal resolution.

    Tracks ``NAME = <literal str / list / tuple / dict>`` assignments at
    module scope and within one function, so rules can see through
    simple indirection like a module-level ``EVENTSET_CONFIGS`` table.
    """

    bindings: dict[str, ast.expr] = field(default_factory=dict)

    @classmethod
    def from_scope(
        cls, body: list[ast.stmt], parent: Optional["LiteralEnv"] = None
    ) -> "LiteralEnv":
        env = cls(dict(parent.bindings) if parent else {})
        for stmt in body:
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and _is_literalish(value):
                    env.bindings[target.id] = value
        return env

    def resolve_strings(self, node: ast.expr, depth: int = 0) -> list[str]:
        """All literal strings an expression can denote (best effort)."""
        if depth > 4:
            return []
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value]
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out: list[str] = []
            for elt in node.elts:
                out.extend(self.resolve_strings(elt, depth + 1))
            return out
        if isinstance(node, ast.Name):
            bound = self.bindings.get(node.id)
            if bound is not None:
                return self.resolve_strings(bound, depth + 1)
        return []


def _is_literalish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return all(_is_literalish(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return all(k is not None and _is_literalish(k) for k in node.keys) and all(
            _is_literalish(v) for v in node.values
        )
    return False
