"""PAPI / perf contract rules.

The paper's central hazard is *silent* misuse: an event added to an
EventSet counts zero on the wrong core type with no error, a leaked
EventSet or perf fd keeps charging syscall cost forever, a read before
start returns garbage only at runtime.  These rules check the protocol
statically:

* ``PAPI-LIFECYCLE`` — typestate over the eventset handle: ``create ->
  add -> start -> stop -> cleanup/destroy``; flags read-before-start,
  double-start, stop-without-running, use-after-destroy, and handles
  that fall off the end of a function undestroyed;
* ``PAPI-FD-LEAK`` — the same engine over ``perf_event_open`` fds;
* ``PAPI-PMU-MIX`` — eventsets whose *literal* event names resolve to
  different core-PMU types (``adl_glc`` vs ``adl_grt``, ``arm_a72`` vs
  ``arm_a53``).  Mixing is exactly what hybrid mode supports, but each
  event still counts zero whenever the thread runs on the other core
  type, so every mix must be a conscious decision — suppress or
  baseline the deliberate ones.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    LiteralEnv,
    Rule,
    Severity,
    SourceModule,
    enclosing_symbols,
    register,
)
from repro.analysis.typestate import Protocol, analyze_function, functions_of

# -- the eventset protocol ---------------------------------------------------

EVENTSET_PROTOCOL = Protocol(
    name="eventset",
    creators={"create_eventset": "new"},
    transitions={
        ("new", "attach"): "new",
        ("new", "set_multiplex"): "new",
        ("new", "add_event"): "new",
        ("new", "add_events"): "new",
        ("new", "start"): "running",
        ("running", "read"): "running",
        ("running", "reset"): "running",
        ("running", "accum"): "running",
        ("running", "overflow"): "running",
        ("running", "stop"): "stopped",
        ("stopped", "read"): "stopped",
        ("stopped", "reset"): "stopped",
        ("stopped", "add_event"): "stopped",
        ("stopped", "add_events"): "stopped",
        ("stopped", "overflow"): "stopped",
        ("stopped", "start"): "running",
        ("new", "cleanup_eventset"): "new",
        ("stopped", "cleanup_eventset"): "new",
        ("new", "destroy_eventset"): "destroyed",
        ("stopped", "destroy_eventset"): "destroyed",
    },
    errors={
        ("new", "read"): "EventSet {var!r} is read before it is ever started",
        ("new", "stop"): "EventSet {var!r} is stopped but was never started",
        ("new", "reset"): "EventSet {var!r} is reset before it is ever started",
        ("new", "accum"): "EventSet {var!r} is accumulated before it is started",
        ("running", "start"): "EventSet {var!r} is started twice without a stop",
        ("running", "add_event"): (
            "adding an event to EventSet {var!r} while it is counting"
        ),
        ("running", "add_events"): (
            "adding events to EventSet {var!r} while it is counting"
        ),
        ("running", "cleanup_eventset"): (
            "cleaning up EventSet {var!r} while it is counting"
        ),
        ("running", "destroy_eventset"): (
            "destroying EventSet {var!r} while it is counting; stop it first"
        ),
        ("stopped", "stop"): "EventSet {var!r} is stopped twice",
        ("destroyed", "*"): "EventSet {var!r} is used after destroy_eventset",
    },
    neutral=frozenset({"num_groups", "last_status", "names", "eventset"}),
    leak_states=frozenset({"new", "running", "stopped"}),
    leak_message=(
        "EventSet {var!r} is created here but never destroyed on any path "
        "(its kernel fds and slots leak); call destroy_eventset"
    ),
)

FD_PROTOCOL = Protocol(
    name="perf-fd",
    creators={"perf_event_open": "open"},
    transitions={
        ("open", "ioctl"): "open",
        ("open", "read"): "open",
        ("open", "close"): "closed",
    },
    errors={
        ("closed", "ioctl"): "perf fd {var!r} is used after close",
        ("closed", "read"): "perf fd {var!r} is read after close",
        ("closed", "close"): "perf fd {var!r} is closed twice",
    },
    neutral=frozenset({"_event"}),
    leak_states=frozenset({"open"}),
    leak_message=(
        "perf fd {var!r} from perf_event_open is never closed on any path; "
        "the event keeps counting and charging syscall cost"
    ),
)


@register
class EventSetLifecycleRule(Rule):
    id = "PAPI-LIFECYCLE"
    severity = Severity.ERROR
    description = (
        "eventset handles must follow create -> add -> start -> stop -> "
        "destroy; misordered calls fail (or lie) at runtime"
    )

    protocol = EVENTSET_PROTOCOL

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.tree is None:
            return
        symbols = enclosing_symbols(module.tree)
        for func in functions_of(module.tree):
            for violation in analyze_function(func, self.protocol):
                yield self.finding(
                    module,
                    violation.node,
                    violation.message,
                    symbol=symbols.get(id(violation.node), func.name),
                )


@register
class PerfFdLeakRule(EventSetLifecycleRule):
    id = "PAPI-FD-LEAK"
    severity = Severity.ERROR
    description = (
        "fds from perf_event_open must reach close() on every normal path"
    )

    protocol = FD_PROTOCOL


# -- PMU mixing --------------------------------------------------------------

#: Core-PMU table names by machine family, mirroring
#: repro.pfmlib.tables.  Only *core* PMUs participate: mixing a core
#: event with uncore/RAPL is a component conflict the library already
#: rejects loudly, whereas a core-PMU mix is the paper's silent one.
CORE_PMU_FAMILIES: dict[str, str] = {
    "adl_glc": "intel-hybrid",
    "adl_grt": "intel-hybrid",
    "skl": "intel",
    "arm_a72": "arm-biglittle",
    "arm_a53": "arm-biglittle",
    "arm_a57": "arm-biglittle",
}


def _pmu_of(event_name: str) -> str | None:
    if "::" not in event_name:
        return None
    pmu = event_name.split("::", 1)[0]
    return pmu if pmu in CORE_PMU_FAMILIES else None


@register
class PmuMixRule(Rule):
    id = "PAPI-PMU-MIX"
    severity = Severity.WARNING
    description = (
        "an eventset mixing events of several core-PMU types counts zero "
        "on whichever core type each event does not match; make sure that "
        "is intended (derived sums) and suppress/baseline the site"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.tree is None:
            return
        symbols = enclosing_symbols(module.tree)
        module_env = LiteralEnv.from_scope(module.tree.body)
        scopes: list[tuple[ast.AST, LiteralEnv]] = [(module.tree, module_env)]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(
                    (node, LiteralEnv.from_scope(node.body, module_env))
                )
        for scope, env in scopes:
            yield from self._check_scope(module, scope, env, symbols)

    def _check_scope(
        self,
        module: SourceModule,
        scope: ast.AST,
        env: LiteralEnv,
        symbols: dict[int, str],
    ) -> Iterator[Finding]:
        env = LiteralEnv(dict(env.bindings))
        self._bind_loop_vars(scope, env)
        # eventset expression (dump) -> [(pmu, event, call node), ...]
        per_es: dict[str, list[tuple[str, str, ast.Call]]] = {}
        own_funcs = {
            id(n)
            for f in ast.walk(scope)
            if isinstance(f, (ast.FunctionDef, ast.AsyncFunctionDef)) and f is not scope
            for n in ast.walk(f)
        }
        for node in ast.walk(scope):
            if id(node) in own_funcs:
                continue  # nested functions are their own scopes
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("add_event", "add_events")
                and len(node.args) >= 2
            ):
                continue
            es_key = ast.dump(node.args[0])
            for name in env.resolve_strings(node.args[1]):
                pmu = _pmu_of(name)
                if pmu is not None:
                    per_es.setdefault(es_key, []).append((pmu, name, node))
        for entries in per_es.values():
            pmus = {pmu for pmu, _, _ in entries}
            if len(pmus) < 2:
                continue
            first = entries[0][2]
            listing = ", ".join(sorted(pmus))
            yield self.finding(
                module,
                first,
                f"eventset mixes events from core PMUs {listing}; each "
                "event counts zero when the thread runs on the other core "
                "type",
                symbol=symbols.get(id(first), ""),
            )

    def _bind_loop_vars(self, scope: ast.AST, env: LiteralEnv) -> None:
        """Bind ``for name in <resolvable>`` loop targets to the literal
        elements, including ``for k, v in TABLE.items()`` over a literal
        module-level dict."""
        for node in ast.walk(scope):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            iter_expr = node.iter
            # TABLE.items() / TABLE.values() over a known literal dict.
            if (
                isinstance(iter_expr, ast.Call)
                and isinstance(iter_expr.func, ast.Attribute)
                and iter_expr.func.attr in ("items", "values")
                and isinstance(iter_expr.func.value, ast.Name)
            ):
                bound = env.bindings.get(iter_expr.func.value.id)
                if isinstance(bound, ast.Dict):
                    values = [v for v in bound.values]
                    target = node.target
                    if iter_expr.func.attr == "values" and isinstance(
                        target, ast.Name
                    ):
                        env.bindings[target.id] = ast.List(elts=values)
                    elif (
                        iter_expr.func.attr == "items"
                        and isinstance(target, ast.Tuple)
                        and len(target.elts) == 2
                        and isinstance(target.elts[1], ast.Name)
                    ):
                        env.bindings[target.elts[1].id] = ast.List(elts=values)
                continue
            strings = env.resolve_strings(iter_expr)
            if strings and isinstance(node.target, ast.Name):
                env.bindings[node.target.id] = ast.List(
                    elts=[ast.Constant(value=s) for s in strings]
                )
