"""Fork- and signal-safety rules for the supervisor/service layer.

The fleet forks worker process groups and reacts to SIGTERM/SIGINT; the
failure modes are classic and brutal to debug:

* a child forked while the parent holds a lock inherits the *held* lock
  with nobody to release it (instant deadlock in the child), and a
  ``fork()`` with an open socket shares the fd — two processes then
  read the same stream;
* a worker ``Popen``\\ ed into the supervisor's session dies with it and
  escapes group-kill/orphan-reap semantics — every managed spawn must
  pass ``start_new_session=True`` (``FORK-SAFETY``);
* a Python signal handler runs between two arbitrary bytecodes of the
  main loop: touching the journal (fsync!), logging, or allocating in a
  handler reenters whatever the interrupted frame was doing.  Handlers
  are restricted to the async-safe core — set flags, ``os.write`` — and
  anything they *call* must transitively satisfy the same contract
  (``SIGNAL-SAFETY``, a whole-program check over the call graph).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
    walk_shallow,
)
from repro.analysis.core import (
    Finding,
    ProgramRule,
    Rule,
    Severity,
    SourceModule,
    enclosing_symbols,
    register,
    resolve_dotted,
)
from repro.analysis.typestate import functions_of

SERVICE_SCOPE = ("src/repro/supervisor", "tools")

#: Calls that create a child process.
SPAWN_CALLS = {
    "subprocess.Popen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "os.fork",
    "os.forkpty",
    "os.posix_spawn",
    "os.posix_spawnp",
    "multiprocessing.Process",
}

#: Long-lived managed spawns that must lead their own session so
#: group-kill / orphan-reaping semantics hold.
SESSION_REQUIRED_SPAWNS = {"subprocess.Popen"}

_LOCKISH_CTORS = ("Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition")


def _is_lockish(expr: ast.expr) -> Optional[str]:
    """A name for the lock-like object this expression denotes, or None."""
    target = expr
    if isinstance(target, ast.Call):
        target = target.func
    if isinstance(target, ast.Attribute):
        leaf = target.attr
    elif isinstance(target, ast.Name):
        leaf = target.id
    else:
        return None
    if "lock" in leaf.lower() or leaf in _LOCKISH_CTORS:
        return leaf
    return None


@register
class ForkSafetyRule(Rule):
    id = "FORK-SAFETY"
    severity = Severity.ERROR
    description = (
        "no child process may be spawned while a lock is held or (for "
        "fork) a socket is open, and managed Popen workers must lead "
        "their own session (start_new_session=True)"
    )
    scope = SERVICE_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.tree is None:
            return
        origins = module.origins
        symbols = enclosing_symbols(module.tree)
        scopes: list[ast.AST] = [module.tree, *functions_of(module.tree)]
        for scope in scopes:
            yield from self._check_scope(module, scope, origins, symbols)

    def _spawn_calls(
        self, scope: ast.AST, origins: dict[str, str]
    ) -> list[tuple[ast.Call, str]]:
        out = []
        for node in walk_shallow(scope):
            if isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, origins)
                if dotted in SPAWN_CALLS:
                    out.append((node, dotted))
        return out

    def _check_scope(
        self,
        module: SourceModule,
        scope: ast.AST,
        origins: dict[str, str],
        symbols: dict[int, str],
    ) -> Iterator[Finding]:
        spawns = self._spawn_calls(scope, origins)
        if not spawns:
            return
        spawn_ids = {id(call) for call, _ in spawns}

        # 1. Spawn inside a `with <lock>` block.
        for node in walk_shallow(scope):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            held = [
                name
                for item in node.items
                if (name := _is_lockish(item.context_expr)) is not None
            ]
            if not held:
                continue
            for inner in ast.walk(node):
                if id(inner) in spawn_ids:
                    assert isinstance(inner, ast.Call)
                    yield self.finding(
                        module,
                        inner,
                        f"child process spawned while holding {held[0]!r}; "
                        "the child inherits the held lock state and can "
                        "deadlock against the parent",
                        symbol=symbols.get(id(inner), ""),
                    )

        # 2. Spawn lexically between .acquire() and .release() on the
        #    same receiver.
        acquires: dict[str, list[int]] = {}
        releases: dict[str, list[int]] = {}
        for node in walk_shallow(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("acquire", "release")
            ):
                recv = ast.dump(node.func.value)
                bucket = acquires if node.func.attr == "acquire" else releases
                bucket.setdefault(recv, []).append(node.lineno)
        for recv, acq_lines in acquires.items():
            rel_lines = releases.get(recv, [])
            for call, _dotted in spawns:
                if any(
                    a < call.lineno and any(r > call.lineno for r in rel_lines)
                    for a in acq_lines
                ):
                    yield self.finding(
                        module,
                        call,
                        "child process spawned between .acquire() and "
                        ".release(); the child inherits the held lock state",
                        symbol=symbols.get(id(call), ""),
                    )

        # 3. fork() after a socket was created in the same scope.
        socket_lines = [
            node.lineno
            for node in walk_shallow(scope)
            if isinstance(node, ast.Call)
            and resolve_dotted(node.func, origins) == "socket.socket"
        ]
        for call, dotted in spawns:
            if dotted in ("os.fork", "os.forkpty") and any(
                line < call.lineno for line in socket_lines
            ):
                yield self.finding(
                    module,
                    call,
                    "fork() while a socket created in this function may "
                    "still be open; the fd is shared and both processes "
                    "will read the same stream",
                    symbol=symbols.get(id(call), ""),
                )

        # 4. Managed Popen must detach into its own session.
        for call, dotted in spawns:
            if dotted not in SESSION_REQUIRED_SPAWNS:
                continue
            detached = any(
                kw.arg == "start_new_session"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            )
            if not detached:
                yield self.finding(
                    module,
                    call,
                    "subprocess.Popen without start_new_session=True: the "
                    "child shares the supervisor's session/group, so "
                    "group-kill and orphan-reaping cannot manage it",
                    symbol=symbols.get(id(call), ""),
                )


# -- signal safety -----------------------------------------------------------

#: Dotted calls a signal handler may make.
SAFE_HANDLER_CALLS = {
    "os.write",
    "os.kill",
    "os.killpg",
    "os._exit",
    "os.getpid",
}

#: Attribute method calls considered allocation-only-safe (used to
#: format the byte payload of an os.write).
SAFE_METHOD_CALLS = {"encode"}


@register
class SignalSafetyRule(ProgramRule):
    id = "SIGNAL-SAFETY"
    severity = Severity.ERROR
    description = (
        "signal handlers (and everything they transitively call) may "
        "only set flags and os.write; logging, journal fsyncs, or other "
        "reentrant work must be deferred to the main loop"
    )
    scope = SERVICE_SCOPE

    def check_program(self, modules: list[SourceModule]) -> Iterator[Finding]:
        graph = build_call_graph(modules)
        seen: set[tuple[str, int, str]] = set()
        for info in graph.functions.values():
            origins = info.module.origins
            bag = graph.name_bag(info)
            # Prefilter: signal.signal() needs the attr/name "signal" or
            # an aliased import of it in the call-name bag.
            if "signal" not in bag and not any(
                origins.get(name, "").startswith("signal") for name in bag
            ):
                continue
            for node in walk_shallow(info.node):
                if not (
                    isinstance(node, ast.Call)
                    and resolve_dotted(node.func, origins) == "signal.signal"
                    and len(node.args) >= 2
                ):
                    continue
                handler = node.args[1]
                for target in self._handler_candidates(graph, info, handler):
                    checker = _HandlerChecker(graph, target)
                    for path, at, message in checker.run():
                        key = (path, at.lineno, message)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield self.finding_at(
                            path,
                            at,
                            f"{message} (reachable from signal handler "
                            f"{target.qualname}); handlers may only set "
                            "flags and os.write — defer the rest to the "
                            "main loop",
                            symbol=target.qualname,
                        )

    def _handler_candidates(
        self, graph: CallGraph, registrar: FunctionInfo, handler: ast.expr
    ) -> list[FunctionInfo]:
        if isinstance(handler, ast.Attribute):
            dotted_leaf = handler.attr
            if dotted_leaf in ("SIG_IGN", "SIG_DFL", "default_int_handler"):
                return []
            # self._on_sigterm / obj.handler: same-module methods first,
            # program-wide by name otherwise.
            candidates = graph.by_method_name.get(dotted_leaf, [])
            local = [c for c in candidates if c.path == registrar.path]
            return local or candidates
        if isinstance(handler, ast.Name):
            return [
                c
                for c in graph.functions.values()
                if c.path == registrar.path and c.name == handler.id
            ]
        return []


class _HandlerChecker:
    """Transitive allowlist walk from one handler function."""

    def __init__(self, graph: CallGraph, root: FunctionInfo):
        self.graph = graph
        self.root = root
        self.visiting: set[tuple[str, str]] = set()
        self.problems: list[tuple[str, ast.AST, str]] = []

    def run(self) -> list[tuple[str, ast.AST, str]]:
        self._check_function(self.root)
        return self.problems

    def _check_function(self, info: FunctionInfo) -> None:
        if info.key in self.visiting:
            return  # cycle: optimistically safe while being proven
        self.visiting.add(info.key)
        origins = info.module.origins
        for node in walk_shallow(info.node):
            if not isinstance(node, ast.Call):
                continue
            self._check_call(info, node, origins)

    def _check_call(
        self, info: FunctionInfo, call: ast.Call, origins: dict[str, str]
    ) -> None:
        dotted = resolve_dotted(call.func, origins)
        if dotted is not None:
            if dotted in SAFE_HANDLER_CALLS or dotted.startswith("signal."):
                return
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in SAFE_METHOD_CALLS
        ):
            return
        callees = self.graph.resolve_call(
            info.module, info, call, all_candidates=True
        )
        if callees:
            for callee in callees:
                self._check_function(callee)
            return
        name = (
            dotted
            or (call.func.id if isinstance(call.func, ast.Name) else None)
            or (
                f"<obj>.{call.func.attr}"
                if isinstance(call.func, ast.Attribute)
                else "<dynamic>"
            )
        )
        self.problems.append(
            (
                info.path,
                call,
                f"call to {name}() is not async-signal-safe",
            )
        )
