"""Interprocedural extension of the PAPI lifecycle/fd typestate rules.

The base rules (``PAPI-LIFECYCLE``, ``PAPI-FD-LEAK``) give up at
function boundaries: a handle returned by a helper, destroyed by a
helper, or parked in ``self.<field>`` leaves the per-function analysis.
This pass closes those holes with *summaries* over the call graph:

* **creator summary** — a top-level function that returns a fresh
  handle (``def make_es(p): return p.create_eventset()``) becomes a
  creator in its callers, so ``es = make_es(p)`` is tracked;
* **closer summary** — a top-level function whose first parameter
  receives a closing call (``def cleanup(p, es): p.destroy_eventset(es)``)
  transitions its argument into the closed state at call sites;
* **neutral summary** — a first parameter that never escapes and is
  never closed leaves the argument's state untouched (instead of
  conservatively un-tracking it as an escape).

Summaries are computed to a fixpoint so wrappers-of-wrappers resolve,
then every function is re-analyzed under the extended protocol; only
violations the base rules did *not* already report are emitted, as
``PAPI-INTERPROC``.

A separate field check covers handles that escape into object state:
``self.f = <creator>()`` anywhere in a class requires *some* method of
that class to close ``self.f``; otherwise the instance leaks its
kernel fds with no local evidence.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Iterator, Optional

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
    walk_shallow,
)
from repro.analysis.core import (
    Finding,
    ProgramRule,
    Severity,
    SourceModule,
    register,
)
from repro.analysis.rules_papi import EVENTSET_PROTOCOL, FD_PROTOCOL
from repro.analysis.typestate import (
    Protocol,
    _creation_state,
    _find_creations,
    _mark_escapes,
    analyze_function,
)


def closing_methods(protocol: Protocol) -> dict[str, str]:
    """Methods that move a handle out of every leak state, with target.

    For the eventset protocol that is ``destroy_eventset`` (target
    ``"destroyed"``); ``cleanup_eventset`` lands back in ``"new"``,
    which still leaks, so it does not count.
    """
    out: dict[str, str] = {}
    for (_state, method), target in protocol.transitions.items():
        if target not in protocol.leak_states:
            out[method] = target
    return out


def _first_param(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Optional[str]:
    args = func.args.posonlyargs + func.args.args
    if not args:
        return None
    return args[0].arg


def _returns_fresh_handle(
    func: ast.FunctionDef | ast.AsyncFunctionDef, protocol: Protocol
) -> Optional[str]:
    """Initial state when the function returns a freshly created handle."""
    creations = _find_creations(func, protocol)
    for node in walk_shallow(func):
        if not isinstance(node, ast.Return) or node.value is None:
            return_state = None
        else:
            return_state = _creation_state(node.value, protocol)
            if return_state is None and (
                isinstance(node.value, ast.Name) and node.value.id in creations
            ):
                # ``h = p.create(); ...; return h`` — take the creation
                # state; intermediate transitions are over-approximated
                # as "still fresh", which only risks a late report at
                # the *call site*, never a false protocol error (the
                # extended analysis re-walks the states there).
                return_state = _creation_state(
                    _assigned_value(creations[node.value.id].creation), protocol
                )
        if return_state is not None:
            return return_state
    return None


def _assigned_value(node: ast.AST) -> ast.expr:
    if isinstance(node, ast.Assign):
        return node.value
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return node.value
    raise TypeError(f"not an assignment: {ast.dump(node)}")


def _closes_first_param(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    protocol: Protocol,
    closers: dict[str, str],
) -> Optional[str]:
    """Closed state when the first parameter is closed somewhere in the body."""
    param = _first_param(func)
    if param is None:
        return None
    for node in walk_shallow(func):
        if not isinstance(node, ast.Call):
            continue
        # X.destroy_eventset(param, ...) — module/receiver style.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in closers
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == param
        ):
            return closers[node.func.attr]
        # param.close(...) — method style.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in closers
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == param
        ):
            return closers[node.func.attr]
        # helper(param) — transitively through a summarized closer.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in protocol.func_closers
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == param
        ):
            return protocol.func_closers[node.func.id]
    return None


def _first_param_is_neutral(
    func: ast.FunctionDef | ast.AsyncFunctionDef, protocol: Protocol
) -> bool:
    """True when the first parameter neither escapes, transitions, nor
    is closed — so call sites can keep their state unchanged."""
    param = _first_param(func)
    if param is None:
        return False
    moving = protocol.tracked_methods() - protocol.neutral
    for node in walk_shallow(func):
        if not isinstance(node, ast.Call):
            continue
        # X.start(param) / param.close() would change the state the
        # caller believes in, so the function is not neutral.
        if isinstance(node.func, ast.Attribute) and node.func.attr in moving:
            if (
                node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == param
            ):
                return False
            if (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id == param
            ):
                return False
    from repro.analysis.typestate import _Tracked

    tracked = {param: _Tracked(creation=func)}
    _mark_escapes(func, tracked, protocol)
    return not tracked[param].escaped


def derive_extension(graph: CallGraph, protocol: Protocol) -> Protocol:
    """Fixpoint over top-level function summaries; returns the extended
    protocol (``is`` the input when nothing was derived)."""
    closers = closing_methods(protocol)
    static_relevant = (
        set(protocol.creators) | set(closers) | protocol.tracked_methods()
    )
    ext = protocol
    for _round in range(6):
        creators: dict[str, str] = dict(ext.func_creators)
        fclosers: dict[str, str] = dict(ext.func_closers)
        neutral: set[str] = set(ext.func_neutral)
        relevant = (
            static_relevant
            | set(ext.func_creators)
            | set(ext.func_closers)
            | set(ext.func_neutral)
        )
        ambiguous: set[str] = set()
        seen: dict[str, tuple[Optional[str], Optional[str], bool]] = {}
        for info in graph.functions.values():
            if info.cls is not None or "." in info.qualname:
                continue  # methods/nested defs are out of summary scope
            name = info.name
            if name in protocol.creators or name in closers:
                continue  # the method-name rules already govern these
            if not (graph.name_bag(info) & relevant):
                # Cannot create, close, or transition a handle of this
                # protocol — no summary (callers of it fall back to the
                # conservative escape treatment).
                continue
            summary = (
                _returns_fresh_handle(info.node, ext),
                _closes_first_param(info.node, ext, closers),
                _first_param_is_neutral(info.node, ext),
            )
            if name in seen and seen[name] != summary:
                ambiguous.add(name)  # same name, different behavior: drop
                continue
            seen[name] = summary
            created, closed, is_neutral = summary
            if created is not None:
                creators[name] = created
            if closed is not None:
                fclosers[name] = closed
            elif is_neutral and name not in fclosers:
                neutral.add(name)
        for name in ambiguous:
            creators.pop(name, None)
            fclosers.pop(name, None)
            neutral.discard(name)
        neutral -= set(fclosers)
        new = replace(
            ext,
            func_creators=creators,
            func_closers=fclosers,
            func_neutral=frozenset(neutral),
        )
        if (
            new.func_creators == ext.func_creators
            and new.func_closers == ext.func_closers
            and new.func_neutral == ext.func_neutral
        ):
            return ext
        ext = new
    return ext


def _closes_attr(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    attr: str,
    protocol: Protocol,
    closers: dict[str, str],
) -> bool:
    """Does the body close ``self.<attr>`` in any recognized style?"""

    def is_self_attr(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    for node in walk_shallow(func):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in closers
            and node.args
            and is_self_attr(node.args[0])
        ):
            return True  # papi.destroy_eventset(self._esid, ...)
        if isinstance(node.func, ast.Attribute) and node.func.attr in closers and (
            is_self_attr(node.func.value)
        ):
            return True  # self._fd.close()
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in protocol.func_closers
            and node.args
            and is_self_attr(node.args[0])
        ):
            return True  # cleanup(self._esid)
    return False


@register
class InterprocPapiRule(ProgramRule):
    id = "PAPI-INTERPROC"
    severity = Severity.ERROR
    description = (
        "PAPI handle lifecycle tracked across function boundaries: "
        "helper-created handles must still be destroyed, helper-closed "
        "arguments transition, and self.<field> handles need a closing "
        "method somewhere in the class"
    )

    protocols = (EVENTSET_PROTOCOL, FD_PROTOCOL)

    def check_program(self, modules: list[SourceModule]) -> Iterator[Finding]:
        graph = build_call_graph(modules)
        for protocol in self.protocols:
            ext = derive_extension(graph, protocol)
            yield from self._field_leaks(graph, protocol)
            if ext is protocol:
                continue  # nothing derived: base rules already cover it
            yield from self._extended_violations(graph, protocol, ext)

    def _extended_violations(
        self, graph: CallGraph, base: Protocol, ext: Protocol
    ) -> Iterator[Finding]:
        # A violation needs a handle *created* in the function, so only
        # functions whose call-name bag can reach a creator matter.
        creatorish = set(base.creators) | set(ext.func_creators)
        for info in graph.functions.values():
            if not (graph.name_bag(info) & creatorish):
                continue
            extended = analyze_function(info.node, ext)
            if not extended:
                continue
            known = {
                (v.node.lineno, v.message)
                for v in analyze_function(info.node, base)
            }
            for violation in extended:
                if (violation.node.lineno, violation.message) in known:
                    continue
                yield self.finding_at(
                    info.path,
                    violation.node,
                    violation.message,
                    symbol=info.qualname,
                )

    def _field_leaks(self, graph: CallGraph, protocol: Protocol) -> Iterator[Finding]:
        closers = closing_methods(protocol)
        # class (path, name) -> [(attr, assign node, method qualname)]
        stored: dict[tuple[str, str], list[tuple[str, ast.AST, str]]] = {}
        for info in graph.functions.values():
            if info.cls is None:
                continue
            for node in walk_shallow(info.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                if (
                    target is not None
                    and value is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _creation_state(value, protocol) is not None
                ):
                    stored.setdefault((info.path, info.cls), []).append(
                        (target.attr, node, info.qualname)
                    )
        for (path, cls), entries in stored.items():
            methods = graph.methods_of_class(path, cls)
            for attr, node, qualname in entries:
                if any(
                    _closes_attr(m.node, attr, protocol, closers) for m in methods
                ):
                    continue
                yield self.finding_at(
                    path,
                    node,
                    f"{protocol.name} handle stored in self.{attr} but no "
                    f"method of class {cls} ever closes it; the instance "
                    "leaks its kernel resources",
                    symbol=qualname,
                )
