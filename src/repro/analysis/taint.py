"""Determinism taint: nondeterministic values must not reach durable state.

``DET-WALLCLOCK``/``DET-RANDOM`` ban host time and entropy *inside* the
deterministic layers.  The service layer legitimately consults the wall
clock (timeouts, heartbeats) — the invariant there is subtler: those
values may steer *scheduling* but must never flow into the surfaces
resume-equivalence diffs byte-for-byte:

* journal record payloads (replayed journals must match reruns),
* digest inputs (``spec_digest``/``state_digest`` key the result cache
  and checkpoint identity — a wall-clock byte in either breaks
  idempotent admission and zero-launch cache hits).

This pass taints ``time.time()``-family, OS-entropy, and unseeded-RNG
call results, propagates through assignments and (interprocedurally)
through helper returns using the call graph, and reports any tainted
expression reaching one of those sinks as ``DET-TAINT``.  The sanctioned
injected-clock pattern (``clock: Callable = time.monotonic`` passed as a
*reference* and consulted for scheduling only) never fires: a function
reference is not a call, and scheduling state is not a sink.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
    walk_shallow,
)
from repro.analysis.core import (
    Finding,
    ProgramRule,
    Severity,
    SourceModule,
    register,
    resolve_dotted,
)
from repro.analysis.protocol import _journal_append_receiver
from repro.analysis.rules_determinism import (
    ENTROPY_CALLS,
    NUMPY_RANDOM_ALLOWED,
    RANDOM_MODULE_ALLOWED,
    WALLCLOCK_CALLS,
)

#: Functions whose arguments feed digests / cache keys.
DIGEST_SINKS = ("spec_digest", "state_digest")

#: Module roots any direct nondeterminism source resolves through; a
#: function whose call-name bag touches none of a module's imports of
#: these cannot be *directly* tainted (only through a tainted callee).
_SOURCE_ROOTS = ("time", "datetime", "random", "os", "uuid", "secrets", "numpy")


def _source_of(call: ast.Call, origins: dict[str, str]) -> Optional[str]:
    """Why this call is a nondeterminism source, or None."""
    dotted = resolve_dotted(call.func, origins)
    if dotted is None:
        return None
    if dotted in WALLCLOCK_CALLS:
        return f"wall-clock {dotted}()"
    if dotted in ENTROPY_CALLS or dotted.startswith("secrets."):
        return f"OS-entropy {dotted}()"
    if (
        dotted.startswith("random.")
        and dotted.count(".") == 1
        and dotted not in RANDOM_MODULE_ALLOWED
    ):
        return f"process-global RNG {dotted}()"
    if dotted.startswith("numpy.random.") and dotted not in NUMPY_RANDOM_ALLOWED:
        return f"numpy global-RNG {dotted}()"
    return None


class _FuncTaint:
    """Flow-insensitive taint over one function's locals."""

    def __init__(
        self,
        info: FunctionInfo,
        graph: CallGraph,
        origins: dict[str, str],
        tainted_returns: set[tuple[str, str]],
    ):
        self.info = info
        self.graph = graph
        self.origins = origins
        self.tainted_returns = tainted_returns
        self.tainted_names: set[str] = set()
        self._fixpoint()

    def _fixpoint(self) -> None:
        for _ in range(20):
            changed = False
            for node in walk_shallow(self.info.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    target, value = node.target, node.value
                elif isinstance(node, ast.AugAssign):
                    target, value = node.target, node.value
                if (
                    isinstance(target, ast.Name)
                    and value is not None
                    and target.id not in self.tainted_names
                    and self.taint_reason(value) is not None
                ):
                    self.tainted_names.add(target.id)
                    changed = True
            if not changed:
                return

    def taint_reason(self, expr: ast.expr) -> Optional[str]:
        """Why the expression carries nondeterminism, or None."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                source = _source_of(node, self.origins)
                if source is not None:
                    return source
                for callee in self.graph.resolve_call(
                    self.info.module, self.info, node
                ):
                    if callee.key in self.tainted_returns:
                        return (
                            f"return value of {callee.qualname}() "
                            "(which reads a nondeterministic source)"
                        )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in self.tainted_names
            ):
                return f"tainted local {node.id!r}"
        return None

    def returns_tainted(self) -> bool:
        for node in walk_shallow(self.info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if self.taint_reason(node.value) is not None:
                    return True
        return False


@register
class DeterminismTaintRule(ProgramRule):
    id = "DET-TAINT"
    severity = Severity.ERROR
    description = (
        "wall-clock/entropy values must not flow (even through helpers) "
        "into journal records or digest inputs — those surfaces must be "
        "byte-stable across reruns and resumes"
    )
    scope = ("src/repro/supervisor", "tools")

    def check_program(self, modules: list[SourceModule]) -> Iterator[Finding]:
        graph = build_call_graph(modules)

        def may_source_directly(info: FunctionInfo) -> bool:
            bag = graph.name_bag(info)
            origins = info.module.origins
            return any(
                origins.get(name, "").partition(".")[0] in _SOURCE_ROOTS
                for name in bag
            )

        # Interprocedural summary fixpoint: which functions return taint.
        # A function can only become tainted by calling a source module
        # directly or by calling an already-tainted function, so anything
        # whose call-name bag touches neither is skipped untasted.
        tainted_returns: set[tuple[str, str]] = set()
        tainted_leafs: set[str] = set()
        for _ in range(6):
            grew = False
            for info in graph.functions.values():
                if info.key in tainted_returns:
                    continue
                if not may_source_directly(info) and not (
                    graph.name_bag(info) & tainted_leafs
                ):
                    continue
                ft = _FuncTaint(
                    info, graph, info.module.origins, tainted_returns
                )
                if ft.returns_tainted():
                    tainted_returns.add(info.key)
                    tainted_leafs.add(info.name)
                    grew = True
            if not grew:
                break

        sinkish = {"append", "append_many", *DIGEST_SINKS}
        for info in graph.functions.values():
            if not (graph.name_bag(info) & sinkish):
                continue
            ft = _FuncTaint(info, graph, info.module.origins, tainted_returns)
            yield from self._check_sinks(info, ft)

    def _check_sinks(self, info: FunctionInfo, ft: _FuncTaint) -> Iterator[Finding]:
        for node in walk_shallow(info.node):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "append_many")
                and node.args
                and _journal_append_receiver(node, info.cls)
            ):
                reason = ft.taint_reason(node.args[0])
                if reason is not None:
                    yield self.finding_at(
                        info.path,
                        node,
                        f"nondeterministic value ({reason}) flows into a "
                        "journal append; replayed journals would diverge "
                        "from reruns",
                        symbol=info.qualname,
                    )
            elif (
                isinstance(node.func, (ast.Name, ast.Attribute))
                and (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else node.func.attr
                )
                in DIGEST_SINKS
            ):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    reason = ft.taint_reason(arg)
                    if reason is not None:
                        yield self.finding_at(
                            info.path,
                            node,
                            f"nondeterministic value ({reason}) flows into "
                            "a digest input; cache keys and checkpoint "
                            "identity would change every run",
                            symbol=info.qualname,
                        )
                        break
