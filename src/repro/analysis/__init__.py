"""Derived metrics from counter values."""

from repro.analysis.metrics import (
    HybridBreakdown,
    breakdown_eventset,
    gflops,
    ipc,
    miss_rate,
)

__all__ = [
    "HybridBreakdown",
    "breakdown_eventset",
    "gflops",
    "ipc",
    "miss_rate",
]
