"""Derived metrics from counter values, plus repro-lint: the static
analyzer enforcing the stack's determinism and PAPI-contract invariants
(``python -m repro.analysis``)."""

from repro.analysis.baseline import Baseline
from repro.analysis.core import Finding, Rule, Severity, all_rules
from repro.analysis.driver import AnalysisResult, run_analysis
from repro.analysis.metrics import (
    HybridBreakdown,
    breakdown_eventset,
    gflops,
    ipc,
    miss_rate,
)

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "HybridBreakdown",
    "Rule",
    "Severity",
    "all_rules",
    "breakdown_eventset",
    "gflops",
    "ipc",
    "miss_rate",
    "run_analysis",
]
