"""Protocol-exhaustiveness passes over the measurement service.

The service's correctness contracts live *between* components:

* the **journal state machine** — every record kind any code path
  appends must be understood by replay (``Journal._apply`` raises
  ``JournalError`` on unknown kinds, so an unmatched producer is a
  latent crash on resume), every declared kind must actually be
  consumed, and a declared-but-never-produced kind is dead protocol;
* the **wire protocol** — every ``op`` the client can send needs a
  ``_handle_request`` branch, every reply key the client subscripts
  must be present in that branch's replies, and error replies must
  echo the request's correlation fields (``op``/``id``) so a client
  can match replies to requests.

These are whole-program properties: producers live in ``pool.py`` /
``queue.py`` / ``service.py``, the consumer in ``journal.py``, the two
wire endpoints in different modules.  The passes below extract both
sides syntactically (dict literals, list-append accumulation,
generator-over-helper-call, ``IfExp`` kinds, helper-returned records)
and report the asymmetries as ``PROTO-*`` findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    build_call_graph,
    walk_shallow,
)
from repro.analysis.core import (
    Finding,
    ProgramRule,
    Severity,
    SourceModule,
    register,
)

# -- shared dict-literal resolution ------------------------------------------


@dataclass
class _FuncEnv:
    """Per-function name bindings used to resolve record expressions."""

    assigns: dict[str, list[ast.expr]] = field(default_factory=dict)
    list_appends: dict[str, list[ast.expr]] = field(default_factory=dict)

    @classmethod
    def of(cls, func: ast.AST) -> "_FuncEnv":
        env = cls()
        for node in walk_shallow(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                if isinstance(node.targets[0], ast.Name):
                    env.assigns.setdefault(node.targets[0].id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    env.assigns.setdefault(node.target.id, []).append(node.value)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
                and len(node.args) == 1
            ):
                env.list_appends.setdefault(node.func.value.id, []).append(
                    node.args[0]
                )
        return env


def _dict_key_values(d: ast.Dict, key: str) -> list[tuple[Optional[str], ast.AST]]:
    """Constant string value(s) of ``d[key]``; ``(None, node)`` when the
    key is present but not a resolvable constant."""
    for k, v in zip(d.keys, d.values):
        if isinstance(k, ast.Constant) and k.value == key:
            if isinstance(v, ast.Constant) and isinstance(v.value, str):
                return [(v.value, d)]
            if isinstance(v, ast.IfExp):
                out: list[tuple[Optional[str], ast.AST]] = []
                for branch in (v.body, v.orelse):
                    if isinstance(branch, ast.Constant) and isinstance(
                        branch.value, str
                    ):
                        out.append((branch.value, d))
                if out:
                    return out
            return [(None, d)]
    return []


def resolve_record_kinds(
    expr: ast.expr,
    env: _FuncEnv,
    graph: CallGraph,
    module: SourceModule,
    caller: Optional[FunctionInfo],
    key: str = "type",
    depth: int = 0,
) -> list[tuple[str, ast.AST]]:
    """All constant ``key`` values of the record dict(s) ``expr`` may
    denote — the event(s) flowing into one journal append site.
    Unresolvable shapes yield nothing (conservative silence)."""
    if depth > 4:
        return []
    out: list[tuple[str, ast.AST]] = []
    if isinstance(expr, ast.Dict):
        for value, node in _dict_key_values(expr, key):
            if value is not None:
                out.append((value, node))
        return out
    if isinstance(expr, ast.Name):
        for bound in env.assigns.get(expr.id, []):
            out.extend(
                resolve_record_kinds(bound, env, graph, module, caller, key, depth + 1)
            )
        for elem in env.list_appends.get(expr.id, []):
            out.extend(
                resolve_record_kinds(elem, env, graph, module, caller, key, depth + 1)
            )
        return out
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        for elem in expr.elts:
            out.extend(
                resolve_record_kinds(elem, env, graph, module, caller, key, depth + 1)
            )
        return out
    if isinstance(expr, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return resolve_record_kinds(
            expr.elt, env, graph, module, caller, key, depth + 1
        )
    if isinstance(expr, ast.IfExp):
        for branch in (expr.body, expr.orelse):
            out.extend(
                resolve_record_kinds(branch, env, graph, module, caller, key, depth + 1)
            )
        return out
    if isinstance(expr, ast.Call):
        for callee in graph.resolve_call(module, caller, expr):
            callee_env = _FuncEnv.of(callee.node)
            for node in walk_shallow(callee.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    out.extend(
                        resolve_record_kinds(
                            node.value,
                            callee_env,
                            graph,
                            callee.module,
                            callee,
                            key,
                            depth + 1,
                        )
                    )
        return out
    return []


# -- journal exhaustiveness --------------------------------------------------


def _journal_append_receiver(call: ast.Call, cls: Optional[str]) -> bool:
    """Is this ``X.append(...)`` / ``X.append_many(...)`` a *journal*
    append?  Receivers recognized: any attribute chain ending in
    ``journal``, a local/parameter literally named ``journal`` or
    assigned from a ``*Journal(...)`` constructor, and ``self`` inside a
    class whose name contains ``Journal``."""
    assert isinstance(call.func, ast.Attribute)
    recv = call.func.value
    if isinstance(recv, ast.Attribute) and recv.attr == "journal":
        return True
    if isinstance(recv, ast.Name):
        if recv.id == "journal":
            return True
        if recv.id == "self" and cls is not None and "Journal" in cls:
            return True
    return False


def _declared_event_types(module: SourceModule) -> Optional[tuple[ast.AST, list[str]]]:
    if module.tree is None:
        return None
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "EVENT_TYPES"
            and isinstance(stmt.value, (ast.Tuple, ast.List))
        ):
            kinds = [
                e.value
                for e in stmt.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            if kinds:
                return stmt, kinds
    return None


def _compare_strings(func: ast.AST) -> set[str]:
    """Constant strings an ``==``/``in`` comparison tests against."""
    out: set[str] = set()
    for node in walk_shallow(func):
        if not isinstance(node, ast.Compare):
            continue
        for side in [node.left, *node.comparators]:
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                out.add(side.value)
            elif isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                for e in side.elts:
                    if isinstance(e, ast.Constant) and isinstance(e.value, str):
                        out.add(e.value)
    return out


@register
class JournalProtocolRule(ProgramRule):
    id = "PROTO-JOURNAL"
    severity = Severity.ERROR
    description = (
        "every journal record kind appended anywhere must be declared in "
        "EVENT_TYPES and consumed by replay (_apply), and every declared "
        "kind must be produced somewhere — asymmetries crash or rot"
    )

    def check_program(self, modules: list[SourceModule]) -> Iterator[Finding]:
        declared: list[str] = []
        decl_site: Optional[tuple[str, ast.AST]] = None
        consumed: Optional[set[str]] = None
        for mod in modules:
            found = _declared_event_types(mod)
            if found is None:
                continue
            node, kinds = found
            declared.extend(k for k in kinds if k not in declared)
            decl_site = (mod.path, node)
            assert mod.tree is not None
            for func in ast.walk(mod.tree):
                if (
                    isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and func.name == "_apply"
                ):
                    consumed = (consumed or set()) | _compare_strings(func)
        if decl_site is None:
            return  # no journal protocol in this program

        graph = build_call_graph(modules)
        produced: dict[str, tuple[str, ast.AST]] = {}
        for info in graph.functions.values():
            env = _FuncEnv.of(info.node)
            for node in walk_shallow(info.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("append", "append_many")
                    and node.args
                    and _journal_append_receiver(node, info.cls)
                ):
                    continue
                for kind, at in resolve_record_kinds(
                    node.args[0], env, graph, info.module, info
                ):
                    produced.setdefault(kind, (info.path, at))

        declared_set = set(declared)
        for kind in sorted(set(produced) - declared_set):
            path, at = produced[kind]
            yield self.finding_at(
                path,
                at,
                f"journal record kind {kind!r} is appended but not declared "
                "in EVENT_TYPES; replay raises JournalError on it",
            )
        if consumed is not None:
            for kind in sorted(declared_set - consumed):
                yield self.finding_at(
                    decl_site[0],
                    decl_site[1],
                    f"journal record kind {kind!r} is declared in EVENT_TYPES "
                    "but never consumed by replay (_apply ignores it)",
                )
        for kind in sorted(declared_set - set(produced)):
            yield self.finding_at(
                decl_site[0],
                decl_site[1],
                f"journal record kind {kind!r} is declared but no code path "
                "ever appends it (dead protocol)",
                severity=Severity.WARNING,
            )


# -- wire-protocol exhaustiveness --------------------------------------------


@dataclass
class _Branch:
    op: str
    test: ast.expr
    reply_keys: set[str]
    has_open_reply: bool


def _handler_branches(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[_Branch]:
    """The ``op == "..."`` if/elif chain of a ``_handle_request``."""
    branches: list[_Branch] = []

    def op_of(test: ast.expr) -> Optional[str]:
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, str)
            and isinstance(test.left, ast.Name)
        ):
            return test.comparators[0].value
        return None

    def reply_shape(body: list[ast.stmt]) -> tuple[set[str], bool]:
        keys: set[str] = set()
        has_open = False
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Dict):
                    for k in node.keys:
                        if k is None:
                            has_open = True
                        elif isinstance(k, ast.Constant) and isinstance(
                            k.value, str
                        ):
                            keys.add(k.value)
        return keys, has_open

    def chase(stmt: ast.stmt) -> None:
        if not isinstance(stmt, ast.If):
            return
        op = op_of(stmt.test)
        if op is not None:
            keys, has_open = reply_shape(stmt.body)
            branches.append(_Branch(op, stmt.test, keys, has_open))
        if len(stmt.orelse) == 1:
            chase(stmt.orelse[0])

    for stmt in func.body:
        chase(stmt)
    return branches


@dataclass
class _ClientOp:
    op: str
    node: ast.AST
    path: str
    method: str
    required_keys: set[str]


def _client_ops(graph: CallGraph) -> list[_ClientOp]:
    """Every ``{"op": <const>}`` request a ``*Client`` method can send,
    with the reply keys the method subscripts (its required shape)."""
    ops: list[_ClientOp] = []
    for info in graph.functions.values():
        if info.cls is None or "Client" not in info.cls:
            continue
        sent: list[tuple[str, ast.AST]] = []
        subscripted: set[str] = set()
        for node in walk_shallow(info.node):
            if isinstance(node, ast.Dict):
                for value, at in _dict_key_values(node, "op"):
                    if value is not None:
                        sent.append((value, at))
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                subscripted.add(node.slice.value)
        required = subscripted - {"ok", "error", "op", "id"}
        for op, at in sent:
            ops.append(_ClientOp(op, at, info.path, info.qualname, required))
    return ops


@register
class WireProtocolRule(ProgramRule):
    id = "PROTO-WIRE"
    severity = Severity.ERROR
    description = (
        "every op a *Client class sends must have a _handle_request "
        "branch, every branch should have a sender, and every reply key "
        "the client subscripts must appear in that branch's replies"
    )

    def check_program(self, modules: list[SourceModule]) -> Iterator[Finding]:
        graph = build_call_graph(modules)
        handlers = [
            info
            for info in graph.functions.values()
            if info.name == "_handle_request" and info.cls is not None
        ]
        clients = _client_ops(graph)
        if not handlers or not clients:
            return  # need both endpoints to compare them

        branches: dict[str, tuple[str, _Branch]] = {}
        for info in handlers:
            for branch in _handler_branches(info.node):
                branches.setdefault(branch.op, (info.path, branch))

        client_op_names = {c.op for c in clients}
        for client in clients:
            if client.op not in branches:
                yield self.finding_at(
                    client.path,
                    client.node,
                    f"client sends op {client.op!r} but no _handle_request "
                    "branch handles it; the server will reply unknown-op",
                    symbol=client.method,
                )
                continue
            path, branch = branches[client.op]
            if branch.has_open_reply:
                continue
            for key in sorted(client.required_keys - branch.reply_keys):
                yield self.finding_at(
                    path,
                    branch.test,
                    f"op {client.op!r} replies never carry key {key!r}, "
                    f"which {client.method} subscripts unconditionally",
                )
        for op in sorted(set(branches) - client_op_names):
            path, branch = branches[op]
            yield self.finding_at(
                path,
                branch.test,
                f"server handles op {op!r} but no client method ever sends "
                "it (dead wire protocol)",
                severity=Severity.WARNING,
            )


@register
class WireCorrelationRule(ProgramRule):
    id = "PROTO-WIRE-CORR"
    severity = Severity.ERROR
    description = (
        "error replies sent over the wire must echo the request's "
        "correlation fields (op/id) — a bare {ok: false} reply cannot be "
        "matched to its request by the client"
    )

    def check_program(self, modules: list[SourceModule]) -> Iterator[Finding]:
        graph = build_call_graph(modules)
        for info in graph.functions.values():
            for node in walk_shallow(info.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "_send"
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Dict)
                ):
                    continue
                payload = node.args[1]
                keys = {
                    k.value
                    for k in payload.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                }
                is_open = any(k is None for k in payload.keys)
                ok_false = any(
                    isinstance(k, ast.Constant)
                    and k.value == "ok"
                    and isinstance(v, ast.Constant)
                    and v.value is False
                    for k, v in zip(payload.keys, payload.values)
                )
                if ok_false and not is_open and not (keys & {"op", "id"}):
                    yield self.finding_at(
                        info.path,
                        payload,
                        "error reply does not echo the request's correlation "
                        "fields (op/id); route it through a helper that "
                        "merges them so the client can match the reply",
                        symbol=info.qualname,
                    )
