"""Module-level call graph over the analyzed program.

Built once per run from every parsed :class:`SourceModule`, this is the
shared substrate for the interprocedural passes (interproc typestate,
determinism taint, signal safety).  Resolution is deliberately
conservative and syntactic:

* ``f(...)`` resolves to the top-level function ``f`` of the same
  module, else through the import map (``from repro.x import f``,
  ``import repro.x as m; m.f(...)``) to the defining module;
* ``self.m(...)`` resolves to method ``m`` of the lexically enclosing
  class (same module);
* ``obj.m(...)`` resolves to *every* method named ``m`` in the program
  — callers choose whether to require uniqueness (typestate, taint) or
  to check all candidates (signal safety, where any candidate reaching
  an unsafe call is a finding).

Unresolvable calls return the empty list; passes treat those as
"unknown code" and fall back to their intraprocedural behavior.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analysis.core import SourceModule, resolve_dotted


@dataclass
class FunctionInfo:
    """One function or method definition, with its location identity."""

    path: str                 # root-relative posix path of the module
    qualname: str             # "func" or "Class.method" (nesting joined by ".")
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: Optional[str]        # immediately enclosing class name, if a method
    module: SourceModule

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def key(self) -> tuple[str, str]:
        return (self.path, self.qualname)


def _module_dotted(relpath: str) -> Optional[str]:
    """``src/repro/supervisor/pool.py`` -> ``repro.supervisor.pool``."""
    if not relpath.endswith(".py"):
        return None
    parts = relpath[: -len(".py")].split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk an AST without descending into nested function bodies."""
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


class CallGraph:
    """Indexes of every function definition plus call resolution."""

    def __init__(self, modules: list[SourceModule]):
        self.modules = [m for m in modules if m.tree is not None]
        #: (path, qualname) -> info
        self.functions: dict[tuple[str, str], FunctionInfo] = {}
        #: top-level function name -> infos (per-module lookup done on path)
        self._toplevel: dict[tuple[str, str], FunctionInfo] = {}
        #: method name -> every method with that name, program-wide
        self.by_method_name: dict[str, list[FunctionInfo]] = {}
        #: dotted module name -> module
        self._by_dotted: dict[str, SourceModule] = {}
        #: module path -> import-origin map
        self._origins: dict[str, dict[str, str]] = {}
        #: (path, qualname) -> call-name bag (see :meth:`name_bag`)
        self._bags: dict[tuple[str, str], frozenset[str]] = {}

        for mod in self.modules:
            assert mod.tree is not None
            dotted = _module_dotted(mod.path)
            if dotted is not None:
                self._by_dotted[dotted] = mod
            self._origins[mod.path] = mod.origins
            self._index_module(mod)

    def _index_module(self, mod: SourceModule) -> None:
        assert mod.tree is not None

        def visit(node: ast.AST, qual: str, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_qual = f"{qual}.{child.name}" if qual else child.name
                    info = FunctionInfo(
                        path=mod.path,
                        qualname=child_qual,
                        node=child,
                        cls=cls,
                        module=mod,
                    )
                    self.functions[info.key] = info
                    if cls is None and not qual:
                        self._toplevel[(mod.path, child.name)] = info
                    if cls is not None:
                        self.by_method_name.setdefault(child.name, []).append(info)
                    # Nested defs belong to the function, not the class.
                    visit(child, child_qual, None)
                elif isinstance(child, ast.ClassDef):
                    child_qual = f"{qual}.{child.name}" if qual else child.name
                    visit(child, child_qual, child.name)
                else:
                    visit(child, qual, cls)

        visit(mod.tree, "", None)

    def name_bag(self, info: FunctionInfo) -> frozenset[str]:
        """Every name syntactically involved in a call in this function:
        bare callee names, attribute-chain links, and chain roots.

        A cheap prefilter for the summary passes — a function whose bag
        is disjoint from a protocol's method/helper names cannot create,
        close, or transition one of its handles.
        """
        cached = self._bags.get(info.key)
        if cached is not None:
            return cached
        bag: set[str] = set()
        for node in walk_shallow(info.node):
            if not isinstance(node, ast.Call):
                continue
            cur: ast.expr = node.func
            while isinstance(cur, ast.Attribute):
                bag.add(cur.attr)
                cur = cur.value
            if isinstance(cur, ast.Name):
                bag.add(cur.id)
        frozen = frozenset(bag)
        self._bags[info.key] = frozen
        return frozen

    # -- resolution ----------------------------------------------------------

    def resolve_dotted_function(self, dotted: str) -> Optional[FunctionInfo]:
        """``repro.supervisor.journal.add_event`` -> its definition."""
        if "." not in dotted:
            return None
        mod_name, func_name = dotted.rsplit(".", 1)
        mod = self._by_dotted.get(mod_name)
        if mod is None:
            return None
        return self._toplevel.get((mod.path, func_name))

    def methods_of_class(self, path: str, cls: str) -> list[FunctionInfo]:
        prefix = f"{cls}."
        return [
            info
            for (p, qual), info in self.functions.items()
            if p == path and qual.startswith(prefix) and info.cls == cls
        ]

    def resolve_call(
        self,
        module: SourceModule,
        caller: Optional[FunctionInfo],
        call: ast.Call,
        all_candidates: bool = False,
    ) -> list[FunctionInfo]:
        """Possible callees of one call site (empty = unknown code)."""
        func = call.func
        origins = self._origins.get(module.path, {})
        if isinstance(func, ast.Name):
            local = self._toplevel.get((module.path, func.id))
            if local is not None:
                return [local]
            origin = origins.get(func.id)
            if origin is not None:
                info = self.resolve_dotted_function(origin)
                if info is not None:
                    return [info]
            return []
        if isinstance(func, ast.Attribute):
            # self.m(...): the enclosing class's method wins.
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and caller is not None
                and caller.cls is not None
            ):
                owner_qual = caller.qualname.rsplit(".", 1)[0]
                info = self.functions.get((caller.path, f"{owner_qual}.{func.attr}"))
                if info is not None:
                    return [info]
            # mod.f(...) through the import map.
            dotted = resolve_dotted(func, origins)
            if dotted is not None:
                info = self.resolve_dotted_function(dotted)
                if info is not None:
                    return [info]
            # obj.m(...): every method of that name.
            candidates = self.by_method_name.get(func.attr, [])
            if all_candidates:
                return list(candidates)
            if len(candidates) == 1:
                return list(candidates)
        return []

    def calls_in(
        self, info: FunctionInfo
    ) -> Iterator[tuple[ast.Call, list[FunctionInfo]]]:
        """Every call site in one function with its resolved callees."""
        for node in walk_shallow(info.node):
            if isinstance(node, ast.Call):
                yield node, self.resolve_call(info.module, info, node)


#: Single-entry memo for :func:`build_call_graph`.  Every program rule
#: in one driver run receives the *same* module list, so they share one
#: graph instead of each rebuilding it.  The cache holds strong
#: references to the keyed modules, so their ids cannot be recycled
#: while the entry is alive.
_GRAPH_CACHE: list[tuple[tuple[int, ...], list[SourceModule], CallGraph]] = []


def build_call_graph(modules: list[SourceModule]) -> CallGraph:
    key = tuple(id(m) for m in modules)
    if _GRAPH_CACHE and _GRAPH_CACHE[0][0] == key:
        return _GRAPH_CACHE[0][2]
    graph = CallGraph(modules)
    _GRAPH_CACHE[:] = [(key, list(modules), graph)]
    return graph
