"""Analysis driver: walk files, run rules, fold in suppressions/baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.core import (
    Finding,
    ProgramRule,
    Rule,
    Severity,
    SourceModule,
    all_rules,
)

#: Default analysis roots, relative to the repo root.  tests/ is
#: deliberately excluded: tests exercise bad lifecycles on purpose.
DEFAULT_PATHS = ("src/repro", "examples", "tools", "benchmarks")

#: Directories never descended into.
SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class SuppressedFinding:
    finding: Finding


@dataclass
class AnalysisResult:
    """Everything one run produced, pre-classified."""

    new_findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    parse_errors: list[tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    def failed(self, strict: bool = False) -> bool:
        if strict:
            return bool(self.new_findings or self.parse_errors)
        return bool(
            [f for f in self.new_findings if f.severity is Severity.ERROR]
            or self.parse_errors
        )

    def all_findings(self) -> list[Finding]:
        return self.new_findings + self.baselined


def discover_files(root: Path, paths: Sequence[str]) -> list[str]:
    """Root-relative posix paths of every ``.py`` file under ``paths``."""
    out: set[str] = set()
    for rel in paths:
        target = root / rel
        if target.is_file() and target.suffix == ".py":
            out.add(Path(rel).as_posix())
        elif target.is_dir():
            for path in target.rglob("*.py"):
                if any(part in SKIP_DIRS for part in path.parts):
                    continue
                out.add(path.relative_to(root).as_posix())
    return sorted(out)


def run_analysis(
    root: Path,
    paths: Sequence[str] = DEFAULT_PATHS,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    only_rules: Optional[Sequence[str]] = None,
    report_paths: Optional[Sequence[str]] = None,
) -> AnalysisResult:
    """Analyze every file under ``paths`` (relative to ``root``).

    ``report_paths`` restricts which files findings are *reported* for
    (the ``--changed-only`` fast path): per-module rules run only on
    those files, while whole-program rules still parse and see the
    entire program (their tables are global), with findings filtered to
    the reported set afterwards.  Stale-baseline accounting is skipped
    in filtered runs — only a full run sees every finding a baseline
    entry could match.
    """
    active = list(rules) if rules is not None else all_rules(only_rules)
    result = AnalysisResult(rules_run=[r.id for r in active])
    baseline = baseline or Baseline()

    per_module = [r for r in active if not isinstance(r, ProgramRule)]
    program = [r for r in active if isinstance(r, ProgramRule)]
    report = {Path(p).as_posix() for p in report_paths} if report_paths is not None else None

    modules: dict[str, SourceModule] = {}
    for relpath in discover_files(root, paths):
        module = SourceModule.load(root, relpath)
        modules[relpath] = module
        if module.parse_error is not None and (
            report is None or relpath in report
        ):
            result.parse_errors.append((relpath, str(module.parse_error)))

    raw: list[Finding] = []

    def classify(module: Optional[SourceModule], finding: Finding) -> None:
        raw.append(finding)
        if module is not None and module.is_suppressed(finding):
            result.suppressed.append(finding)
        elif baseline.contains(finding):
            result.baselined.append(finding)
        else:
            result.new_findings.append(finding)

    for relpath, module in modules.items():
        if module.parse_error is not None:
            continue
        if report is not None and relpath not in report:
            continue
        applicable = [r for r in per_module if r.applies_to(relpath)]
        if not applicable and not program:
            continue
        result.files_checked += 1
        for rule in applicable:
            for finding in rule.check(module):
                classify(module, finding)

    parsed = [m for m in modules.values() if m.parse_error is None]
    if report is not None:
        # A program rule can only report inside its scope; when none of
        # the changed files are in it, the whole (comparatively costly)
        # pass is skipped — this is what keeps --changed-only fast.
        program = [
            r for r in program if any(r.applies_to(p) for p in report)
        ]
    if parsed:
        for rule in program:
            for finding in rule.check_program(parsed):
                if not rule.applies_to(finding.path):
                    continue
                if report is not None and finding.path not in report:
                    continue
                classify(modules.get(finding.path), finding)

    if report is None:
        result.stale_baseline = baseline.stale_entries(raw)
    result.new_findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return result
