"""Derived metrics: turning raw counter values into the numbers papers
report (IPC, miss rates, Gflop/s, per-core-type shares).

The hybrid-specific piece is :func:`breakdown_eventset`: given a
multi-PMU EventSet and its values, it reconstructs the per-core-type
contributions of every derived preset — what the paper's §V-2 says a
user should *not* have to do by hand, exposed here for analysis code
that wants the split anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.papi.library import Papi


def ipc(instructions: float, cycles: float) -> float:
    """Instructions per cycle; 0 when no cycles elapsed."""
    return instructions / cycles if cycles > 0 else 0.0


def miss_rate(misses: float, references: float) -> float:
    """Cache miss rate; 0 when there were no references."""
    if references <= 0:
        return 0.0
    if misses < 0:
        raise ValueError("negative miss count")
    return min(1.0, misses / references)


def gflops(fp_ops: float, seconds: float) -> float:
    """Floating-point throughput in Gflop/s."""
    return fp_ops / seconds / 1e9 if seconds > 0 else 0.0


@dataclass
class HybridBreakdown:
    """Per-core-type contributions of one EventSet's entries."""

    entries: dict[str, dict[str, float]] = field(default_factory=dict)
    # entry name -> pmu name -> value (plain entries have one pmu key)

    def total(self, entry: str) -> float:
        return sum(self.entries[entry].values())

    def share(self, entry: str, pmu: str) -> float:
        total = self.total(entry)
        return self.entries[entry].get(pmu, 0.0) / total if total else 0.0


def breakdown_eventset(
    papi: "Papi", esid: int, values: Sequence[float] | None = None
) -> HybridBreakdown:
    """Split each EventSet entry's value by backing PMU.

    Reads the component's native slots directly, so derived presets
    (DERIVED_ADD across core types) come back as per-PMU contributions.
    ``values`` is accepted for interface symmetry but the per-slot counts
    are re-read from the component, so call this before reset.
    """
    from repro.papi.perf_event_component import PerfEventComponent

    es = papi.eventset(esid)
    if not isinstance(es.component, PerfEventComponent):
        raise TypeError("breakdown requires a perf_event EventSet")
    slot_values = es.component.read(es, None)
    state = es.component.state_of(es)
    out = HybridBreakdown()
    for entry in es.entries:
        per_pmu: dict[str, float] = {}
        for idx in entry.slot_indices:
            pmu = state.slots[idx].info.pmu.name
            per_pmu[pmu] = per_pmu.get(pmu, 0.0) + slot_values[idx]
        out.entries[entry.name] = per_pmu
    return out
