"""Engine hot-path allocation discipline.

The simulation engines execute ``Machine.tick`` (and the batching /
leaping machinery around it) millions of times per experiment; the PR
2–5 performance erosion was, profiled call by call, an accumulation of
per-tick allocations that each looked free in review: a dict literal
here, a lambda guard there, a ``getattr`` in a loop.  ``PERF-TICK-
HOTPATH`` makes that cost visible at review time: inside the known
engine-hot-path functions it flags

* dict / list / set / tuple-comprehension literals and comprehensions
  (a fresh container per call),
* ``lambda`` and nested ``def`` (a fresh function object plus closure
  cells per call),
* uncached ``getattr(...)`` calls (dynamic attribute dispatch that
  defeats the interpreter's inline caches).

A flagged pattern is not automatically wrong — ``tick`` genuinely needs
fresh per-tick accumulators — so deliberate cases are recorded in
``lint-baseline.json`` by fingerprint; the rule exists to force a
decision (cache it, hoist it, or baseline it with a reason) whenever a
*new* allocation enters a hot function.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule, Severity, SourceModule, register

#: root-relative path -> qualnames of the engine hot-path functions.
#: The tick itself, the per-thread slice executor and accounting flush,
#: the macro-tick replay inner loops, and the event engine's span
#: drivers — everything executed per simulated tick (or per replayed /
#: leapt tick) on the measured configurations.
HOT_PATHS: dict[str, frozenset[str]] = {
    "src/repro/sim/engine.py": frozenset(
        {
            "Machine.tick",
            "Machine._execute_slice",
            "Machine._flush_slice",
            "Machine._rate_vec",
        }
    ),
    "src/repro/sim/fastpath.py": frozenset(
        {
            "_Batch.guards_hold",
            "_Batch.apply_tick",
        }
    ),
    "src/repro/sim/events.py": frozenset(
        {
            "_Span.horizon",
            "_Span.drive",
            "_Span.drive_until",
            "SchedCache.lookup",
            "EventEngine.run_ticks",
            "EventEngine.run_until",
        }
    ),
}

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _snippet(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on our input
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 1] + "…"


def _kind(node: ast.AST) -> str | None:
    if isinstance(node, ast.Dict):
        return "dict literal allocation"
    if isinstance(node, ast.List):
        return "list literal allocation"
    if isinstance(node, ast.Set):
        return "set literal allocation"
    if isinstance(node, _COMPREHENSIONS):
        return "comprehension allocation"
    if isinstance(node, ast.Lambda):
        return "lambda allocation"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "getattr"
    ):
        return "uncached getattr"
    return None


@register
class TickHotPathRule(Rule):
    id = "PERF-TICK-HOTPATH"
    severity = Severity.WARNING
    description = (
        "per-call allocation patterns (dict/list/set literals, "
        "comprehensions, lambdas, nested defs, uncached getattr) inside "
        "the engine hot-path functions; hoist, cache, or baseline "
        "deliberately"
    )
    scope = ("src/repro/sim/",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        hot = HOT_PATHS.get(module.path)
        if not hot or module.tree is None:
            return
        for cls in module.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            for fn in cls.body:
                if not isinstance(fn, ast.FunctionDef):
                    continue
                qual = f"{cls.name}.{fn.name}"
                if qual in hot:
                    yield from self._check_function(module, fn, qual)

    def _check_function(
        self, module: SourceModule, fn: ast.FunctionDef, qual: str
    ) -> Iterator[Finding]:
        # Manual stack walk so nested function bodies are *not*
        # descended into: the nested def itself is the per-call cost;
        # its body runs on its own schedule.
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield self.finding(
                    module,
                    node,
                    f"nested def {node.name!r} creates a function object "
                    f"per call of {qual}; hoist it or baseline deliberately",
                    symbol=qual,
                )
                continue
            kind = _kind(node)
            if kind is not None:
                yield self.finding(
                    module,
                    node,
                    f"{kind} on every call of {qual}: "
                    f"`{_snippet(node)}`; hoist, cache, or baseline "
                    "deliberately",
                    symbol=qual,
                )
                if isinstance(node, ast.Lambda):
                    continue  # the body runs later, on its own schedule
            stack.extend(ast.iter_child_nodes(node))
