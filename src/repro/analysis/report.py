"""Human, JSON, and SARIF reporters for analysis results."""

from __future__ import annotations

import json

from repro.analysis.core import Finding, Severity, all_rules
from repro.analysis.driver import AnalysisResult


def render_human(result: AnalysisResult, strict: bool = False) -> str:
    lines: list[str] = []
    by_file: dict[str, list[Finding]] = {}
    for finding in result.new_findings:
        by_file.setdefault(finding.path, []).append(finding)
    for path in sorted(by_file):
        for finding in by_file[path]:
            lines.append(finding.render())
    for path, err in result.parse_errors:
        lines.append(f"{path}: PARSE-ERROR error: {err}")
    if result.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (finding no longer present):")
        for entry in result.stale_baseline:
            lines.append(
                f"  {entry['path']}: {entry['rule']} "
                f"[{entry.get('symbol', '')}] {entry['message']}"
            )
    lines.append("")
    verdict = "FAILED" if result.failed(strict) else "ok"
    lines.append(
        f"repro-lint: {verdict} — {result.files_checked} files, "
        f"{len(result.rules_run)} rules, "
        f"{len(result.new_findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "severity": str(finding.severity),
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "symbol": finding.symbol,
        "fingerprint": finding.fingerprint,
    }


def render_json(result: AnalysisResult, strict: bool = False) -> str:
    payload = {
        "version": 1,
        "failed": result.failed(strict),
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "findings": [_finding_dict(f) for f in result.new_findings],
        "baselined": [_finding_dict(f) for f in result.baselined],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "stale_baseline": result.stale_baseline,
        "parse_errors": [
            {"path": p, "error": e} for p, e in result.parse_errors
        ],
    }
    return json.dumps(payload, indent=2)


def _sarif_result(finding: Finding) -> dict:
    return {
        "ruleId": finding.rule,
        "level": "error" if finding.severity is Severity.ERROR else "warning",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
                "logicalLocations": (
                    [{"fullyQualifiedName": finding.symbol}]
                    if finding.symbol
                    else []
                ),
            }
        ],
        # The baseline fingerprint doubles as the SARIF stable id, so
        # code-scanning UIs track a finding across moves and renames
        # exactly like the baseline file does.
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }


def render_sarif(result: AnalysisResult) -> str:
    """SARIF 2.1.0 for CI code-scanning upload.

    Only *new* findings become results (baselined and suppressed ones
    are accepted debt, not alerts); parse errors are reported under the
    synthetic rule id ``PARSE-ERROR`` so they surface too.
    """
    ran = set(result.rules_run)
    rules = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": (
                    "error" if rule.severity is Severity.ERROR else "warning"
                )
            },
        }
        for rule in all_rules()
        if rule.id in ran
    ]
    rules.append(
        {
            "id": "PARSE-ERROR",
            "shortDescription": {"text": "file failed to parse"},
            "defaultConfiguration": {"level": "error"},
        }
    )
    results = [_sarif_result(f) for f in result.new_findings]
    for path, err in result.parse_errors:
        results.append(
            {
                "ruleId": "PARSE-ERROR",
                "level": "error",
                "message": {"text": err},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {"startLine": 1, "startColumn": 1},
                        },
                        "logicalLocations": [],
                    }
                ],
                "partialFingerprints": {"reproLint/v1": f"parse:{path}"},
            }
        )
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
