"""Human and JSON reporters for analysis results."""

from __future__ import annotations

import json

from repro.analysis.core import Finding
from repro.analysis.driver import AnalysisResult


def render_human(result: AnalysisResult, strict: bool = False) -> str:
    lines: list[str] = []
    by_file: dict[str, list[Finding]] = {}
    for finding in result.new_findings:
        by_file.setdefault(finding.path, []).append(finding)
    for path in sorted(by_file):
        for finding in by_file[path]:
            lines.append(finding.render())
    for path, err in result.parse_errors:
        lines.append(f"{path}: PARSE-ERROR error: {err}")
    if result.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (finding no longer present):")
        for entry in result.stale_baseline:
            lines.append(
                f"  {entry['path']}: {entry['rule']} "
                f"[{entry.get('symbol', '')}] {entry['message']}"
            )
    lines.append("")
    verdict = "FAILED" if result.failed(strict) else "ok"
    lines.append(
        f"repro-lint: {verdict} — {result.files_checked} files, "
        f"{len(result.rules_run)} rules, "
        f"{len(result.new_findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "severity": str(finding.severity),
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "symbol": finding.symbol,
        "fingerprint": finding.fingerprint,
    }


def render_json(result: AnalysisResult, strict: bool = False) -> str:
    payload = {
        "version": 1,
        "failed": result.failed(strict),
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "findings": [_finding_dict(f) for f in result.new_findings],
        "baselined": [_finding_dict(f) for f in result.baselined],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "stale_baseline": result.stale_baseline,
        "parse_errors": [
            {"path": p, "error": e} for p, e in result.parse_errors
        ],
    }
    return json.dumps(payload, indent=2)
