"""Per-function control-flow graphs over raw AST statements.

Statement-granularity CFG: one node per simple statement, with
structured control flow (``if``/``while``/``for``/``try``/``with``,
``break``/``continue``/``return``/``raise``) lowered to edges.  Two
distinguished exits:

* ``exit`` — the normal exit (fall off the end or ``return``), where
  resource-leak checks apply;
* ``raise_exit`` — reached by ``raise`` statements that no enclosing
  handler catches; typestate rules deliberately do *not* report leaks
  there (an escaping exception already aborts the operation).

Exception edges are coarse: every statement inside a ``try`` body also
flows to each of its handlers, which over-approximates "any statement
may raise".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Node:
    """One CFG node wrapping at most one AST statement."""

    idx: int
    stmt: Optional[ast.stmt]        # None for synthetic entry/exit nodes
    label: str = ""
    succs: list[int] = field(default_factory=list)

    def link(self, other: "Node") -> None:
        if other.idx not in self.succs:
            self.succs.append(other.idx)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.raise_exit = self._new(None, "raise-exit")

    def _new(self, stmt: Optional[ast.stmt], label: str = "") -> Node:
        node = Node(idx=len(self.nodes), stmt=stmt, label=label)
        self.nodes.append(node)
        return node

    def preds(self, idx: int) -> list[int]:
        return [n.idx for n in self.nodes if idx in n.succs]


@dataclass
class _Frame:
    """Loop / try context during construction."""

    break_targets: list[Node]
    continue_target: Optional[Node]


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loop_stack: list[_Frame] = []
        # Statements inside a try body additionally flow to these
        # handler-entry nodes (innermost try first).
        self.handler_stack: list[list[Node]] = []

    def build(self, body: list[ast.stmt]) -> CFG:
        tails = self._seq(body, [self.cfg.entry])
        for tail in tails:
            tail.link(self.cfg.exit)
        return self.cfg

    # -- helpers ------------------------------------------------------------

    def _seq(self, stmts: list[ast.stmt], preds: list[Node]) -> list[Node]:
        """Wire a statement sequence; returns the fall-through tails."""
        current = preds
        for stmt in stmts:
            current = self._stmt(stmt, current)
            if not current:  # unreachable rest (after return/raise/...)
                break
        return current

    def _stmt(self, stmt: ast.stmt, preds: list[Node]) -> list[Node]:
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._plain(stmt, preds)
            return self._seq(stmt.body, [node])

        node = self._plain(stmt, preds)
        if isinstance(stmt, ast.Return):
            node.link(self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            self._to_handlers_or_raise_exit(node)
            return []
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self.loop_stack[-1].break_targets.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if self.loop_stack and self.loop_stack[-1].continue_target:
                node.link(self.loop_stack[-1].continue_target)
            return []
        return [node]

    def _plain(self, stmt: ast.stmt, preds: list[Node]) -> Node:
        node = self.cfg._new(stmt)
        for p in preds:
            p.link(node)
        # Coarse exception edge: anything in a try body may jump to its
        # handlers.
        for handlers in self.handler_stack:
            for h in handlers:
                node.link(h)
        return node

    def _to_handlers_or_raise_exit(self, node: Node) -> None:
        if self.handler_stack:
            for h in self.handler_stack[-1]:
                node.link(h)
        else:
            node.link(self.cfg.raise_exit)

    def _if(self, stmt: ast.If, preds: list[Node]) -> list[Node]:
        cond = self._plain(stmt, preds)
        then_tails = self._seq(stmt.body, [cond])
        if stmt.orelse:
            else_tails = self._seq(stmt.orelse, [cond])
        else:
            else_tails = [cond]
        return then_tails + else_tails

    def _loop(self, stmt: ast.stmt, preds: list[Node]) -> list[Node]:
        head = self._plain(stmt, preds)
        frame = _Frame(break_targets=[], continue_target=head)
        self.loop_stack.append(frame)
        body = stmt.body  # type: ignore[attr-defined]
        body_tails = self._seq(body, [head])
        self.loop_stack.pop()
        for tail in body_tails:
            tail.link(head)  # back edge
        after: list[Node] = [head]  # loop may run zero times
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            after = self._seq(orelse, after)
        after.extend(frame.break_targets)
        return after

    def _try(self, stmt: ast.Try, preds: list[Node]) -> list[Node]:
        handler_entries = [self.cfg._new(h, "except") for h in stmt.handlers]
        self.handler_stack.append(handler_entries)
        body_tails = self._seq(stmt.body, preds)
        self.handler_stack.pop()

        tails: list[Node] = []
        if stmt.orelse:
            tails.extend(self._seq(stmt.orelse, body_tails))
        else:
            tails.extend(body_tails)
        for entry in handler_entries:
            handler = entry.stmt
            assert isinstance(handler, ast.ExceptHandler)
            tails.extend(self._seq(handler.body, [entry]))
        if stmt.finalbody:
            tails = self._seq(stmt.finalbody, tails)
        return tails


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """CFG for one function definition's body."""
    return _Builder().build(func.body)
