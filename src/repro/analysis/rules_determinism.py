"""Determinism rules.

Bit-identical replay (fastpath parity, checkpoint/restore) holds only if
the simulation layers are closed over their seeds: no wall clock, no OS
entropy, no process-global RNG, no hash-order-dependent iteration, no
identity-based ordering.  These rules fence those layers statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import (
    Finding,
    Rule,
    Severity,
    SourceModule,
    enclosing_symbols,
    import_origins,
    register,
    resolve_dotted,
)

#: The layers whose behaviour must be a pure function of (machine, seed).
DETERMINISTIC_SCOPE = (
    "src/repro/sim",
    "src/repro/kernel",
    "src/repro/hw",
    "src/repro/faults",
    "src/repro/hpl",
    "src/repro/trace",
    "src/repro/validate",
)

#: Dotted call targets that read host wall-clock time.
WALLCLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: ``random.<anything>`` except these is the process-global Mersenne
#: twister (or OS entropy) and is banned; seeded ``random.Random``
#: instances are the sanctioned source of simulated randomness.
RANDOM_MODULE_ALLOWED = {"random.Random"}

#: Other entropy sources, banned outright.
ENTROPY_CALLS = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "random.SystemRandom",
}

#: The legacy numpy global-RNG surface; ``default_rng(seed)`` and
#: explicit ``Generator``/``SeedSequence`` construction stay legal.
NUMPY_RANDOM_ALLOWED = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
}


@register
class WallClockRule(Rule):
    id = "DET-WALLCLOCK"
    severity = Severity.ERROR
    description = (
        "sim layers must take time from SimClock, never from the host "
        "wall clock (time.time, datetime.now, ...)"
    )
    scope = DETERMINISTIC_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.tree is None:
            return
        origins = import_origins(module.tree)
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, origins)
            if dotted in WALLCLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"host wall-clock call {dotted}() in a deterministic "
                    "layer; use the simulated clock",
                    symbol=symbols.get(id(node), ""),
                )


@register
class UnseededRandomRule(Rule):
    id = "DET-RANDOM"
    severity = Severity.ERROR
    description = (
        "only seeded random.Random (or numpy default_rng(seed)) instances "
        "may generate randomness; the module-level RNG and OS entropy are "
        "banned"
    )
    scope = DETERMINISTIC_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.tree is None:
            return
        origins = import_origins(module.tree)
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, origins)
            if dotted is None:
                continue
            message: Optional[str] = None
            if dotted in ENTROPY_CALLS:
                message = f"OS-entropy call {dotted}()"
            elif dotted.startswith("secrets."):
                message = f"OS-entropy call {dotted}()"
            elif (
                dotted.startswith("random.")
                and dotted.count(".") == 1
                and dotted not in RANDOM_MODULE_ALLOWED
            ):
                message = f"process-global RNG call {dotted}()"
            elif (
                dotted.startswith("numpy.random.")
                and dotted not in NUMPY_RANDOM_ALLOWED
            ):
                message = f"numpy global-RNG call {dotted}()"
            if message is not None:
                yield self.finding(
                    module,
                    node,
                    f"{message} in a deterministic layer; route randomness "
                    "through a seeded random.Random",
                    symbol=symbols.get(id(node), ""),
                )


def _set_producing_methods() -> frozenset[str]:
    return frozenset(
        {"intersection", "union", "difference", "symmetric_difference", "copy"}
    )


class _SetTracker:
    """Best-effort recognition of expressions that denote a ``set``."""

    def __init__(self, func: ast.AST):
        self.set_vars: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and self.is_set_expr(node.value):
                    self.set_vars.add(target.id)

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _set_producing_methods()
                and self.is_set_expr(node.func.value)
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.set_vars
        return False


@register
class HashOrderIterationRule(Rule):
    id = "DET-HASH-ITER"
    severity = Severity.ERROR
    description = (
        "iterating a set (or materializing one with list()/tuple()) leaks "
        "PYTHONHASHSEED-dependent order; wrap in sorted()"
    )
    scope = DETERMINISTIC_SCOPE

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.tree is None:
            return
        symbols = enclosing_symbols(module.tree)
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            n
            for n in ast.walk(module.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        seen: set[int] = set()
        for scope in scopes:
            tracker = _SetTracker(scope)
            for node in ast.walk(scope):
                if id(node) in seen:
                    continue
                iter_expr: Optional[ast.expr] = None
                what = ""
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iter_expr, what = node.iter, "for-loop over"
                elif isinstance(node, ast.comprehension):
                    iter_expr, what = node.iter, "comprehension over"
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    if node.func.id in ("list", "tuple", "enumerate") and node.args:
                        iter_expr = node.args[0]
                        what = f"{node.func.id}() over"
                if iter_expr is None:
                    continue
                # Unwrap enumerate(sorted(...)) etc: sorted() launders order.
                if (
                    isinstance(iter_expr, ast.Call)
                    and isinstance(iter_expr.func, ast.Name)
                    and iter_expr.func.id == "sorted"
                ):
                    continue
                if tracker.is_set_expr(iter_expr):
                    seen.add(id(node))
                    anchor = iter_expr if hasattr(iter_expr, "lineno") else node
                    yield self.finding(
                        module,
                        anchor,
                        f"{what} a set iterates in PYTHONHASHSEED order; "
                        "use sorted(...) to fix the order",
                        symbol=symbols.get(id(anchor), symbols.get(id(node), "")),
                    )


@register
class IdentityOrderRule(Rule):
    id = "DET-ID-ORDER"
    severity = Severity.ERROR
    description = (
        "ordering by id() depends on allocator addresses and varies "
        "between runs"
    )
    scope = DETERMINISTIC_SCOPE

    _ORDER_FUNCS = ("sorted", "min", "max")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.tree is None:
            return
        symbols = enclosing_symbols(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            is_order_call = (
                isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_FUNCS
            ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
            if not is_order_call:
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                uses_id = (
                    isinstance(kw.value, ast.Name) and kw.value.id == "id"
                ) or any(
                    isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Name)
                    and n.func.id == "id"
                    for n in ast.walk(kw.value)
                )
                if uses_id:
                    yield self.finding(
                        module,
                        node,
                        "ordering key uses id(); object addresses are not "
                        "stable across runs",
                        symbol=symbols.get(id(node), ""),
                    )
