"""Synthetic workloads beyond HPL, and counter-guided core selection.

The paper motivates heterogeneous-aware *tooling*; its related work
(Stepanovic et al., Gupta et al.) uses exactly such tooling to drive
core selection — "it is usually optimal to relegate jobs with a high LLC
miss rate to the E-cores".  This package provides:

* :mod:`repro.workloads.jobs` — parameterized job profiles (compute-
  bound SIMD kernels, memory/LLC-bound scans, branchy integer work);
* :mod:`repro.workloads.guided` — a core-selection study: profile each
  job's LLC miss rate with a hybrid-PAPI EventSet, then place jobs on P
  or E cores according to the measured counters, and compare makespan
  against counter-blind placements.
"""

from repro.workloads.jobs import JOB_PROFILES, JobProfile, make_job_phases
from repro.workloads.guided import (
    GuidedSchedulingResult,
    profile_job_missrates,
    run_placement,
    run_guided_study,
)

__all__ = [
    "JOB_PROFILES",
    "JobProfile",
    "make_job_phases",
    "GuidedSchedulingResult",
    "profile_job_missrates",
    "run_placement",
    "run_guided_study",
]
