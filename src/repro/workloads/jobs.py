"""Parameterized synthetic job profiles.

Each profile derives per-core-type execution rates mechanistically: the
core's base IPC degraded by LLC-miss stalls (via the core's miss penalty
and the job's memory-level parallelism).  Compute-bound jobs are much
faster on P-cores; memory-bound jobs spend their time waiting on DRAM,
so the P-core advantage largely evaporates — the effect counter-guided
scheduling exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.coretype import CoreType
from repro.sim.workload import ComputePhase, PhaseRates, arch_event_rates


@dataclass(frozen=True)
class JobProfile:
    """A class of work, characterized by its memory behaviour."""

    name: str
    llc_refs_per_instr: float
    llc_miss_rate: float
    mlp_overlap: float          # fraction of miss latency hidden
    flops_per_instr: float = 0.0
    simd: bool = False          # SIMD kernels scale with flops/cycle
    branches_per_instr: float = 0.05
    branch_miss_rate: float = 0.01

    def rates(self, ctype: CoreType) -> PhaseRates:
        if self.simd:
            base_ipc = ctype.flops_per_cycle / max(self.flops_per_instr, 1e-9)
        else:
            base_ipc = ctype.ipc
        stall = (
            self.llc_refs_per_instr
            * self.llc_miss_rate
            * ctype.llc_miss_penalty_cycles
            * (1.0 - self.mlp_overlap)
        )
        ipc = 1.0 / (1.0 / base_ipc + stall)
        return PhaseRates(
            ipc=ipc,
            flops_per_instr=self.flops_per_instr,
            llc_refs_per_instr=self.llc_refs_per_instr,
            llc_miss_rate=self.llc_miss_rate,
            branches_per_instr=self.branches_per_instr,
            branch_miss_rate=self.branch_miss_rate,
        )

    def expected_counts(self, ctype: CoreType, instructions: float) -> np.ndarray:
        """Analytic event expectations for ``instructions`` of this job
        on ``ctype`` — the validation oracle's ground truth.  REF_CYCLES
        (time-based) stays zero; the oracle patches it from runtime.
        """
        return arch_event_rates(ctype, self.rates(ctype)) * float(instructions)

    def speed_ratio_big_over_little(
        self, big: CoreType, little: CoreType
    ) -> float:
        """Instructions/s ratio at max frequency (placement-value signal)."""
        rb = self.rates(big).ipc * big.max_freq_ghz
        rl = self.rates(little).ipc * little.max_freq_ghz
        return rb / rl


#: The job mix used by the guided-scheduling study.
JOB_PROFILES: dict[str, JobProfile] = {
    "dgemm-kernel": JobProfile(
        name="dgemm-kernel",
        llc_refs_per_instr=0.002,
        llc_miss_rate=0.3,
        mlp_overlap=0.97,
        flops_per_instr=8.0,
        simd=True,
    ),
    "integer-hot-loop": JobProfile(
        name="integer-hot-loop",
        llc_refs_per_instr=0.0005,
        llc_miss_rate=0.1,
        mlp_overlap=0.9,
        branches_per_instr=0.15,
        branch_miss_rate=0.02,
    ),
    "pointer-chase": JobProfile(
        name="pointer-chase",
        llc_refs_per_instr=0.05,
        llc_miss_rate=0.8,
        mlp_overlap=0.1,        # dependent loads: nothing overlaps
    ),
    "streaming-scan": JobProfile(
        name="streaming-scan",
        llc_refs_per_instr=0.03,
        llc_miss_rate=0.9,
        mlp_overlap=0.55,
    ),
}


def make_job_phases(profile: JobProfile, instructions: float) -> list[ComputePhase]:
    """Phases for one job instance."""
    return [ComputePhase(instructions, profile.rates, label=profile.name)]
