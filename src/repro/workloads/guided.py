"""Counter-guided core selection on a hybrid machine.

Three placement policies for a batch of jobs on a P+E machine:

* ``guided`` — profile each job's LLC miss rate with a hybrid-PAPI
  EventSet first, then send high-miss-rate jobs to E-cores and low-miss-
  rate jobs to P-cores (the Stepanovic-style policy the paper cites);
* ``naive`` — counter-blind: jobs are assigned round-robin;
* ``inverted`` — the adversarial control: compute on E, memory on P.

The study reports makespan and energy for each, demonstrating *why* the
paper wants heterogeneous counter tooling: the guided policy needs
per-core-type LLC counters to exist and be readable from one EventSet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.papi import Papi
from repro.sim.task import ControlOp, Program, SimThread
from repro.system import System
from repro.workloads.jobs import JOB_PROFILES, JobProfile, make_job_phases


@dataclass
class JobInstance:
    name: str
    profile: JobProfile
    instructions: float
    measured_miss_rate: float | None = None


@dataclass
class PlacementOutcome:
    policy: str
    makespan_s: float
    energy_j: float
    assignments: dict[str, str] = field(default_factory=dict)  # job -> core class


@dataclass
class GuidedSchedulingResult:
    machine: str
    jobs: list[JobInstance]
    outcomes: dict[str, PlacementOutcome] = field(default_factory=dict)

    def speedup(self, over: str = "inverted") -> float:
        return self.outcomes[over].makespan_s / self.outcomes["guided"].makespan_s


def default_job_batch(
    machine_name: str,
    per_profile: int = 8,
    target_seconds: float = 0.2,
) -> list[JobInstance]:
    """A batch that *oversubscribes* the machine.

    Placement only matters under contention for the scarce P-cores, so
    the batch is several jobs per core; instruction counts are normalized
    so every job takes ~``target_seconds`` on an unloaded big core — the
    policies then differ only in *where* work runs, not in how much.
    """
    system = System(machine_name, dt_s=1.0)  # topology query only
    big = max(
        system.topology.core_types, key=lambda ct: ct.capacity * ct.max_freq_mhz
    )
    jobs = []
    for profile in JOB_PROFILES.values():
        speed = profile.rates(big).ipc * big.max_freq_ghz * 1e9
        instructions = target_seconds * speed
        for i in range(per_profile):
            jobs.append(
                JobInstance(
                    name=f"{profile.name}-{i}",
                    profile=profile,
                    instructions=instructions,
                )
            )
    return jobs


def profile_job_missrates(
    machine_name: str, jobs: list[JobInstance], sample_instructions: float = 2e6
) -> None:
    """Measure each job's LLC miss rate with a short calipered sample.

    Uses a hybrid EventSet with the derived PAPI_L3_TCA/PAPI_L3_TCM
    presets, so the measurement works no matter which core type the
    sample lands on — the capability the paper's patch provides.
    """
    for job in jobs:
        system = System(machine_name, dt_s=1e-4)
        papi = Papi(system, mode="hybrid")
        measured: dict = {}

        def do_measure(thread, _papi=papi, _m=measured):
            _m["values"] = _papi.stop(_m["es"], caller=thread)
            _papi.destroy_eventset(_m["es"], caller=thread)

        def do_setup(thread, _papi=papi, _m=measured):
            es = _papi.create_eventset()
            _papi.attach(es, thread)
            _papi.add_event(es, "PAPI_L3_TCA", caller=thread)
            _papi.add_event(es, "PAPI_L3_TCM", caller=thread)
            _papi.start(es, caller=thread)
            _m["es"] = es

        phases = make_job_phases(job.profile, sample_instructions)
        items = [ControlOp(do_setup), *phases, ControlOp(do_measure)]
        t = system.machine.spawn(SimThread(f"sample-{job.name}", Program(items)))
        system.machine.run_until_done([t], max_s=30)
        tca, tcm = measured["values"]
        job.measured_miss_rate = (tcm / tca) if tca else 0.0


def _assign(
    policy: str, jobs: list[JobInstance], system: System
) -> dict[str, str]:
    """job name -> core class name."""
    classes = sorted(
        system.topology.core_types, key=lambda ct: -ct.capacity * ct.max_freq_mhz
    )
    big, little = classes[0].name, classes[-1].name
    if policy == "guided":
        # High measured LLC miss rate -> little cores; ties broken so the
        # batch splits roughly evenly across the clusters.
        ranked = sorted(jobs, key=lambda j: j.measured_miss_rate or 0.0)
        half = len(ranked) // 2
        return {
            j.name: (big if idx < half else little)
            for idx, j in enumerate(ranked)
        }
    if policy == "inverted":
        ranked = sorted(jobs, key=lambda j: -(j.measured_miss_rate or 0.0))
        half = len(ranked) // 2
        return {
            j.name: (big if idx < half else little)
            for idx, j in enumerate(ranked)
        }
    if policy == "naive":
        return {
            j.name: (big if idx % 2 == 0 else little)
            for idx, j in enumerate(jobs)
        }
    raise ValueError(f"unknown policy {policy!r}")


def run_placement(
    machine_name: str,
    jobs: list[JobInstance],
    policy: str,
    dt_s: float = 0.005,
) -> PlacementOutcome:
    """Run the whole batch under one placement policy."""
    system = System(machine_name, dt_s=dt_s)
    assignments = _assign(policy, jobs, system)
    primary = set(system.topology.primary_threads())
    class_cpus = {
        ct.name: [
            c for c in system.topology.cpus_of_type(ct.name) if c in primary
        ]
        for ct in system.topology.core_types
    }
    threads = []
    for job in jobs:
        cpus = set(class_cpus[assignments[job.name]])
        threads.append(
            system.machine.spawn(
                SimThread(
                    job.name,
                    Program(make_job_phases(job.profile, job.instructions)),
                    affinity=cpus,
                )
            )
        )
    t0 = system.machine.now_s
    e0 = system.machine.rapl.package.energy_j
    if not system.machine.run_until_done(threads, max_s=3600):
        raise RuntimeError("job batch did not finish")
    return PlacementOutcome(
        policy=policy,
        makespan_s=system.machine.now_s - t0,
        energy_j=system.machine.rapl.package.energy_j - e0,
        assignments=assignments,
    )


def run_guided_study(
    machine_name: str = "raptor-lake-i7-13700",
    per_profile: int = 8,
    target_seconds: float = 0.2,
) -> GuidedSchedulingResult:
    jobs = default_job_batch(machine_name, per_profile, target_seconds)
    profile_job_missrates(machine_name, jobs)
    result = GuidedSchedulingResult(machine=machine_name, jobs=jobs)
    for policy in ("guided", "naive", "inverted"):
        result.outcomes[policy] = run_placement(machine_name, jobs, policy)
    return result


def render(result: GuidedSchedulingResult) -> str:
    lines = ["job                     measured LLC missrate"]
    for j in result.jobs[:: max(1, len(result.jobs) // 8)]:
        lines.append(f"  {j.name:22s} {j.measured_miss_rate:8.3f}")
    lines.append("")
    lines.append("policy     makespan (s)   energy (J)")
    for policy, out in result.outcomes.items():
        lines.append(
            f"  {policy:9s} {out.makespan_s:10.2f}   {out.energy_j:10.1f}"
        )
    lines.append(
        f"\nguided vs inverted speedup: {result.speedup('inverted'):.2f}x; "
        f"vs naive: {result.speedup('naive'):.2f}x"
    )
    return "\n".join(lines)
