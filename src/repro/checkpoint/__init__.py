"""Deterministic checkpoint/restore of a running simulated system.

The contract: for any deterministic workload, *restore-then-run is
bit-identical to run-straight-through* — counters, sampler traces, HPL
results — on both the slow-path and macro-tick engines, with or without
an active fault plan.  ``System.save(path)`` / ``System.restore(path)``
are the user-facing entry points; this package provides the machinery:

* :mod:`repro.checkpoint.pickler` — closure-capable serialization;
* :mod:`repro.checkpoint.surface` — per-layer snapshot-surface
  declarations (state vs. rebuildable cache) and global counters;
* :mod:`repro.checkpoint.snapshot` — the versioned, digest-stamped,
  atomically-written file envelope;
* :mod:`repro.checkpoint.digest` — canonical deep hashing
  (``state_digest``) used by parity/identity tests and resume checks.
"""

from repro.checkpoint.digest import DIGEST_ALGO, state_digest
from repro.checkpoint.pickler import SnapshotPickler, SnapshotPicklingError
from repro.checkpoint.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    SnapshotIntegrityError,
    SnapshotVersionError,
    load_object,
    read_header,
    save_object,
)
from repro.checkpoint.surface import (
    GLOBAL_COUNTERS,
    SNAPSHOT_SURFACES,
    register_global_counter,
    snapshot_surface,
)

__all__ = [
    "DIGEST_ALGO",
    "GLOBAL_COUNTERS",
    "SNAPSHOT_SURFACES",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "SnapshotIntegrityError",
    "SnapshotPickler",
    "SnapshotPicklingError",
    "SnapshotVersionError",
    "load_object",
    "read_header",
    "register_global_counter",
    "save_object",
    "snapshot_surface",
    "state_digest",
]
