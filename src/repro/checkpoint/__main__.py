"""Inspect and exercise snapshots from the command line.

::

    python -m repro.checkpoint describe ckpt.snap   # header, no unpickling
    python -m repro.checkpoint digest ckpt.snap     # load + state digest
    python -m repro.checkpoint run ckpt.snap        # load a System snapshot,
                                                    # run to completion, print
                                                    # the final digest

``describe`` only reads the header line — safe on snapshots from other
Python versions.  ``digest`` and ``run`` fully restore the payload (and
rewind registered global counters), so run them in a fresh process per
snapshot; ``run`` is what the restore-equivalence tests drive.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.checkpoint.digest import state_digest
from repro.checkpoint.snapshot import load_object, read_header


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.checkpoint")
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("describe", "digest", "run"):
        p = sub.add_parser(name)
        p.add_argument("path")
    sub.choices["run"].add_argument(
        "--max-s", type=float, default=36_000.0, help="sim-time budget"
    )
    args = parser.parse_args(argv)

    if args.command == "describe":
        print(json.dumps(read_header(args.path), indent=2, sort_keys=True))
        return 0

    obj = load_object(args.path)
    if args.command == "digest":
        print(state_digest(obj))
        return 0

    # run: accept either a bare System or a composite payload holding one.
    system = obj if not isinstance(obj, dict) else obj.get("system")
    if system is None or not hasattr(system, "machine"):
        print(f"{args.path}: no System in snapshot payload", file=sys.stderr)
        return 2
    system.machine.run_until_done(system.machine.threads, max_s=args.max_s, strict=True)
    print(state_digest(obj))
    return 0


if __name__ == "__main__":
    sys.exit(main())
