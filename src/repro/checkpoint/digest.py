"""Canonical deep hashing of the snapshot surface.

``state_digest(obj)`` walks the same object graph a snapshot serializes
(honouring every layer's ``__getstate__`` cache exclusions) and folds it
into one SHA-256.  Two object graphs digest equal iff they are
bit-identical on the snapshot surface — which is what the fast-path
parity and chaos-survivor guarantees actually promise — so a test can
assert one digest equality instead of enumerating fields.

Stability rules (the digest must agree between a straight run and a
restored-and-continued run, in different processes):

* floats are hashed as their IEEE-754 little-endian bytes — no repr
  round-tripping;
* numpy arrays as dtype + shape + raw bytes;
* dicts in insertion order (deterministic: the simulation builds them in
  a deterministic order, and unpickling replays that order);
* sets by *sorted element digests*, because set iteration order depends
  on ``PYTHONHASHSEED`` for str elements;
* functions (incl. closures) as qualname + marshalled code + cell
  digests — behaviourally identical closures digest equal;
* shared references and cycles via a memo of traversal-order labels, so
  aliasing is part of the digest (two threads sharing one barrier differ
  from two threads with private barriers).
"""

from __future__ import annotations

import enum
import hashlib
import struct
import types
from collections import deque
from typing import Any

import numpy as np

from repro.checkpoint.surface import SNAPSHOT_SURFACES

#: Bump when the digest algorithm itself changes (recorded by snapshot
#: headers so a version mismatch is reported instead of a false diff).
DIGEST_ALGO = "repro-digest-v1"


class _Hasher:
    def __init__(self) -> None:
        self.h = hashlib.sha256(DIGEST_ALGO.encode())
        self.memo: dict[int, int] = {}
        self.keepalive: list = []  # pin ids for the walk's duration

    def tag(self, t: str) -> None:
        self.h.update(t.encode())

    def raw(self, b: bytes) -> None:
        self.h.update(struct.pack("<Q", len(b)))
        self.h.update(b)


def _digest_set(hasher: _Hasher, obj) -> None:
    parts = []
    for item in obj:
        sub = _Hasher()  # element digests are standalone (sets hold leaves)
        _walk(sub, item)
        parts.append(sub.h.digest())
    hasher.tag("set")
    hasher.raw(struct.pack("<Q", len(parts)))
    for p in sorted(parts):
        hasher.raw(p)


def _state_of(obj) -> Any:
    getstate = getattr(type(obj), "__getstate__", None)
    state: Any
    if getstate is not None:
        state = getstate(obj)
        spec = SNAPSHOT_SURFACES.get(type(obj))
        if spec and spec["digest_exclude"] and isinstance(state, dict):
            state = {
                k: v for k, v in state.items() if k not in spec["digest_exclude"]
            }
        return state
    state: Any = getattr(obj, "__dict__", None)
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        slot_state = {
            name: getattr(obj, name)
            for name in _all_slots(type(obj))
            if hasattr(obj, name)
        }
        return (state, slot_state)
    return state


def _all_slots(cls) -> list[str]:
    names: list[str] = []
    for klass in reversed(cls.__mro__):
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for s in slots:
            if s not in ("__dict__", "__weakref__"):
                names.append(s)
    return names


def _walk_code(hasher: _Hasher, code: types.CodeType) -> None:
    """Hash a code object structurally.

    ``marshal.dumps`` is *not* byte-stable across a dumps/loads round
    trip (string-interning back references change), so a restored
    closure would digest differently from the original if we hashed
    marshal output.  Hashing the behavioural fields directly is stable.
    """
    hasher.tag("code")
    hasher.raw(code.co_name.encode())
    hasher.h.update(
        struct.pack(
            "<6q",
            code.co_argcount,
            code.co_posonlyargcount,
            code.co_kwonlyargcount,
            code.co_nlocals,
            code.co_stacksize,
            code.co_flags,
        )
    )
    hasher.raw(code.co_code)
    for names in (code.co_names, code.co_varnames, code.co_freevars, code.co_cellvars):
        hasher.raw("\x00".join(names).encode())
    hasher.h.update(struct.pack("<Q", len(code.co_consts)))
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _walk_code(hasher, const)
        else:
            _walk(hasher, const)


def _walk(hasher: _Hasher, obj) -> None:
    h = hasher.h
    if obj is None:
        hasher.tag("N")
        return
    if obj is True:
        hasher.tag("T")
        return
    if obj is False:
        hasher.tag("F")
        return
    t = type(obj)
    if t is float:
        hasher.tag("f")
        h.update(struct.pack("<d", obj))
        return
    if t is int:
        hasher.tag("i")
        hasher.raw(obj.to_bytes((obj.bit_length() + 8) // 8 + 1, "little", signed=True))
        return
    if t is str:
        hasher.tag("s")
        hasher.raw(obj.encode("utf-8", "surrogatepass"))
        return
    if t is bytes:
        hasher.tag("b")
        hasher.raw(obj)
        return
    if t is complex:
        hasher.tag("c")
        h.update(struct.pack("<dd", obj.real, obj.imag))
        return

    # Containers and objects: cycle/aliasing handling first.
    oid = id(obj)
    label = hasher.memo.get(oid)
    if label is not None:
        hasher.tag("@")
        h.update(struct.pack("<Q", label))
        return
    hasher.memo[oid] = len(hasher.memo)
    hasher.keepalive.append(obj)

    if t in (list, tuple) or t is deque:
        hasher.tag("L" if t is list else ("D" if t is deque else "U"))
        h.update(struct.pack("<Q", len(obj)))
        for item in obj:
            _walk(hasher, item)
        return
    if t is dict:
        hasher.tag("M")
        h.update(struct.pack("<Q", len(obj)))
        for k, v in obj.items():
            _walk(hasher, k)
            _walk(hasher, v)
        return
    if t in (set, frozenset):
        _digest_set(hasher, obj)
        return
    if isinstance(obj, np.ndarray):
        hasher.tag("A")
        hasher.raw(str(obj.dtype).encode())
        hasher.raw(struct.pack(f"<{obj.ndim + 1}Q", obj.ndim, *obj.shape))
        hasher.raw(np.ascontiguousarray(obj).tobytes())
        return
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        hasher.tag("a")
        hasher.raw(str(obj.dtype).encode())
        hasher.raw(obj.tobytes())
        return
    if isinstance(obj, enum.Enum):
        hasher.tag("E")
        hasher.raw(type(obj).__qualname__.encode())
        hasher.raw(obj.name.encode())
        return
    if isinstance(obj, types.FunctionType):
        hasher.tag("fn")
        hasher.raw((obj.__module__ or "").encode())
        hasher.raw(obj.__qualname__.encode())
        _walk_code(hasher, obj.__code__)
        _walk(hasher, obj.__defaults__)
        cells = obj.__closure__ or ()
        h.update(struct.pack("<Q", len(cells)))
        for cell in cells:
            try:
                _walk(hasher, cell.cell_contents)
            except ValueError:
                hasher.tag("<empty-cell>")
        return
    if isinstance(obj, types.MethodType):
        hasher.tag("m")
        hasher.raw(obj.__func__.__qualname__.encode())
        _walk(hasher, obj.__self__)
        return
    if isinstance(obj, types.BuiltinFunctionType):
        hasher.tag("bf")
        hasher.raw((getattr(obj, "__module__", "") or "").encode())
        hasher.raw(obj.__qualname__.encode())
        return
    if isinstance(obj, type):
        hasher.tag("K")
        hasher.raw(obj.__module__.encode())
        hasher.raw(obj.__qualname__.encode())
        return

    # Generic object: class identity + snapshot-surface state.
    hasher.tag("O")
    hasher.raw(type(obj).__module__.encode())
    hasher.raw(type(obj).__qualname__.encode())
    state = _state_of(obj)
    if state is None and not hasattr(obj, "__dict__"):
        # Stateless-looking C objects (e.g. ``itertools.count``) carry
        # their state in ``__reduce__`` arguments instead.
        try:
            state = obj.__reduce_ex__(2)[1:3]
        except Exception:
            state = None
    _walk(hasher, state)


def state_digest(obj: Any) -> str:
    """Hex SHA-256 of ``obj``'s snapshot surface (see module docstring)."""
    hasher = _Hasher()
    _walk(hasher, obj)
    return hasher.h.hexdigest()
