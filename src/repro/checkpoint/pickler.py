"""Closure-capable pickling: the serializer under every snapshot.

Simulated workloads are built from closures — ``constant_rates`` returns
a lambda, barrier phases capture their generation in a cell, fault plans
carry ``when`` predicates.  Stdlib :mod:`pickle` refuses all of these
("Can't pickle local object"), and the container image has neither
``dill`` nor ``cloudpickle``.  :class:`SnapshotPickler` closes the gap
with ``reducer_override``:

* module-level functions still pickle by reference (the default);
* local functions / lambdas are serialized *by value*: marshalled code
  object, defaults, closure cells, and the globals the code actually
  references (computed from ``co_names``, recursively through nested
  code constants);
* closure cells are first-class picklables, so two closures sharing a
  cell (e.g. all waiters of one barrier generation) share it again after
  restore — identity is preserved through the pickle memo.

On restore, a by-value function prefers its original module's live
``__dict__`` as globals (so it keeps seeing module state); if the module
is not importable — or was ``__main__``, which is a *different* module
in the restoring process — the globals captured at save time are used
instead.

Determinism note: ``marshal`` output is stable for a given CPython
version, which is also the natural compatibility boundary of a snapshot
(the header records the Python version; see :mod:`repro.checkpoint.snapshot`).
"""

from __future__ import annotations

import builtins
import importlib
import io
import marshal
import pickle
import sys
import types
from typing import Any, Optional

#: Modules whose functions must never be captured by value (the
#: reconstructors below live here; capturing them would recurse).
_SELF_MODULE = __name__


class SnapshotPicklingError(TypeError):
    """An object inside the snapshot surface cannot be serialized."""


def _is_importable(obj: types.FunctionType) -> bool:
    """Whether the default save-by-reference would round-trip ``obj``."""
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname or "<lambda>" in qualname:
        return False
    mod = sys.modules.get(module)
    if mod is None:
        return False
    target: Any = mod
    for part in qualname.split("."):
        target = getattr(target, part, None)
        if target is None:
            return False
    return target is obj


def _referenced_names(code: types.CodeType) -> set[str]:
    """Global names referenced by ``code``, including nested code consts."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _referenced_names(const)
    return names


def _capture_globals(fn: types.FunctionType) -> dict:
    """The subset of ``fn.__globals__`` its code can actually touch.

    Modules are captured as :class:`_ModuleRef` markers (re-imported on
    restore) so a function may reference ``np`` without dragging the
    whole module object through the pickle stream.
    """
    captured: dict = {}
    fn_globals = fn.__globals__
    for name in _referenced_names(fn.__code__):
        if name not in fn_globals:
            continue
        value = fn_globals[name]
        if isinstance(value, types.ModuleType):
            captured[name] = _ModuleRef(value.__name__)
        else:
            captured[name] = value
    return captured


class _ModuleRef:
    """Save-time marker for a module-valued global."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __reduce__(self) -> tuple:
        return (_ModuleRef, (self.name,))


# -- reconstructors (module-level, so they pickle by reference) -------------


def _rebuild_cell(contents: object) -> types.CellType:
    return types.CellType(contents)


def _rebuild_empty_cell() -> types.CellType:
    return types.CellType()


def _resolve_globals(module: Optional[str], captured: dict) -> dict:
    if module and module not in ("__main__", "__mp_main__"):
        try:
            mod = sys.modules.get(module) or importlib.import_module(module)
            return mod.__dict__
        except ImportError:
            pass
    g = {"__builtins__": builtins}
    for name, value in captured.items():
        if isinstance(value, _ModuleRef):
            value = importlib.import_module(value.name)
        g[name] = value
    g["__name__"] = module or "<snapshot>"
    return g


def _rebuild_function(
    code_bytes: bytes,
    module: Optional[str],
    qualname: str,
    defaults,
    kwdefaults,
    closure,
    captured: dict,
):
    code = marshal.loads(code_bytes)
    fn = types.FunctionType(
        code,
        _resolve_globals(module, captured),
        code.co_name,
        defaults,
        closure,
    )
    fn.__qualname__ = qualname
    fn.__module__ = module
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    return fn


class SnapshotPickler(pickle.Pickler):
    """``pickle.Pickler`` that serializes local functions by value."""

    def reducer_override(self, obj: object):
        if isinstance(obj, types.CellType):
            try:
                return (_rebuild_cell, (obj.cell_contents,))
            except ValueError:  # empty cell
                return (_rebuild_empty_cell, ())
        if isinstance(obj, types.FunctionType):
            if _is_importable(obj) or obj.__module__ == _SELF_MODULE:
                return NotImplemented  # default save-by-reference
            try:
                code_bytes = marshal.dumps(obj.__code__)
            except ValueError as exc:  # pragma: no cover - exotic code objects
                raise SnapshotPicklingError(
                    f"cannot marshal code of {obj.__qualname__!r}: {exc}"
                ) from exc
            return (
                _rebuild_function,
                (
                    code_bytes,
                    obj.__module__,
                    obj.__qualname__,
                    obj.__defaults__,
                    obj.__kwdefaults__,
                    obj.__closure__,
                    _capture_globals(obj),
                ),
            )
        return NotImplemented


def dumps(obj: Any, protocol: int = pickle.DEFAULT_PROTOCOL) -> bytes:
    buf = io.BytesIO()
    try:
        SnapshotPickler(buf, protocol=protocol).dump(obj)
    except SnapshotPicklingError:
        raise
    except (TypeError, pickle.PicklingError) as exc:
        # One typed error for "this graph is not snapshot-safe", whatever
        # layer of pickle tripped over it — callers (System.save, the
        # supervisor worker) report it as a permanent failure.
        raise SnapshotPicklingError(str(exc)) from exc
    return buf.getvalue()


def loads(data: bytes) -> Any:
    return pickle.loads(data)
