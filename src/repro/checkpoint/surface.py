"""Snapshot-surface declarations.

Every stateful layer of the stack declares what a snapshot must carry
and what is merely a rebuildable cache, with the
:func:`snapshot_surface` class decorator:

* ``caches`` — attributes dropped at snapshot time and reconstructed on
  restore (identity-keyed memo dicts, generation-tagged dispatch
  entries, live tick recorders).  Dropping them must be *semantically
  free*: the restored object rebuilds them lazily and produces
  bit-identical results.
* ``rebuild`` — optional method name invoked after restore to
  re-initialize the dropped caches (defaults to empty containers via
  ``cache_factories``).

The decorator installs ``__getstate__``/``__setstate__`` accordingly and
records the declaration in :data:`SNAPSHOT_SURFACES`, the registry the
architecture docs and the surface test render so the snapshot contract
stays visible in one place.

Process-global counters that must survive a restore bit-identically
(e.g. the kernel perf event-id allocator) register themselves via
:func:`register_global_counter`; the snapshot envelope saves and
restores them alongside the object graph.
"""

from __future__ import annotations

from typing import Callable, Optional

#: class -> declaration, for docs and the surface self-test.
SNAPSHOT_SURFACES: dict[type, dict] = {}

#: name -> (getter, setter) for process-global snapshot state.
GLOBAL_COUNTERS: dict[str, tuple[Callable[[], int], Callable[[int], None]]] = {}


def register_global_counter(
    name: str, getter: Callable[[], int], setter: Callable[[int], None]
) -> None:
    """Expose a module-global counter to the snapshot envelope."""
    GLOBAL_COUNTERS[name] = (getter, setter)


def global_counter_state() -> dict[str, int]:
    """Current values of all registered global counters."""
    return {name: get() for name, (get, _set) in GLOBAL_COUNTERS.items()}


def set_global_counter_state(state: dict[str, int]) -> None:
    """Rewind global counters (e.g. to compare two runs built in one
    process: capture before run A, rewind before run B, and both hand
    out identical perf event ids)."""
    for name, value in state.items():
        entry = GLOBAL_COUNTERS.get(name)
        if entry is not None:
            entry[1](value)


def snapshot_surface(
    state: tuple[str, ...] = (),
    caches: tuple[str, ...] = (),
    rebuild: Optional[str] = None,
    digest_exclude: tuple[str, ...] = (),
    note: str = "",
):
    """Class decorator declaring a layer's snapshot surface.

    ``state`` is the complete list of serialized instance attributes —
    the static contract.  ``repro.analysis`` (rule ``SURFACE-DECL``)
    diffs it against every attribute the class body actually assigns,
    so a new mutable attribute cannot join (or silently miss) the
    pickle payload without this declaration being reviewed; the runtime
    registry test covers the complementary direction, asserting every
    stateful layer is decorated at all.

    ``digest_exclude`` names attributes that *are* serialized (they must
    survive a restore — e.g. which engine path to use) but are
    configuration rather than machine state, so ``state_digest`` ignores
    them: a fast-path and a slow-path run of the same workload digest
    equal.
    """

    def decorate(cls: type) -> type:
        SNAPSHOT_SURFACES[cls] = {
            "state": tuple(state),
            "caches": tuple(caches),
            "rebuild": rebuild,
            "digest_exclude": tuple(digest_exclude),
            "note": note,
        }
        if not caches:
            return cls  # pure declaration: default pickling already right

        def __getstate__(self) -> dict:
            state = dict(self.__dict__)
            for name in caches:
                state.pop(name, None)
            return state

        def __setstate__(self, state: dict) -> None:
            self.__dict__.update(state)
            if rebuild is not None:
                getattr(self, rebuild)()

        cls.__getstate__ = __getstate__  # type: ignore[attr-defined]
        cls.__setstate__ = __setstate__  # type: ignore[attr-defined]
        return cls

    return decorate
