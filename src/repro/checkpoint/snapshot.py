"""Versioned, digest-stamped snapshot files.

Layout of a ``.ckpt`` file::

    REPRO-SNAPSHOT\\n               magic
    {header json}\\n                 version, python tag, payload digest,
                                    global counters, caller metadata
    <zlib-compressed payload>       SnapshotPickler bytes

The header is plain JSON on the second line so ``tools``/humans can
inspect a snapshot (``python -m repro.checkpoint describe x.ckpt``)
without unpickling anything.  The payload SHA-256 in the header is
verified on load — a truncated or bit-rotted snapshot fails loudly with
:class:`SnapshotIntegrityError` instead of resurrecting a corrupt
machine.  Writes are atomic (temp file + ``os.replace``) so a crash
mid-checkpoint can never destroy the previous checkpoint.

Compatibility boundary: snapshots embed marshalled code objects for
workload closures, so they are tied to the CPython feature version that
wrote them; the header records it and a mismatch raises
:class:`SnapshotVersionError` (permanent, not retryable).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import zlib
from typing import Any, Optional

from repro.checkpoint import pickler
from repro.checkpoint.digest import DIGEST_ALGO
from repro.checkpoint.surface import GLOBAL_COUNTERS

MAGIC = b"REPRO-SNAPSHOT\n"
SNAPSHOT_VERSION = 1


class SnapshotError(RuntimeError):
    """Base class for snapshot load/save failures."""


class SnapshotVersionError(SnapshotError):
    """Snapshot written by an incompatible format or Python version."""


class SnapshotIntegrityError(SnapshotError):
    """Snapshot payload does not match its header digest."""


def _python_tag() -> str:
    return f"cpython-{sys.version_info.major}.{sys.version_info.minor}"


def save_object(obj: Any, path: str, meta: Optional[dict] = None) -> dict:
    """Serialize ``obj`` (and registered global counters) to ``path``.

    Returns the written header dict.  The write is atomic.
    """
    payload = zlib.compress(pickler.dumps(obj), level=6)
    header = {
        "version": SNAPSHOT_VERSION,
        "python": _python_tag(),
        "digest_algo": DIGEST_ALGO,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "globals": {name: get() for name, (get, _set) in GLOBAL_COUNTERS.items()},
        "meta": meta or {},
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(MAGIC)
            fh.write(json.dumps(header, sort_keys=True).encode() + b"\n")
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return header


def read_header(path: str) -> dict:
    """Parse and validate a snapshot's header without loading the payload."""
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise SnapshotError(f"{path}: not a repro snapshot (bad magic)")
        header_line = fh.readline()
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{path}: corrupt snapshot header") from exc
    if header.get("version") != SNAPSHOT_VERSION:
        raise SnapshotVersionError(
            f"{path}: snapshot version {header.get('version')} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    if header.get("python") != _python_tag():
        raise SnapshotVersionError(
            f"{path}: written by {header.get('python')}, "
            f"this interpreter is {_python_tag()} "
            "(snapshots embed bytecode and do not cross feature versions)"
        )
    return header


def load_object(path: str, restore_globals: bool = True) -> Any:
    """Load a snapshot, verifying integrity and version.

    ``restore_globals=True`` (the default) rewinds registered process-
    global counters (e.g. the perf event-id allocator) to their value at
    save time — required for bit-identical continuation, but note it
    affects every `System` in this process, so sweeps restore one run
    per worker process.
    """
    header = read_header(path)
    with open(path, "rb") as fh:
        fh.read(len(MAGIC))
        fh.readline()
        payload = fh.read()
    if hashlib.sha256(payload).hexdigest() != header["payload_sha256"]:
        raise SnapshotIntegrityError(
            f"{path}: payload digest mismatch (truncated or corrupt snapshot)"
        )
    obj = pickler.loads(zlib.decompress(payload))
    if restore_globals:
        for name, value in header.get("globals", {}).items():
            entry = GLOBAL_COUNTERS.get(name)
            if entry is not None:
                entry[1](value)
    return obj
