"""libpfm4 reproduction.

libpfm4's job in the PAPI stack is (1) knowing which PMUs are present,
(2) translating event-name strings like ``adl_glc::INST_RETIRED:ANY``
into the ``perf_event_attr`` the kernel expects, and (3) publishing the
event lists PAPI re-exports.  This package reproduces that interface,
including the hybrid-support history the paper recounts: Intel
Alder/Raptor Lake P+E detection, and the ARM big.LITTLE PMU-scanning bug
that (without the authors' patch) only detects the boot CPU's PMU.
"""

from repro.pfmlib.events import PfmEvent, PfmPmuTable
from repro.pfmlib.library import EventInfo, Pfmlib, PfmError
from repro.pfmlib.parser import ParsedEvent, parse_event_string

__all__ = [
    "PfmEvent",
    "PfmPmuTable",
    "EventInfo",
    "Pfmlib",
    "PfmError",
    "ParsedEvent",
    "parse_event_string",
]
