"""Event-name string parsing.

libpfm4 event strings look like ``pmu::EVENT:ATTR1:ATTR2``; the PMU
qualifier and attributes are optional (``INST_RETIRED`` alone searches
the default PMUs).  Attribute case is normalized to upper-case, matching
libpfm4's case-insensitive lookup.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


@dataclass(frozen=True)
class ParsedEvent:
    pmu: str | None
    event: str
    attrs: tuple[str, ...] = field(default_factory=tuple)

    def canonical(self) -> str:
        parts = [self.event, *self.attrs]
        body = ":".join(parts)
        return f"{self.pmu}::{body}" if self.pmu else body


def parse_event_string(text: str) -> ParsedEvent:
    """Parse ``pmu::EVENT:ATTRS`` syntax; raises ValueError on malformed input."""
    text = text.strip()
    if not text:
        raise ValueError("empty event string")
    pmu: str | None = None
    body = text
    if "::" in text:
        pmu_part, body = text.split("::", 1)
        pmu = pmu_part.strip().lower()
        if not pmu or not _NAME_RE.match(pmu):
            raise ValueError(f"malformed PMU qualifier in {text!r}")
    if not body:
        raise ValueError(f"missing event name in {text!r}")
    pieces = [p.strip() for p in body.split(":")]
    if any(not p for p in pieces):
        raise ValueError(f"empty attribute in {text!r}")
    event, *attrs = pieces
    if not _NAME_RE.match(event):
        raise ValueError(f"malformed event name {event!r}")
    for a in attrs:
        if not _NAME_RE.match(a):
            raise ValueError(f"malformed attribute {a!r}")
    return ParsedEvent(pmu=pmu, event=event.upper(), attrs=tuple(a.upper() for a in attrs))
