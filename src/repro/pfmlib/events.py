"""PMU event-table data structures."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PfmEvent:
    """One named event with its unit-mask variants.

    ``umasks`` maps attribute names (e.g. ``ANY``, ``MISS``) to the raw
    config codes the kernel decodes.  ``default_umask`` names the variant
    selected when the event string carries no attribute.
    """

    name: str
    desc: str
    umasks: dict[str, int] = field(default_factory=dict)
    default_umask: str | None = None

    def __post_init__(self) -> None:
        if not self.umasks:
            raise ValueError(f"{self.name}: an event needs at least one umask")
        if self.default_umask is None:
            object.__setattr__(self, "default_umask", next(iter(self.umasks)))
        if self.default_umask not in self.umasks:
            raise ValueError(
                f"{self.name}: default umask {self.default_umask!r} not in umasks"
            )

    def code(self, umask: str | None = None) -> int:
        key = umask if umask is not None else self.default_umask
        try:
            return self.umasks[key]
        except KeyError:
            raise KeyError(
                f"event {self.name} has no attribute {umask!r} "
                f"(has {sorted(self.umasks)})"
            ) from None


@dataclass(frozen=True)
class PfmPmuTable:
    """One PMU's event table.

    ``name`` is the libpfm4 PMU name (``adl_glc``); ``linux_name`` the
    sysfs directory whose ``type`` file gives the kernel type number
    (``cpu_core``).  ``is_core`` marks CPU core PMUs — the "default PMU"
    candidates unqualified event names search.
    """

    name: str
    desc: str
    linux_name: str
    is_core: bool
    events: dict[str, PfmEvent]

    def event(self, name: str) -> PfmEvent:
        try:
            return self.events[name.upper()]
        except KeyError:
            raise KeyError(f"PMU {self.name} has no event {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.upper() in self.events
