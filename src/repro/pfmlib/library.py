"""The libpfm4 interface: PMU detection and OS event encoding.

Detection reproduces the support history §IV-C describes:

* Intel hybrid (Alder/Raptor Lake): both the ``adl_glc`` and ``adl_grt``
  tables activate — this is the post-fix upstream behaviour the authors
  obtained after requesting hybrid support.
* ARM big.LITTLE: upstream libpfm4 scans only the boot CPU's PMU, so on
  an RK3399 it would see just the Cortex-A53 cluster.  The authors'
  not-yet-merged patches are modelled by two constructor flags:
  ``arm_multi_pmu_patch`` (scan every core type) and ``arm_a72_patch``
  (the Cortex-A72 table itself, also unmerged at the time).

Encoding resolves the kernel PMU *type* the way userspace must: reading
``/sys/devices/<name>/type``.  ARM firmware naming differences
(devicetree vs ACPI) are handled by falling back to a perf-tool-style
scan of the PMU ``cpus`` files when the canonical name is absent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.kernel.perf.attr import PerfEventAttr
from repro.pfmlib.events import PfmEvent, PfmPmuTable
from repro.pfmlib.parser import ParsedEvent, parse_event_string
from repro.pfmlib.tables import ALL_TABLES, RAPL, UNCORE_LLC
from repro.system import System


class PfmError(Exception):
    """libpfm4-style failure (unknown event, inactive PMU...)."""


@dataclass(frozen=True)
class EventInfo:
    """A fully resolved event: table entry + kernel identity."""

    pmu: PfmPmuTable
    linux_name: str
    event: PfmEvent
    umask: str

    @property
    def fullname(self) -> str:
        return f"{self.pmu.name}::{self.event.name}:{self.umask}"

    @property
    def config(self) -> int:
        return self.event.code(self.umask)


class Pfmlib:
    """One initialized libpfm4 instance bound to a system."""

    def __init__(
        self,
        system: System,
        arm_multi_pmu_patch: bool = True,
        arm_a72_patch: bool = True,
    ):
        self.system = system
        self.arm_multi_pmu_patch = arm_multi_pmu_patch
        self.arm_a72_patch = arm_a72_patch
        # pfm table name -> linux PMU directory on *this* machine.
        self._linux_names: dict[str, str] = {}
        self.active: list[PfmPmuTable] = []
        self._detect()

    # -- detection ----------------------------------------------------------

    def _detect(self) -> None:
        topo = self.system.topology
        core_types = topo.core_types
        is_arm = any(ct.vendor == "arm" for ct in core_types)
        considered = list(core_types)
        if is_arm and not self.arm_multi_pmu_patch:
            # Upstream bug: the ARM PMU scan finds only the boot CPU's type.
            boot_type = topo.core(0).ctype
            considered = [boot_type]
        for ct in considered:
            if ct.pfm_pmu == "arm_a72" and not self.arm_a72_patch:
                # The Cortex-A72 table itself was a not-yet-merged patch.
                continue
            table = ALL_TABLES.get(ct.pfm_pmu)
            if table is None:
                continue
            if table not in self.active:
                self.active.append(table)
                self._linux_names[table.name] = ct.pmu_name
        self.active.append(UNCORE_LLC)
        self._linux_names[UNCORE_LLC.name] = UNCORE_LLC.linux_name
        if self.system.spec.has_rapl:
            self.active.append(RAPL)
            self._linux_names[RAPL.name] = RAPL.linux_name

    def default_pmus(self) -> list[PfmPmuTable]:
        """The "core" PMUs unqualified event names search, in order.

        On a hybrid machine there is more than one — the condition PAPI
        7.1 mishandled (§IV-D).
        """
        return [t for t in self.active if t.is_core]

    def pmu_by_name(self, name: str) -> PfmPmuTable:
        for t in self.active:
            if t.name == name.lower():
                return t
        if name.lower() in ALL_TABLES:
            raise PfmError(f"PMU {name!r} is known but not active on this system")
        raise PfmError(f"unknown PMU {name!r}")

    def linux_name(self, table: PfmPmuTable) -> str:
        return self._linux_names.get(table.name, table.linux_name)

    # -- event lookup ---------------------------------------------------------

    def _resolve_in(self, table: PfmPmuTable, parsed: ParsedEvent) -> EventInfo:
        event = table.event(parsed.event)  # KeyError on miss
        if len(parsed.attrs) > 1:
            raise PfmError(
                f"{parsed.canonical()}: multiple unit masks are not supported"
            )
        umask = parsed.attrs[0] if parsed.attrs else event.default_umask
        if umask not in event.umasks:
            raise PfmError(
                f"event {table.name}::{event.name} has no attribute {umask!r}"
            )
        return EventInfo(
            pmu=table,
            linux_name=self.linux_name(table),
            event=event,
            umask=umask,
        )

    def find_event(self, text: str) -> EventInfo:
        """First match, libpfm4 style: qualified PMU or default-PMU order."""
        matches = self.find_all_matches(text)
        return matches[0]

    def find_all_matches(self, text: str) -> list[EventInfo]:
        """Every active PMU in which the event name resolves.

        For a qualified name this is zero or one PMU; for an unqualified
        name on a hybrid machine it is typically one entry per core type —
        the raw material for PAPI's derived multi-PMU presets.
        """
        parsed = parse_event_string(text)
        if parsed.pmu is not None:
            table = self.pmu_by_name(parsed.pmu)
            try:
                return [self._resolve_in(table, parsed)]
            except KeyError as exc:
                raise PfmError(str(exc)) from None
        matches: list[EventInfo] = []
        for table in self.default_pmus():
            try:
                matches.append(self._resolve_in(table, parsed))
            except KeyError:
                continue
        if not matches:
            raise PfmError(f"event {text!r} not found in any active PMU")
        return matches

    # -- encoding ---------------------------------------------------------------

    def kernel_pmu_type(self, info: EventInfo) -> int:
        """Resolve the kernel type number via sysfs, perf-tool style."""
        sysfs = self.system.sysfs
        path = f"/sys/devices/{info.linux_name}/type"
        try:
            return int(sysfs.read(path))
        except FileNotFoundError:
            pass
        # Firmware gave the PMU another name (devicetree vs ACPI): scan
        # /sys/devices/*/cpus and match the CPU set of the core type this
        # pfm table describes, like perf does.
        want: set[int] = set()
        for ct in self.system.topology.core_types:
            if ct.pfm_pmu == info.pmu.name:
                want = set(self.system.topology.cpus_of_type(ct.name))
                break
        if want:
            from repro.kernel.sched.affinity import parse_cpu_list

            for name in sysfs.listdir("/sys/devices"):
                cpus_path = f"/sys/devices/{name}/cpus"
                if not sysfs.exists(cpus_path):
                    continue
                if parse_cpu_list(sysfs.read(cpus_path)) == want:
                    return int(sysfs.read(f"/sys/devices/{name}/type"))
        raise PfmError(
            f"cannot resolve kernel PMU for {info.fullname} "
            f"(no /sys/devices/{info.linux_name})"
        )

    def get_os_event_encoding(self, text: str) -> tuple[PerfEventAttr, EventInfo]:
        """The libpfm4 call PAPI uses: event string -> perf_event_attr."""
        info = self.find_event(text)
        attr = PerfEventAttr(
            type=self.kernel_pmu_type(info),
            config=info.config,
            name=info.fullname,
        )
        return attr, info

    # -- enumeration ---------------------------------------------------------

    def list_events(self, pmu: Optional[str] = None) -> Iterator[str]:
        tables = [self.pmu_by_name(pmu)] if pmu else self.active
        for table in tables:
            for event in table.events.values():
                for umask in event.umasks:
                    yield f"{table.name}::{event.name}:{umask}"
