"""The event tables, one per supported PMU.

Codes agree with :mod:`repro.hw.eventcodes` — in the real stack both the
kernel and libpfm4 transcribe the same vendor manuals; here they share
one source of truth and these tables give them libpfm4's naming.

Note the deliberate asymmetries the paper leans on:

* ``TOPDOWN:SLOTS`` exists only in the Golden Cove (P-core) table;
* the Gracemont table carries the same ``INST_RETIRED:ANY`` spelling that
  originally had bugs in upstream libpfm4 (fixed after the authors'
  report — we implement the fixed behaviour);
* ARM Cortex-A72 support needed a not-yet-merged patch; the
  :class:`~repro.pfmlib.library.Pfmlib` constructor models its absence.
"""

from __future__ import annotations

from repro.pfmlib.events import PfmEvent, PfmPmuTable


def _intel_common(with_topdown: bool, stalls_code: int) -> dict[str, PfmEvent]:
    events = {
        "INST_RETIRED": PfmEvent(
            "INST_RETIRED",
            "Number of instructions retired",
            {"ANY": 0x00C0, "ANY_P": 0x00C0},
            default_umask="ANY",
        ),
        "CPU_CLK_UNHALTED": PfmEvent(
            "CPU_CLK_UNHALTED",
            "Core cycles when the thread is not halted",
            {"THREAD": 0x003C, "REF_TSC": 0x013C},
            default_umask="THREAD",
        ),
        "LONGEST_LAT_CACHE": PfmEvent(
            "LONGEST_LAT_CACHE",
            "Last-level cache references and misses",
            {"REFERENCE": 0x4F2E, "MISS": 0x412E},
            default_umask="REFERENCE",
        ),
        "BR_INST_RETIRED": PfmEvent(
            "BR_INST_RETIRED",
            "Branch instructions retired",
            {"ALL_BRANCHES": 0x00C4},
        ),
        "BR_MISP_RETIRED": PfmEvent(
            "BR_MISP_RETIRED",
            "Mispredicted branch instructions retired",
            {"ALL_BRANCHES": 0x00C5},
        ),
        "FP_ARITH_INST_RETIRED": PfmEvent(
            "FP_ARITH_INST_RETIRED",
            "Floating-point arithmetic instructions retired",
            {"ALL": 0x01C7},
        ),
        "CYCLE_ACTIVITY": PfmEvent(
            "CYCLE_ACTIVITY",
            "Cycles with pipeline stalls",
            {"STALLS_TOTAL": stalls_code},
        ),
        "L2_RQSTS": PfmEvent(
            "L2_RQSTS",
            "L2 cache requests",
            {"REFERENCES": 0x1F24, "MISS": 0x3F24},
            default_umask="REFERENCES",
        ),
    }
    if with_topdown:
        events["TOPDOWN"] = PfmEvent(
            "TOPDOWN",
            "Top-down microarchitecture analysis slots (P-core only)",
            {"SLOTS": 0x0400},
        )
    return events


ADL_GLC = PfmPmuTable(
    name="adl_glc",
    desc="Intel Alder Lake GoldenCove (P-core)",
    linux_name="cpu_core",
    is_core=True,
    events=_intel_common(with_topdown=True, stalls_code=0x01A3),
)

ADL_GRT = PfmPmuTable(
    name="adl_grt",
    desc="Intel Alder Lake Gracemont (E-core)",
    linux_name="cpu_atom",
    is_core=True,
    events=_intel_common(with_topdown=False, stalls_code=0x0134),
)

SKX = PfmPmuTable(
    name="skx",
    desc="Intel Skylake-SP (homogeneous control)",
    linux_name="cpu",
    is_core=True,
    events=_intel_common(with_topdown=False, stalls_code=0x01A3),
)


def _arm_common() -> dict[str, PfmEvent]:
    return {
        "INST_RETIRED": PfmEvent(
            "INST_RETIRED", "Instructions architecturally executed", {"ANY": 0x08}
        ),
        "CPU_CYCLES": PfmEvent("CPU_CYCLES", "Processor cycles", {"ANY": 0x11}),
        "BR_MIS_PRED": PfmEvent(
            "BR_MIS_PRED", "Mispredicted branches", {"ANY": 0x10}
        ),
        "BR_PRED": PfmEvent("BR_PRED", "Predictable branches", {"ANY": 0x12}),
        "L2D_CACHE": PfmEvent("L2D_CACHE", "L2 data cache accesses", {"ANY": 0x16}),
        "L2D_CACHE_REFILL": PfmEvent(
            "L2D_CACHE_REFILL", "L2 data cache refills", {"ANY": 0x17}
        ),
        "L3D_CACHE": PfmEvent("L3D_CACHE", "L3 data cache accesses", {"ANY": 0x2A}),
        "L3D_CACHE_REFILL": PfmEvent(
            "L3D_CACHE_REFILL", "L3 data cache refills", {"ANY": 0x2B}
        ),
        "ASE_SPEC": PfmEvent(
            "ASE_SPEC", "Advanced SIMD operations speculatively executed", {"ANY": 0x73}
        ),
        "STALL_BACKEND": PfmEvent(
            "STALL_BACKEND", "Cycles stalled on backend resources", {"ANY": 0x24}
        ),
        "BUS_CYCLES": PfmEvent("BUS_CYCLES", "Bus cycles", {"ANY": 0x1D}),
    }


def _arm_table(pfm_name: str, desc: str, linux_name: str) -> PfmPmuTable:
    return PfmPmuTable(
        name=pfm_name,
        desc=desc,
        linux_name=linux_name,
        is_core=True,
        events=_arm_common(),
    )


ARM_A53 = _arm_table("arm_a53", "ARM Cortex-A53", "armv8_cortex_a53")
ARM_A55 = _arm_table("arm_a55", "ARM Cortex-A55", "armv8_cortex_a55")
ARM_A72 = _arm_table("arm_a72", "ARM Cortex-A72", "armv8_cortex_a72")
ARM_A76 = _arm_table("arm_a76", "ARM Cortex-A76", "armv8_cortex_a76")
ARM_X1 = _arm_table("arm_x1", "ARM Cortex-X1", "armv8_cortex_x1")

RAPL = PfmPmuTable(
    name="rapl",
    desc="Intel RAPL energy counters",
    linux_name="power",
    is_core=False,
    events={
        "RAPL_ENERGY_PKG": PfmEvent(
            "RAPL_ENERGY_PKG", "Package energy consumed", {"ANY": 0x02}
        ),
        "RAPL_ENERGY_CORES": PfmEvent(
            "RAPL_ENERGY_CORES", "Core-domain energy consumed", {"ANY": 0x01}
        ),
        "RAPL_ENERGY_DRAM": PfmEvent(
            "RAPL_ENERGY_DRAM", "DRAM energy consumed", {"ANY": 0x03}
        ),
    },
)

UNCORE_LLC = PfmPmuTable(
    name="uncore_llc",
    desc="Package last-level-cache uncore PMU",
    linux_name="uncore_llc",
    is_core=False,
    events={
        "LLC_LOOKUPS": PfmEvent("LLC_LOOKUPS", "LLC lookups, all cores", {"ANY": 0x01}),
        "LLC_MISSES": PfmEvent("LLC_MISSES", "LLC misses, all cores", {"ANY": 0x02}),
    },
)

#: All tables known to this libpfm4 build, by pfm PMU name.
ALL_TABLES: dict[str, PfmPmuTable] = {
    t.name: t
    for t in (
        ADL_GLC,
        ADL_GRT,
        SKX,
        ARM_A53,
        ARM_A55,
        ARM_A72,
        ARM_A76,
        ARM_X1,
        RAPL,
        UNCORE_LLC,
    )
}
