"""Fault plans: deterministic, seedable schedules of injected failures.

A :class:`FaultPlan` is an ordered set of :class:`Injection`\\ s, each
pairing a fault description with *when* it fires — at a simulated
timestamp (``at_s``) or when a predicate first turns true (``when``).
Plans are pure data; :class:`~repro.faults.injector.FaultInjector`
executes them from the engine tick loop.

Fault kinds cover the hazard classes a PAPI-based monitor must survive
on real deployments (on top of the paper's silent-zero hazard):

* :class:`CpuOffline` / :class:`CpuOnline` — CPU hotplug, honoring Linux
  semantics (cpu0 stays up, events on a dead CPU stop counting, threads
  migrate off);
* :class:`PerfSyscallStorm` — transient ``perf_event_open``/``ioctl``/
  ``read`` failures (EBUSY/EINTR) that bounded retry must absorb;
* :class:`SensorDropout` / :class:`SensorRestore` — RAPL or thermal
  readings going stale or erroring, which PAPI and the monitors degrade
  around instead of raising;
* :class:`CounterStorm` — saturates every open CPU counter at its
  hardware width (the overflow-storm mode).

:meth:`FaultPlan.random` builds a reproducible plan from a seed — the
basis of the chaos-sweep test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.hw.topology import CpuTopology


@dataclass(frozen=True)
class CpuOffline:
    """Hotplug a CPU offline (``echo 0 > cpuN/online``)."""

    cpu: int


@dataclass(frozen=True)
class CpuOnline:
    """Bring a CPU back online."""

    cpu: int


@dataclass(frozen=True)
class PerfSyscallStorm:
    """The next ``count`` matching perf syscalls fail transiently."""

    errno_name: str = "EBUSY"               # "EBUSY" or "EINTR"
    count: int = 3
    ops: tuple[str, ...] = ("perf_event_open", "ioctl")


@dataclass(frozen=True)
class SensorDropout:
    """A sensor starts returning stale values or I/O errors.

    ``sensor`` is ``"rapl"`` (all RAPL domains) or ``"thermal"``.  With a
    ``duration_s`` the matching :class:`SensorRestore` is scheduled
    automatically when the dropout fires.
    """

    sensor: str = "rapl"
    mode: str = "error"                      # "stale" or "error"
    duration_s: Optional[float] = None


@dataclass(frozen=True)
class SensorRestore:
    """Clear a sensor fault (live readings resume)."""

    sensor: str = "rapl"


@dataclass(frozen=True)
class CounterStorm:
    """Saturate every open, enabled CPU perf counter at 2^48 - 1."""


Fault = object  # any of the dataclasses above


@dataclass(frozen=True)
class Injection:
    """One fault plus its trigger: a timestamp or a predicate."""

    fault: Fault
    at_s: Optional[float] = None
    when: Optional[Callable[[], bool]] = None

    def __post_init__(self):
        if (self.at_s is None) == (self.when is None):
            raise ValueError("exactly one of at_s / when must be given")


@dataclass
class FaultPlan:
    """An immutable-by-convention schedule of injections."""

    injections: list[Injection] = field(default_factory=list)

    def at(self, at_s: float, fault: Fault) -> "FaultPlan":
        """Append a timed injection (builder style); returns self."""
        self.injections.append(Injection(fault=fault, at_s=at_s))
        return self

    def when(self, predicate: Callable[[], bool], fault: Fault) -> "FaultPlan":
        """Append a conditional injection; returns self."""
        self.injections.append(Injection(fault=fault, when=predicate))
        return self

    def __len__(self) -> int:
        return len(self.injections)

    @classmethod
    def random(
        cls,
        seed: int,
        topology: CpuTopology,
        start_s: float = 0.0,
        duration_s: float = 1.0,
        n_faults: int = 4,
        kinds: tuple[str, ...] = ("hotplug", "syscalls", "sensor", "storm"),
    ) -> "FaultPlan":
        """A reproducible plan of ``n_faults`` injections in the window.

        Hotplug picks non-boot CPUs only and always schedules the
        matching re-online inside the window, so every random plan is a
        round trip: the machine ends fully online with all sensors live.
        """
        rng = random.Random(seed)
        plan = cls()
        hotplug_candidates = [c.cpu_id for c in topology.cores if c.cpu_id != 0]
        for _ in range(n_faults):
            kind = rng.choice(kinds)
            t = start_s + rng.uniform(0.05, 0.85) * duration_s
            if kind == "hotplug" and hotplug_candidates:
                cpu = rng.choice(hotplug_candidates)
                back = t + rng.uniform(0.05, 0.5) * (start_s + duration_s - t)
                plan.at(t, CpuOffline(cpu))
                plan.at(back, CpuOnline(cpu))
            elif kind == "syscalls":
                plan.at(
                    t,
                    PerfSyscallStorm(
                        errno_name=rng.choice(("EBUSY", "EINTR")),
                        count=rng.randint(1, 4),
                        ops=("perf_event_open", "ioctl", "read"),
                    ),
                )
            elif kind == "sensor":
                plan.at(
                    t,
                    SensorDropout(
                        sensor=rng.choice(("rapl", "thermal")),
                        mode=rng.choice(("stale", "error")),
                        duration_s=rng.uniform(0.05, 0.3) * duration_s,
                    ),
                )
            elif kind == "storm":
                plan.at(t, CounterStorm())
        return plan
