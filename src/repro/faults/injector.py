"""Executes a :class:`~repro.faults.plan.FaultPlan` from the tick loop.

The injector is a fastpath-safe tick hook.  Correctness under the
macro-tick engine hinges on when faults fire relative to replayed ticks:

* **Timed injections** fire in the end-of-tick hook of the first tick
  whose end time reaches ``at_s`` — exactly as on the slow path.  During
  a macro-tick batch hooks do not run, so the injector plants the next
  due time as an analytic guard (``TickRecorder.time_guards``) that
  breaks the batch one tick *before* a timed fault comes due; the engine
  falls back to a full tick and the hook fires the fault there,
  bit-identically to a slow run.  (With conditional injections also
  pending, the opaque batch guard below takes over both duties.)
* **Conditional injections** (``when`` predicates) fire from the batch
  guard itself.  The guard is evaluated between replayed ticks, at
  exactly the machine state the slow path's end-of-tick hook would see,
  so firing there (and breaking the batch) keeps the two paths
  bit-identical.

Any firing also kills a live recorder: a tick that mutates hotplug,
perf, or sensor state is never a steady tick.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import TYPE_CHECKING

from repro.faults.plan import (
    CounterStorm,
    CpuOffline,
    CpuOnline,
    FaultPlan,
    Injection,
    PerfSyscallStorm,
    SensorDropout,
    SensorRestore,
)
from repro.checkpoint.surface import snapshot_surface
from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf.pmu import PmuKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

#: Slack for float time comparisons against tick boundaries.
_EPS = 1e-12


@snapshot_surface(
    state=(
        "system",
        "machine",
        "_timed",
        "_conditional",
        "_seq",
        "fired",
        "skipped",
    ),
    note="Fault-plan progress is state: the timed heap (remaining "
    "injections), conditional injections, fired/skipped logs, and the "
    "itertools.count sequencer (pickles with its position).  The tick "
    "hook is re-registered implicitly because machine.tick_hooks holds "
    "the bound method and pickles with the machine."
)
class FaultInjector:
    """Drives a plan's injections from ``machine.tick_hooks``.

    ``fired`` logs ``(sim_time_s, fault)`` for every applied fault;
    ``skipped`` logs ``(sim_time_s, fault, reason)`` for injections the
    kernel refused (e.g. offlining cpu0), which are dropped rather than
    allowed to crash the run.
    """

    def __init__(self, system: "System", plan: FaultPlan):
        self.system = system
        self.machine = system.machine
        self.fired: list[tuple[float, object]] = []
        self.skipped: list[tuple[float, object, str]] = []
        self._seq = itertools.count()
        self._timed: list[tuple[float, int, object]] = []
        self._conditional: list[Injection] = []
        for inj in plan.injections:
            if inj.at_s is not None:
                heapq.heappush(self._timed, (inj.at_s, next(self._seq), inj.fault))
            else:
                self._conditional.append(inj)
        self.machine.tick_hooks.append(self._on_tick)
        self.machine.mark_hook_fastpath_safe(self._on_tick)

    @property
    def pending(self) -> int:
        return len(self._timed) + len(self._conditional)

    # -- tick integration ----------------------------------------------------

    def _on_tick(self, machine) -> None:
        now = machine.clock.now_s
        fired = False
        while self._timed and self._timed[0][0] <= now + _EPS:
            _, _, fault = heapq.heappop(self._timed)
            self._apply(fault)
            fired = True
        for inj in list(self._conditional):
            if inj.when():
                self._conditional.remove(inj)
                self._apply(inj.fault)
                fired = True
        rec = machine._rec
        if rec is None:
            return
        if fired:
            rec.kill(machine)
        elif self._conditional:
            # Opaque predicates must be polled (and fired) per tick.
            rec.spin_guards.append(self._batch_guard)
        elif self._timed:
            # Only timed faults left: the next due time is analytic, so
            # the engines can solve for the batch-breaking tick instead
            # of polling for it.  The guard semantics are identical to
            # the batch guard's timed check (same epsilon).
            rec.time_guard(self._timed[0][0])

    def _batch_guard(self) -> bool:
        """Break the batch when a fault is due; fire conditionals here."""
        clock = self.machine.clock
        if self._timed and self._timed[0][0] <= clock.now_s + clock.dt_s + _EPS:
            return True
        fired = False
        for inj in list(self._conditional):
            if inj.when():
                self._conditional.remove(inj)
                self._apply(inj.fault)
                fired = True
        return fired

    # -- fault application ---------------------------------------------------

    def _apply(self, fault) -> None:
        m = self.machine
        now = m.clock.now_s
        try:
            if isinstance(fault, CpuOffline):
                m.offline_cpu(fault.cpu)
            elif isinstance(fault, CpuOnline):
                m.online_cpu(fault.cpu)
            elif isinstance(fault, PerfSyscallStorm):
                self.system.perf.inject_syscall_failures(
                    Errno[fault.errno_name], fault.count, ops=fault.ops
                )
            elif isinstance(fault, SensorDropout):
                for sensor in self._sensors(fault.sensor):
                    sensor.set_fault(fault.mode)
                if fault.duration_s is not None:
                    heapq.heappush(
                        self._timed,
                        (
                            now + fault.duration_s,
                            next(self._seq),
                            SensorRestore(fault.sensor),
                        ),
                    )
            elif isinstance(fault, SensorRestore):
                for sensor in self._sensors(fault.sensor):
                    sensor.set_fault(None)
            elif isinstance(fault, CounterStorm):
                for ev in self.system.perf._fds.values():
                    if ev.closed or not ev.enabled:
                        continue
                    if ev.pmu.kind is PmuKind.CPU:
                        ev.saturate()
            else:
                raise ValueError(f"unknown fault: {fault!r}")
        except KernelError as exc:
            # The kernel refusing an injection (cpu0 hotplug, ...) is a
            # plan defect, not a reason to crash the simulated workload.
            self.skipped.append((now, fault, str(exc)))
            self._trace("skipped", fault, reason=str(exc))
            return
        self.fired.append((now, fault))
        self._trace("fired", fault)

    def _trace(self, name: str, fault, **extra) -> None:
        """Emit one ("fault", name) event.  Firings always kill a live
        recorder (a fault tick is never steady), so emission is
        fastpath-parity-safe."""
        tr = self.machine.tracer
        if tr is None or not tr.fault:
            return
        detail = {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in dataclasses.asdict(fault).items()
        }
        tr.emit(
            "fault",
            name,
            args={"fault": type(fault).__name__, **detail, **extra},
        )
        tr.metrics.counter(f"faults.{name}", key=type(fault).__name__)

    def _sensors(self, name: str) -> list:
        m = self.machine
        if name == "rapl":
            return list(m.rapl.domains)
        if name == "thermal":
            return [m.thermal.zone]
        raise ValueError(f"unknown sensor {name!r} (want 'rapl' or 'thermal')")
