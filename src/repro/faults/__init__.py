"""Deterministic fault injection for chaos-testing the simulated stack.

Build a :class:`FaultPlan` (by hand or from a seed via
:meth:`FaultPlan.random`), then attach it to a running
:class:`~repro.system.System` with :class:`FaultInjector` (or
``System.inject_faults``).  Faults fire from the engine tick loop with
slow-path/fast-path parity guaranteed by the injector's batch guards.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CounterStorm,
    CpuOffline,
    CpuOnline,
    FaultPlan,
    Injection,
    PerfSyscallStorm,
    SensorDropout,
    SensorRestore,
)

__all__ = [
    "CounterStorm",
    "CpuOffline",
    "CpuOnline",
    "FaultInjector",
    "FaultPlan",
    "Injection",
    "PerfSyscallStorm",
    "SensorDropout",
    "SensorRestore",
]
