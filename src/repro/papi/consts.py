"""PAPI constants: error codes, EventSet states, preset event names."""

from __future__ import annotations

import enum

PAPI_OK = 0

#: PAPI preset ids live above this bit, as in papi.h.
PAPI_PRESET_MASK = 0x80000000


class PapiErrorCode(enum.IntEnum):
    """Error returns, matching papi.h values."""

    EINVAL = -1      # Invalid argument
    ENOMEM = -2      # Insufficient memory
    ESYS = -3        # A system/C library call failed
    ECMP = -4        # Not supported by component
    EBUG = -5        # Internal error
    ENOEVNT = -7     # Event does not exist
    ECNFLCT = -8     # Event exists but cannot be counted due to conflict
    ENOTRUN = -9     # EventSet is currently not running
    EISRUN = -10     # EventSet is currently counting
    ENOEVST = -12    # No such EventSet
    ENOTPRESET = -13 # Event is not a valid preset
    ENOCNTR = -14    # Hardware does not support performance counters
    EMISC = -15      # Unknown error
    EPERM = -16      # Permission level does not permit operation
    ENOINIT = -17    # PAPI hasn't been initialized yet
    ENOCMP = -18     # Component index isn't set
    ENOSUPP = -19    # Not supported
    EMULPASS = -24   # Would need multiple passes / multiplexing


class PapiState(enum.Flag):
    """EventSet state flags (PAPI_STOPPED / PAPI_RUNNING subset)."""

    STOPPED = enum.auto()
    RUNNING = enum.auto()


class PresetId(enum.IntEnum):
    """Preset event identifiers (PAPI_PRESET_MASK | index)."""

    PAPI_TOT_INS = PAPI_PRESET_MASK | 0x32
    PAPI_TOT_CYC = PAPI_PRESET_MASK | 0x3B
    PAPI_REF_CYC = PAPI_PRESET_MASK | 0x6B
    PAPI_FP_OPS = PAPI_PRESET_MASK | 0x66
    PAPI_BR_INS = PAPI_PRESET_MASK | 0x37
    PAPI_BR_MSP = PAPI_PRESET_MASK | 0x2E
    PAPI_L3_TCA = PAPI_PRESET_MASK | 0x0E
    PAPI_L3_TCM = PAPI_PRESET_MASK | 0x08
    PAPI_L2_TCA = PAPI_PRESET_MASK | 0x0D
    PAPI_L2_TCM = PAPI_PRESET_MASK | 0x07
    PAPI_RES_STL = PAPI_PRESET_MASK | 0x39


#: Preset name -> native event string per pfm PMU family.  A preset is
#: available on a PMU if its family key matches; on heterogeneous machines
#: the patched PAPI turns these into DERIVED_ADD events across all core
#: PMUs (§V-2).
PRESETS: dict[str, dict[str, str]] = {
    "PAPI_TOT_INS": {
        "intel": "INST_RETIRED:ANY",
        "arm": "INST_RETIRED",
    },
    "PAPI_TOT_CYC": {
        "intel": "CPU_CLK_UNHALTED:THREAD",
        "arm": "CPU_CYCLES",
    },
    "PAPI_REF_CYC": {
        "intel": "CPU_CLK_UNHALTED:REF_TSC",
        "arm": "BUS_CYCLES",
    },
    "PAPI_FP_OPS": {
        "intel": "FP_ARITH_INST_RETIRED:ALL",
        "arm": "ASE_SPEC",
    },
    "PAPI_BR_INS": {
        "intel": "BR_INST_RETIRED:ALL_BRANCHES",
        "arm": "BR_PRED",
    },
    "PAPI_BR_MSP": {
        "intel": "BR_MISP_RETIRED:ALL_BRANCHES",
        "arm": "BR_MIS_PRED",
    },
    "PAPI_L3_TCA": {
        "intel": "LONGEST_LAT_CACHE:REFERENCE",
        "arm": "L3D_CACHE",
    },
    "PAPI_L3_TCM": {
        "intel": "LONGEST_LAT_CACHE:MISS",
        "arm": "L3D_CACHE_REFILL",
    },
    "PAPI_L2_TCA": {
        "intel": "L2_RQSTS:REFERENCES",
        "arm": "L2D_CACHE",
    },
    "PAPI_L2_TCM": {
        "intel": "L2_RQSTS:MISS",
        "arm": "L2D_CACHE_REFILL",
    },
    "PAPI_RES_STL": {
        "intel": "CYCLE_ACTIVITY:STALLS_TOTAL",
        "arm": "STALL_BACKEND",
    },
}


def pmu_family(pfm_pmu_name: str) -> str:
    """Family key used by the preset table."""
    return "arm" if pfm_pmu_name.startswith("arm_") else "intel"
