"""PAPI high-level (region) API.

The calipering capability the paper names as PAPI's key advantage over
the perf tool: wrap arbitrary chunks of code in begin/end calls and get
per-region counts.  Regions may be entered repeatedly; counts accumulate
per region with an invocation counter, like ``PAPI_hl_region_begin`` /
``PAPI_hl_region_end``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.papi.consts import PapiErrorCode
from repro.papi.error import PapiError
from repro.papi.library import Papi

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread

DEFAULT_EVENTS = ("PAPI_TOT_INS", "PAPI_TOT_CYC")


@dataclass
class RegionStats:
    """Accumulated counts for one named region."""

    name: str
    events: tuple[str, ...]
    invocations: int = 0
    totals: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, float]:
        return dict(zip(self.events, self.totals))


class HighLevelApi:
    """Region-based measurement for one thread."""

    def __init__(
        self,
        papi: Papi,
        thread: "SimThread",
        events: Sequence[str] = DEFAULT_EVENTS,
    ):
        self.papi = papi
        self.thread = thread
        self.events = tuple(events)
        self.regions: dict[str, RegionStats] = {}
        self._esid = papi.create_eventset()
        papi.attach(self._esid, thread)
        for ev in self.events:
            papi.add_event(self._esid, ev, caller=thread)
        self._open_region: Optional[str] = None

    def region_begin(self, name: str) -> None:
        if self._open_region is not None:
            raise PapiError(
                PapiErrorCode.EISRUN,
                f"region {self._open_region!r} is still open",
            )
        self.papi.start(self._esid, caller=self.thread)
        self._open_region = name

    def region_end(self, name: str) -> RegionStats:
        if self._open_region != name:
            raise PapiError(
                PapiErrorCode.EINVAL,
                f"region_end({name!r}) does not match open region "
                f"{self._open_region!r}",
            )
        values = self.papi.stop(self._esid, caller=self.thread)
        self._open_region = None
        stats = self.regions.get(name)
        if stats is None:
            stats = RegionStats(name=name, events=self.events, totals=[0.0] * len(values))
            self.regions[name] = stats
        stats.invocations += 1
        stats.totals = [a + b for a, b in zip(stats.totals, values)]
        return stats

    def shutdown(self) -> None:
        self.papi.destroy_eventset(self._esid, caller=self.thread)
