"""PAPI preset definitions from ``PAPI_events.csv``.

Real PAPI defines preset events in a CSV file keyed by CPU
family/model; §V-2 of the paper points out that this breaks on Intel
hybrid parts ("there is only one family/model type for the overall
processor, so the current way of defining presets by family/model will
not work") and that the parser must learn about per-core-type
availability.

This module implements both generations of the format:

* classic rows — ``PRESET,<name>,<family/model key>,<native event>`` —
  which match a whole processor;
* hybrid-aware rows with a ``coretype:`` qualifier in the key —
  ``PRESET,PAPI_TOT_INS,adl coretype:glc,INST_RETIRED:ANY`` — which
  match one core type of a hybrid processor, letting a preset expand to
  a DERIVED_ADD across core types.

``load_preset_table`` resolves the table against a system and returns,
per preset, the list of qualified native events to open — the structure
:class:`repro.papi.library.Papi` consumes.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

from repro.papi.consts import PapiErrorCode
from repro.papi.error import PapiError
from repro.pfmlib.library import Pfmlib


@dataclass(frozen=True)
class PresetRow:
    """One CSV row."""

    preset: str
    cpu_key: str            # e.g. "adl", "skx", "arm_a53", with optional
                            # " coretype:<pfm suffix>" qualifier
    native: str
    derived: str = "NOT_DERIVED"

    @property
    def base_key(self) -> str:
        return self.cpu_key.split("coretype:")[0].strip()

    @property
    def coretype(self) -> str | None:
        if "coretype:" not in self.cpu_key:
            return None
        return self.cpu_key.split("coretype:", 1)[1].strip()


@dataclass
class PresetTable:
    """Parsed CSV: preset name -> rows."""

    rows: dict[str, list[PresetRow]] = field(default_factory=dict)

    def add(self, row: PresetRow) -> None:
        self.rows.setdefault(row.preset, []).append(row)

    def presets(self) -> list[str]:
        return sorted(self.rows)


def parse_events_csv(text: str) -> PresetTable:
    """Parse PAPI_events.csv content.

    Format (comment lines start with '#')::

        PRESET,<papi name>,<cpu key>,<native event>[,<derived>]
    """
    table = PresetTable()
    reader = csv.reader(io.StringIO(text))
    for lineno, fields in enumerate(reader, 1):
        if not fields or not fields[0].strip() or fields[0].lstrip().startswith("#"):
            continue
        fields = [f.strip() for f in fields]
        if fields[0].upper() != "PRESET":
            raise ValueError(f"line {lineno}: expected PRESET rows, got {fields[0]!r}")
        if len(fields) < 4:
            raise ValueError(f"line {lineno}: need at least 4 fields, got {len(fields)}")
        if not fields[1].startswith("PAPI_"):
            raise ValueError(f"line {lineno}: preset names start with PAPI_")
        table.add(
            PresetRow(
                preset=fields[1],
                cpu_key=fields[2],
                native=fields[3],
                derived=fields[4] if len(fields) > 4 else "NOT_DERIVED",
            )
        )
    return table


#: CPU-key aliases: pfm PMU name -> (family key, coretype suffix).
_PMU_TO_KEY: dict[str, tuple[str, str]] = {
    "adl_glc": ("adl", "glc"),
    "adl_grt": ("adl", "grt"),
    "skx": ("skx", ""),
    "arm_a53": ("arm_a53", ""),
    "arm_a55": ("arm_a55", ""),
    "arm_a72": ("arm_a72", ""),
    "arm_a76": ("arm_a76", ""),
    "arm_x1": ("arm_x1", ""),
}


@dataclass
class ResolvedPreset:
    """A preset mapped onto this machine's active PMUs."""

    name: str
    natives: list[str]          # fully qualified "pmu::EVENT:UMASK"
    derived: str


def load_preset_table(
    table: PresetTable, pfm: Pfmlib, hybrid_aware: bool = True
) -> dict[str, ResolvedPreset]:
    """Resolve a preset table against the active PMUs.

    With ``hybrid_aware=False`` (the pre-patch parser) a preset row with
    a ``coretype:`` qualifier is ignored and plain family/model rows are
    ambiguous on hybrid machines — reproducing why the CSV format had to
    change.
    """
    out: dict[str, ResolvedPreset] = {}
    active = pfm.default_pmus()
    keys = {}
    for t in active:
        fam, suffix = _PMU_TO_KEY.get(t.name, (t.name, ""))
        keys[t.name] = (fam, suffix)
    hybrid_machine = len(active) > 1

    for preset, rows in table.rows.items():
        natives: list[str] = []
        derived = "NOT_DERIVED"
        for t in active:
            fam, suffix = keys[t.name]
            for row in rows:
                if row.base_key != fam:
                    continue
                if row.coretype is not None:
                    if not hybrid_aware:
                        continue  # old parser cannot read these rows
                    if row.coretype != suffix:
                        continue
                elif hybrid_machine and suffix and hybrid_aware:
                    # A plain family row on a hybrid machine: the new
                    # parser treats it as applying to every core type.
                    pass
                natives.append(f"{t.name}::{row.native}")
                if row.derived != "NOT_DERIVED":
                    derived = row.derived
                break
        if not natives:
            continue
        if len(natives) > 1:
            derived = "DERIVED_ADD"
        if not hybrid_aware and hybrid_machine and natives:
            raise PapiError(
                PapiErrorCode.EMISC,
                f"{preset}: family/model preset rows are ambiguous on a "
                "hybrid machine; the CSV parser needs the coretype "
                "extension (§V-2)",
            )
        out[preset] = ResolvedPreset(name=preset, natives=natives, derived=derived)
    return out


#: A shipping events file covering the simulated machines, in the
#: hybrid-aware format.
DEFAULT_EVENTS_CSV = """\
# PAPI_events.csv — preset definitions (hybrid-aware format)
# PRESET,<name>,<cpu key>,<native event>[,<derived>]
PRESET,PAPI_TOT_INS,adl coretype:glc,INST_RETIRED:ANY
PRESET,PAPI_TOT_INS,adl coretype:grt,INST_RETIRED:ANY
PRESET,PAPI_TOT_CYC,adl coretype:glc,CPU_CLK_UNHALTED:THREAD
PRESET,PAPI_TOT_CYC,adl coretype:grt,CPU_CLK_UNHALTED:THREAD
PRESET,PAPI_L3_TCM,adl coretype:glc,LONGEST_LAT_CACHE:MISS
PRESET,PAPI_L3_TCM,adl coretype:grt,LONGEST_LAT_CACHE:MISS
PRESET,PAPI_TOT_INS,skx,INST_RETIRED:ANY
PRESET,PAPI_TOT_CYC,skx,CPU_CLK_UNHALTED:THREAD
PRESET,PAPI_L3_TCM,skx,LONGEST_LAT_CACHE:MISS
PRESET,PAPI_TOT_INS,arm_a53,INST_RETIRED:ANY
PRESET,PAPI_TOT_INS,arm_a72,INST_RETIRED:ANY
PRESET,PAPI_TOT_INS,arm_a55,INST_RETIRED:ANY
PRESET,PAPI_TOT_INS,arm_a76,INST_RETIRED:ANY
PRESET,PAPI_TOT_INS,arm_x1,INST_RETIRED:ANY
PRESET,PAPI_TOT_CYC,arm_a53,CPU_CYCLES:ANY
PRESET,PAPI_TOT_CYC,arm_a72,CPU_CYCLES:ANY
PRESET,PAPI_TOT_CYC,arm_a55,CPU_CYCLES:ANY
PRESET,PAPI_TOT_CYC,arm_a76,CPU_CYCLES:ANY
PRESET,PAPI_TOT_CYC,arm_x1,CPU_CYCLES:ANY
PRESET,PAPI_L3_TCM,arm_a53,L3D_CACHE_REFILL:ANY
PRESET,PAPI_L3_TCM,arm_a72,L3D_CACHE_REFILL:ANY
"""
