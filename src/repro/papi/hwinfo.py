"""``PAPI_get_hardware_info`` with heterogeneous reporting.

Implements §V-1 of the paper's future work: besides the classic totals
(which on PAPI 7.1 cannot say *which* core is which), the info struct
reports one :class:`CoreClassInfo` per core type with counts, frequency
range and the Linux PMU serving it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


@dataclass(frozen=True)
class CoreClassInfo:
    """One core type in a (possibly heterogeneous) processor."""

    name: str
    pmu_name: str
    pfm_pmu: str
    n_physical_cores: int
    n_logical_cpus: int
    cpu_ids: tuple[int, ...]
    max_mhz: int
    base_mhz: int
    capacity: int


@dataclass(frozen=True)
class PapiHardwareInfo:
    """The hardware-info struct, heterogeneous-aware."""

    vendor_string: str
    model_string: str
    totalcpus: int          # logical CPUs
    cores: int              # physical cores
    threads: int            # max hardware threads per core
    sockets: int
    memory_gib: int
    heterogeneous: bool
    core_classes: tuple[CoreClassInfo, ...]

    def class_of_cpu(self, cpu_id: int) -> CoreClassInfo:
        for cc in self.core_classes:
            if cpu_id in cc.cpu_ids:
                return cc
        raise KeyError(f"cpu {cpu_id} not in any core class")


def get_hardware_info(system: "System") -> PapiHardwareInfo:
    topo = system.topology
    classes = []
    for ct in topo.core_types:
        cpu_ids = tuple(topo.cpus_of_type(ct.name))
        phys = len({topo.core(c).phys_core for c in cpu_ids})
        classes.append(
            CoreClassInfo(
                name=ct.name,
                pmu_name=ct.pmu_name,
                pfm_pmu=ct.pfm_pmu,
                n_physical_cores=phys,
                n_logical_cpus=len(cpu_ids),
                cpu_ids=cpu_ids,
                max_mhz=ct.max_freq_mhz,
                base_mhz=ct.base_freq_mhz,
                capacity=topo.capacity_of(cpu_ids[0]),
            )
        )
    return PapiHardwareInfo(
        vendor_string=system.spec.vendor_string,
        model_string=system.spec.model_string,
        totalcpus=topo.n_cpus,
        cores=topo.n_physical_cores,
        threads=max(ct.smt for ct in topo.core_types),
        sockets=1,
        memory_gib=system.spec.memory_gib,
        heterogeneous=topo.is_heterogeneous,
        core_classes=tuple(classes),
    )
