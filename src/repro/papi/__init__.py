"""PAPI reproduction.

The paper's contribution: a PAPI whose ``perf_event`` component supports
heterogeneous processors.  The component runs in one of two modes:

* ``legacy`` — the PAPI 7.1 behaviour: one perf PMU type per EventSet,
  conflicts rejected, unqualified event names ambiguous on hybrid
  machines (§IV-D/E's before picture);
* ``hybrid`` — the paper's patch: events are bucketed into one perf event
  group per PMU type, an EventSet can mix P-core, E-core, uncore and RAPL
  events, and presets become derived multi-PMU events (§IV-E, §V-2,
  §V-3).

Usage::

    from repro import System, Papi

    system = System("raptor-lake-i7-13700")
    papi = Papi(system, mode="hybrid")
    es = papi.create_eventset()
    papi.attach(es, thread)
    papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
    papi.add_event(es, "adl_grt::INST_RETIRED:ANY")
    papi.start(es)
    ...
    values = papi.stop(es)
"""

from repro.papi.consts import (
    PAPI_OK,
    PapiErrorCode,
    PapiState,
    PRESETS,
)
from repro.papi.error import PapiError
from repro.papi.eventset import EventSet, EventEntry
from repro.papi.library import Papi
from repro.papi.hwinfo import PapiHardwareInfo, CoreClassInfo
from repro.papi.sysdetect import detect_core_types, DetectionReport

__all__ = [
    "PAPI_OK",
    "PapiErrorCode",
    "PapiState",
    "PRESETS",
    "PapiError",
    "EventSet",
    "EventEntry",
    "Papi",
    "PapiHardwareInfo",
    "CoreClassInfo",
    "detect_core_types",
    "DetectionReport",
]
