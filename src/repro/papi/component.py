"""PAPI component framework, plus the two legacy auxiliary components.

PAPI exposes counters through *components*; an EventSet belongs to
exactly one, and only one EventSet per component may be running at a
time (the constraint that defeats the "just make two EventSets"
workaround in §IV-E).

Besides the central perf_event component
(:mod:`repro.papi.perf_event_component`) we implement the two legacy
companions the paper discusses:

* ``perf_event_uncore`` — the separate uncore component that exists
  *because* pre-patch EventSets could not mix PMU types (§V-3 asks
  whether it can be retired once hybrid EventSets land);
* ``rapl`` — energy readings via the powercap sysfs tree, used by the
  monitoring scripts.
"""

from __future__ import annotations

import abc
from typing import Optional, TYPE_CHECKING

from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf.attr import PerfEventAttr
from repro.kernel.perf.pmu import PmuKind
from repro.papi.consts import PAPI_OK, PapiErrorCode
from repro.papi.error import PapiError
from repro.papi.eventset import EventSet
from repro.pfmlib.library import EventInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread
    from repro.system import System
    from repro.pfmlib.library import Pfmlib


class Component(abc.ABC):
    """Base class of PAPI components."""

    name: str = "component"

    def __init__(self, cmp_id: int, system: "System", pfm: "Pfmlib"):
        self.cmp_id = cmp_id
        self.system = system
        self.pfm = pfm
        # One running EventSet per component *per thread context* (PAPI's
        # rule; cpu-wide EventSets share a single global context, key
        # None).  This is the constraint §IV-E cites against the
        # "just make two EventSets" workaround.
        self._active: dict[Optional[int], EventSet] = {}

    def _context_key(self, es: EventSet) -> Optional[int]:
        return es.attached.tid if es.attached is not None else None

    @property
    def active_eventset(self) -> Optional[EventSet]:
        """Any currently running EventSet (for introspection)."""
        return next(iter(self._active.values()), None)

    def _require_inactive_slot(self, es: EventSet) -> None:
        key = self._context_key(es)
        current = self._active.get(key)
        if current is not None and current is not es:
            raise PapiError(
                PapiErrorCode.EISRUN,
                f"component {self.name!r} already has a running EventSet "
                f"(#{current.esid}) in this thread context; only one may "
                "be active per component at a time",
            )

    def _mark_active(self, es: EventSet) -> None:
        self._active[self._context_key(es)] = es

    def _mark_inactive(self, es: EventSet) -> None:
        key = self._context_key(es)
        if self._active.get(key) is es:
            del self._active[key]

    @abc.abstractmethod
    def supports(self, info: EventInfo) -> bool:
        """Whether this component can count the resolved event."""

    @abc.abstractmethod
    def add_slot(self, es: EventSet, info: EventInfo, caller: Optional["SimThread"]) -> int:
        """Create a native slot for ``info``; returns the slot index."""

    @abc.abstractmethod
    def start(self, es: EventSet, caller: Optional["SimThread"]) -> None: ...

    @abc.abstractmethod
    def stop(self, es: EventSet, caller: Optional["SimThread"]) -> list[float]: ...

    @abc.abstractmethod
    def read(self, es: EventSet, caller: Optional["SimThread"]) -> list[float]: ...

    @abc.abstractmethod
    def reset(self, es: EventSet, caller: Optional["SimThread"]) -> None: ...

    @abc.abstractmethod
    def cleanup(self, es: EventSet, caller: Optional["SimThread"]) -> None: ...


class UncoreComponent(Component):
    """The legacy ``perf_event_uncore`` component (separate by necessity)."""

    name = "perf_event_uncore"

    def __init__(self, cmp_id: int, system: "System", pfm: "Pfmlib"):
        super().__init__(cmp_id, system, pfm)
        self._fds: dict[int, list[int]] = {}        # esid -> fds

    def supports(self, info: EventInfo) -> bool:
        ptype = self.pfm.kernel_pmu_type(info)
        return self.system.perf.registry.by_type[ptype].kind is PmuKind.UNCORE

    def add_slot(self, es: EventSet, info: EventInfo, caller) -> int:
        if not self.supports(info):
            raise PapiError(
                PapiErrorCode.ECMP,
                f"{info.fullname} is not an uncore event",
            )
        ptype = self.pfm.kernel_pmu_type(info)
        pmu = self.system.perf.registry.by_type[ptype]
        attr = PerfEventAttr(type=ptype, config=info.config, name=info.fullname)
        fd = self.system.perf.perf_event_open(
            attr, pid=-1, cpu=pmu.cpus[0], caller=caller
        )
        fds = self._fds.setdefault(es.esid, [])
        fds.append(fd)
        return len(fds) - 1

    def _leaders(self, es: EventSet) -> list[int]:
        return self._fds.get(es.esid, [])

    def start(self, es, caller):
        from repro.kernel.perf.subsystem import PerfIoctl

        self._require_inactive_slot(es)
        for fd in self._leaders(es):
            self.system.perf.ioctl(fd, PerfIoctl.RESET, caller=caller)
            self.system.perf.ioctl(fd, PerfIoctl.ENABLE, caller=caller)
        self._mark_active(es)

    def read(self, es, caller):
        return [
            float(self.system.perf.read(fd, caller=caller).value)
            for fd in self._leaders(es)
        ]

    def stop(self, es, caller):
        from repro.kernel.perf.subsystem import PerfIoctl

        values = self.read(es, caller)
        for fd in self._leaders(es):
            self.system.perf.ioctl(fd, PerfIoctl.DISABLE, caller=caller)
        self._mark_inactive(es)
        return values

    def reset(self, es, caller):
        from repro.kernel.perf.subsystem import PerfIoctl

        for fd in self._leaders(es):
            self.system.perf.ioctl(fd, PerfIoctl.RESET, caller=caller)

    def cleanup(self, es, caller):
        for fd in self._fds.pop(es.esid, []):
            self.system.perf.close(fd, caller=caller)
        self._mark_inactive(es)


class RaplComponent(Component):
    """PAPI's rapl component: energy via the powercap sysfs tree (nJ)."""

    name = "rapl"

    _DOMAIN_PATHS = {
        "rapl::RAPL_ENERGY_PKG": "/sys/class/powercap/intel-rapl/intel-rapl:0/energy_uj",
        "rapl::RAPL_ENERGY_CORES": "/sys/class/powercap/intel-rapl/intel-rapl:0:0/energy_uj",
        "rapl::RAPL_ENERGY_DRAM": "/sys/class/powercap/intel-rapl/intel-rapl:0:1/energy_uj",
    }

    def __init__(self, cmp_id: int, system: "System", pfm: "Pfmlib"):
        super().__init__(cmp_id, system, pfm)
        self._paths: dict[int, list[str]] = {}
        self._base_uj: dict[int, list[int]] = {}

    def supports(self, info: EventInfo) -> bool:
        return info.pmu.name == "rapl"

    def _key(self, info: EventInfo) -> str:
        return f"rapl::{info.event.name}"

    def add_slot(self, es: EventSet, info: EventInfo, caller) -> int:
        if not self.supports(info):
            raise PapiError(PapiErrorCode.ECMP, f"{info.fullname} is not a RAPL event")
        path = self._DOMAIN_PATHS.get(self._key(info))
        if path is None or not self.system.sysfs.exists(path):
            raise PapiError(
                PapiErrorCode.ENOEVNT, f"no powercap domain for {info.fullname}"
            )
        paths = self._paths.setdefault(es.esid, [])
        paths.append(path)
        return len(paths) - 1

    def _read_uj(self, path: str):
        """One powercap read; a dropped-out sensor (EIO) yields None."""
        try:
            return int(self.system.sysfs.read(path))
        except KernelError as exc:
            if exc.kernel_errno is not Errno.EIO:
                raise
            return None

    def start(self, es, caller):
        self._require_inactive_slot(es)
        self._base_uj[es.esid] = [
            self._read_uj(p) for p in self._paths.get(es.esid, [])
        ]
        self._mark_active(es)

    def read(self, es, caller):
        base = self._base_uj.get(es.esid)
        if base is None:
            raise PapiError(PapiErrorCode.ENOTRUN, "EventSet not started")
        now = [self._read_uj(p) for p in self._paths.get(es.esid, [])]
        es.last_status = PAPI_OK
        # PAPI reports nanojoules; a domain whose sensor dropped out (at
        # start or now) degrades to NaN plus a PAPI_ECNFLCT status.
        values = []
        for n, b in zip(now, base):
            if n is None or b is None:
                values.append(float("nan"))
                es.last_status = PapiErrorCode.ECNFLCT
            else:
                values.append(float((n - b) * 1000))
        return values

    def stop(self, es, caller):
        values = self.read(es, caller)
        self._mark_inactive(es)
        return values

    def reset(self, es, caller):
        self._base_uj[es.esid] = [
            self._read_uj(p) for p in self._paths.get(es.esid, [])
        ]

    def cleanup(self, es, caller):
        self._paths.pop(es.esid, None)
        self._base_uj.pop(es.esid, None)
        self._mark_inactive(es)
