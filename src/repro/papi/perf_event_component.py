"""The PAPI ``perf_event`` component — before and after the paper's patch.

``mode="legacy"`` reproduces PAPI 7.1: an EventSet maps to exactly one
perf event group, so every event must come from the same perf PMU type;
adding a P-core event to an EventSet holding an E-core event fails with
``PAPI_ECNFLCT``, and uncore/RAPL events are refused outright (that is
why the separate components exist).

``mode="hybrid"`` implements §IV-E: the component tracks the PMU type of
every added event and splits the EventSet into **one perf event group
per PMU type**.  Start/stop/read/reset then iterate over the groups —
the extra layer of indirection whose overhead §V-5 worries about (each
group costs one extra syscall per operation, which the experiments
measure through the syscall-cost model).  Hybrid mode also accepts
uncore and RAPL events into combined EventSets (§V-3).

Multiplexing (``EventSet.multiplexed``) opens every event as its own
group leader, exactly how PAPI implements software multiplexing on
perf_event, and returns enabled/running-scaled estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf.attr import PerfEventAttr, ReadFormat
from repro.kernel.perf.pmu import PmuKind
from repro.kernel.perf.subsystem import PerfIoctl
from repro.papi.component import Component
from repro.papi.consts import PAPI_OK, PapiErrorCode
from repro.papi.error import PapiError
from repro.papi.eventset import EventSet
from repro.pfmlib.library import EventInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread

#: How often a transiently failing perf syscall is retried before the
#: component gives up, mirroring real PAPI's EINTR/EBUSY retry loops.
MAX_SYSCALL_RETRIES = 8

#: Transient errnos worth retrying; anything else is a real error.
_TRANSIENT_ERRNOS = (Errno.EBUSY, Errno.EINTR)


@dataclass
class NativeSlot:
    """One opened kernel event backing part of an EventSet."""

    info: EventInfo
    attr: PerfEventAttr
    fd: int
    pmu_type: int
    pmu_kind: PmuKind


@dataclass
class PerfState:
    """Per-EventSet bookkeeping inside the component."""

    slots: list[NativeSlot] = field(default_factory=list)
    # group key (pmu type) -> slot indices; index 0 is the group leader.
    groups: dict[int, list[int]] = field(default_factory=dict)


class PerfEventComponent(Component):
    """The CPU perf_event component, in legacy or hybrid mode."""

    def __init__(self, cmp_id, system, pfm, mode: str = "hybrid"):
        super().__init__(cmp_id, system, pfm)
        if mode not in ("legacy", "hybrid"):
            raise ValueError(f"unknown perf_event component mode {mode!r}")
        self.mode = mode
        self.name = "perf_event"
        self._state: dict[int, PerfState] = {}

    # -- helpers -------------------------------------------------------------

    def _syscall(self, fn):
        """Run a perf syscall, absorbing bounded EBUSY/EINTR transients."""
        last = None
        for _ in range(MAX_SYSCALL_RETRIES):
            try:
                return fn()
            except KernelError as exc:
                if exc.kernel_errno not in _TRANSIENT_ERRNOS:
                    raise
                last = exc
        raise PapiError(
            PapiErrorCode.ESYS,
            f"perf syscall still failing after {MAX_SYSCALL_RETRIES} "
            f"attempts: {last}",
        ) from last

    def state_of(self, es: EventSet) -> PerfState:
        return self._state.setdefault(es.esid, PerfState())

    def num_groups(self, es: EventSet) -> int:
        """How many perf event groups back this EventSet (the paper's
        indirection metric)."""
        return len(self.state_of(es).groups)

    def supports(self, info: EventInfo) -> bool:
        ptype = self.pfm.kernel_pmu_type(info)
        kind = self.system.perf.registry.by_type[ptype].kind
        if self.mode == "legacy":
            return kind is PmuKind.CPU
        return kind in (PmuKind.CPU, PmuKind.UNCORE, PmuKind.RAPL)

    # -- slot management -------------------------------------------------------

    def add_slot(
        self, es: EventSet, info: EventInfo, caller: Optional["SimThread"]
    ) -> int:
        state = self.state_of(es)
        ptype = self.pfm.kernel_pmu_type(info)
        pmu = self.system.perf.registry.by_type[ptype]

        if pmu.kind is PmuKind.CPU and es.attached is None:
            raise PapiError(
                PapiErrorCode.EINVAL,
                "EventSet must be attached to a thread before CPU events "
                "are added",
            )
        if self.mode == "legacy":
            if pmu.kind is not PmuKind.CPU:
                raise PapiError(
                    PapiErrorCode.ECMP,
                    f"{info.fullname}: the legacy perf_event component only "
                    "counts CPU events; use the perf_event_uncore or rapl "
                    "component",
                )
            existing = {s.pmu_type for s in state.slots}
            if existing and ptype not in existing:
                other = next(iter(existing))
                raise PapiError(
                    PapiErrorCode.ECNFLCT,
                    f"cannot add {info.fullname} (PMU type {ptype}) to an "
                    f"EventSet already using PMU type {other}: EventSets "
                    "can only handle events belonging to the same "
                    "perf_event PMU type",
                )

        attr = PerfEventAttr(type=ptype, config=info.config, name=info.fullname)
        if pmu.kind is PmuKind.CPU:
            pid, cpu = es.attached.tid, -1
        else:
            pid, cpu = -1, (pmu.cpus[0] if pmu.cpus else 0)

        group_key = ptype
        group = state.groups.get(group_key)
        if es.multiplexed or pmu.kind is PmuKind.RAPL:
            # Multiplexed EventSets make each event its own group leader.
            group_fd = -1
        elif group:
            group_fd = state.slots[group[0]].fd
        else:
            group_fd = -1
            attr.read_format |= ReadFormat.GROUP

        fd = self._syscall(
            lambda: self.system.perf.perf_event_open(
                attr, pid=pid, cpu=cpu, group_fd=group_fd, caller=caller
            )
        )
        slot = NativeSlot(info=info, attr=attr, fd=fd, pmu_type=ptype, pmu_kind=pmu.kind)
        state.slots.append(slot)
        idx = len(state.slots) - 1
        if es.multiplexed or pmu.kind is PmuKind.RAPL:
            # Unique key per slot so each reads/starts independently.
            state.groups[-(idx + 1)] = [idx]
        else:
            state.groups.setdefault(group_key, []).append(idx)
        return idx

    def _leader_fds(self, es: EventSet) -> list[int]:
        state = self.state_of(es)
        return [state.slots[idxs[0]].fd for idxs in state.groups.values()]

    # -- counting ---------------------------------------------------------------

    def start(self, es: EventSet, caller: Optional["SimThread"]) -> None:
        self._require_inactive_slot(es)
        for fd in self._leader_fds(es):
            self._syscall(
                lambda fd=fd: self.system.perf.ioctl(
                    fd, PerfIoctl.RESET, flag_group=True, caller=caller
                )
            )
            self._syscall(
                lambda fd=fd: self.system.perf.ioctl(
                    fd, PerfIoctl.ENABLE, flag_group=True, caller=caller
                )
            )
        self._mark_active(es)

    def read(self, es: EventSet, caller: Optional["SimThread"]) -> list[float]:
        """Read all groups; unreadable groups degrade to NaN slots.

        A group whose counters cannot be delivered — retry-exhausted
        transient failures, a dropped-out RAPL sensor (EIO), a
        hotplugged-away CPU (ENODEV) — reports NaN for its slots and
        flags ``es.last_status = PAPI_ECNFLCT`` instead of raising, so
        callers get partial results plus an error code, never a torn
        exception mid-measurement.
        """
        state = self.state_of(es)
        es.last_status = PAPI_OK
        values = [0.0] * len(state.slots)
        for idxs in state.groups.values():
            leader = state.slots[idxs[0]]
            try:
                result = self._syscall(
                    lambda: self.system.perf.read(leader.fd, caller=caller)
                )
            except PapiError:
                result = None  # transient storm outlasted the retry budget
            except KernelError as exc:
                if exc.kernel_errno not in (Errno.EIO, Errno.ENODEV):
                    raise
                result = None
            if result is None:
                for idx in idxs:
                    values[idx] = float("nan")
                es.last_status = PapiErrorCode.ECNFLCT
            elif isinstance(result, list):
                for idx, rv in zip(idxs, result):
                    values[idx] = self._value_of(es, rv)
            else:
                values[idxs[0]] = self._value_of(es, result)
        return values

    def _value_of(self, es: EventSet, rv) -> float:
        if es.multiplexed:
            return rv.scaled_value()
        return float(rv.value)

    def stop(self, es: EventSet, caller: Optional["SimThread"]) -> list[float]:
        values = self.read(es, caller)
        status = es.last_status
        for fd in self._leader_fds(es):
            try:
                self._syscall(
                    lambda fd=fd: self.system.perf.ioctl(
                        fd, PerfIoctl.DISABLE, flag_group=True, caller=caller
                    )
                )
            except PapiError:
                status = PapiErrorCode.ECNFLCT
        # The EventSet stops no matter what; a counter that could not be
        # disabled is reported through the status, not an exception.
        es.last_status = status
        self._mark_inactive(es)
        return values

    def reset(self, es: EventSet, caller: Optional["SimThread"]) -> None:
        for fd in self._leader_fds(es):
            self._syscall(
                lambda fd=fd: self.system.perf.ioctl(
                    fd, PerfIoctl.RESET, flag_group=True, caller=caller
                )
            )

    def cleanup(self, es: EventSet, caller: Optional["SimThread"]) -> None:
        state = self._state.pop(es.esid, None)
        if state:
            for slot in state.slots:
                self.system.perf.close(slot.fd, caller=caller)
        self._mark_inactive(es)

    # -- overflow dispatch (PAPI_overflow) ----------------------------------------

    def set_overflow(
        self,
        es: EventSet,
        entry_index: int,
        threshold: int,
        caller: Optional["SimThread"] = None,
    ) -> list[int]:
        """Re-open the entry's slots in sampling mode.

        Returns the sampling fds.  Must be called on a stopped EventSet;
        a threshold of 0 disables sampling again.  Each backing slot (one
        per PMU for derived presets) gets its own sample stream, so on a
        hybrid machine overflows are delivered no matter which core type
        the thread runs on.
        """
        if es.running:
            raise PapiError(
                PapiErrorCode.EISRUN, "cannot change overflow while counting"
            )
        if threshold < 0:
            raise PapiError(PapiErrorCode.EINVAL, "negative overflow threshold")
        state = self.state_of(es)
        entry = es.entries[entry_index]
        for idx in entry.slot_indices:
            if state.slots[idx].pmu_kind is not PmuKind.CPU:
                raise PapiError(
                    PapiErrorCode.ECMP,
                    f"{state.slots[idx].info.fullname}: overflow requires a "
                    "CPU event",
                )
        # Sampling events must lead their own group, so the whole EventSet
        # is rebuilt as standalone leaders (exactly how PAPI combines
        # overflow with its multiplexing machinery).
        sampling = set(entry.slot_indices)
        for slot in state.slots:
            self.system.perf.close(slot.fd, caller=caller)
        state.groups.clear()
        fds = []
        for idx, slot in enumerate(state.slots):
            attr = PerfEventAttr(
                type=slot.attr.type,
                config=slot.attr.config,
                sample_period=threshold if idx in sampling else 0,
                name=slot.attr.name,
            )
            if slot.pmu_kind is PmuKind.CPU:
                pid, cpu = es.attached.tid, -1
            else:
                pmu = self.system.perf.registry.by_type[slot.pmu_type]
                pid, cpu = -1, (pmu.cpus[0] if pmu.cpus else 0)
            slot.attr = attr
            slot.fd = self._syscall(
                lambda: self.system.perf.perf_event_open(
                    attr, pid=pid, cpu=cpu, caller=caller
                )
            )
            state.groups[-(idx + 1)] = [idx]
            if idx in sampling:
                fds.append(slot.fd)
        return fds
