"""EventSets: PAPI's grouping abstraction.

An :class:`EventSet` is an ordered list of :class:`EventEntry` items the
user added; each entry resolves to one or more *native slots* managed by
the owning component.  A plain native event owns one slot; a derived
preset on a heterogeneous machine owns one slot per core PMU and reports
their sum (DERIVED_ADD) — §V-2's transparent multi-PMU presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.checkpoint.surface import snapshot_surface
from repro.papi.consts import PAPI_OK, PapiState

if TYPE_CHECKING:  # pragma: no cover
    from repro.papi.component import Component
    from repro.sim.task import SimThread


@dataclass
class EventEntry:
    """One user-visible event in an EventSet."""

    name: str                   # as added: native string or preset name
    is_preset: bool
    slot_indices: list[int]     # indices into the component's native slots
    derived: str = "NOT_DERIVED"  # or "DERIVED_ADD"

    def describe(self) -> str:
        kind = "preset" if self.is_preset else "native"
        return f"{self.name} [{kind}, {self.derived}, slots={self.slot_indices}]"


@dataclass
@snapshot_surface(
    state=(
        "esid",
        "state",
        "component",
        "entries",
        "attached",
        "multiplexed",
        "last_status",
    ),
    note="All state: PAPI state machine position, entries with their "
    "kernel event handles, attach target, multiplex flag, last status."
)
class EventSet:
    """One PAPI EventSet."""

    esid: int
    state: PapiState = PapiState.STOPPED
    component: Optional["Component"] = None
    entries: list[EventEntry] = field(default_factory=list)
    attached: Optional["SimThread"] = None
    multiplexed: bool = False
    #: Status of the most recent read/stop: ``PAPI_OK`` or, when a
    #: counter could not be read and its slots were reported as NaN,
    #: ``PapiErrorCode.ECNFLCT`` (partial results).
    last_status: int = PAPI_OK

    @property
    def running(self) -> bool:
        return self.state is PapiState.RUNNING

    @property
    def num_events(self) -> int:
        return len(self.entries)

    def names(self) -> list[str]:
        return [e.name for e in self.entries]

    def trace_args(self) -> dict:
        """Args payload for the ("papi", "start") trace event."""
        return {
            "events": self.names(),
            "component": self.component.name if self.component else None,
            "multiplexed": self.multiplexed,
        }
