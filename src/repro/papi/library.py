"""The PAPI library facade.

:class:`Papi` is the user-facing API: EventSet lifecycle
(create/attach/add/start/stop/read/reset/accum/cleanup/destroy), preset
resolution (including derived multi-PMU presets on heterogeneous
machines), hardware info, and component management.

``mode`` selects the perf_event component behaviour: ``"hybrid"`` (the
paper's patched PAPI) or ``"legacy"`` (PAPI 7.1).  In legacy mode on a
heterogeneous machine, unqualified event names and presets fail — the
paper's observation that old PAPI "did not handle this case well and
would give an error or possibly even crash" (we always give the error,
never the crash).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, TYPE_CHECKING

from repro.checkpoint.surface import snapshot_surface
from repro.papi.component import Component, RaplComponent, UncoreComponent
from repro.papi.consts import PRESETS, PapiErrorCode, PapiState, pmu_family
from repro.papi.error import PapiError
from repro.papi.eventset import EventEntry, EventSet
from repro.papi.hwinfo import PapiHardwareInfo, get_hardware_info
from repro.papi.perf_event_component import PerfEventComponent
from repro.papi.sysdetect import DetectionReport, detect_core_types
from repro.pfmlib.library import EventInfo, Pfmlib, PfmError
from repro.system import System

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread


@snapshot_surface(
    state=(
        "system",
        "mode",
        "pfm",
        "_csv_presets",
        "perf_event",
        "perf_event_uncore",
        "components",
        "rapl",
        "_eventsets",
        "_next_esid",
        "_started",
        "_overflow_handlers",
        "_overflow_hook_installed",
    ),
    note="All state: eventsets (ids, entries, attach targets, "
    "multiplex flags, open fds into the perf subsystem), components "
    "and preset tables.  Snapshot a Papi together with its system in "
    "one composite payload so the shared references stay shared."
)
class Papi:
    """One initialized PAPI library instance bound to a system."""

    def __init__(
        self,
        system: System,
        mode: str = "hybrid",
        pfm: Optional[Pfmlib] = None,
        preset_csv: Optional[str] = None,
    ):
        if mode not in ("hybrid", "legacy"):
            raise ValueError(f"unknown PAPI mode {mode!r}")
        self.system = system
        self.mode = mode
        self.pfm = pfm if pfm is not None else Pfmlib(system)
        # Optional PAPI_events.csv preset definitions (§V-2); these take
        # precedence over the built-in preset table.
        self._csv_presets: dict = {}
        if preset_csv is not None:
            from repro.papi.events_csv import load_preset_table, parse_events_csv

            self._csv_presets = load_preset_table(
                parse_events_csv(preset_csv),
                self.pfm,
                hybrid_aware=(mode == "hybrid"),
            )
        self.perf_event = PerfEventComponent(0, system, self.pfm, mode=mode)
        self.perf_event_uncore = UncoreComponent(1, system, self.pfm)
        self.components: list[Component] = [self.perf_event, self.perf_event_uncore]
        if system.spec.has_rapl:
            self.rapl = RaplComponent(2, system, self.pfm)
            self.components.append(self.rapl)
        self._eventsets: dict[int, EventSet] = {}
        self._next_esid = 1
        self._started: set[int] = set()
        self._overflow_handlers: dict[int, tuple] = {}
        self._overflow_hook_installed = False

    # -- tracing --------------------------------------------------------------

    def _trace(self, call: str, esid: Optional[int] = None, tid=None, **args) -> None:
        """Emit one ``("papi", call)`` event when PAPI tracing is on.

        Values are sanitized for the exporters: non-finite floats (NaN
        reads after sensor dropouts) become ``None`` so dumps stay
        strict JSON and compare equal across runs.  PAPI calls happen
        between ticks (control operations kill any pending macro-tick
        batch), so emission is fastpath-parity-safe by construction.
        """
        tr = self.system.machine.tracer
        if tr is None or not tr.papi:
            return
        payload: dict = {}
        if esid is not None:
            payload["esid"] = esid
        for key, value in args.items():
            if isinstance(value, float) and not math.isfinite(value):
                value = None
            elif isinstance(value, list):
                value = [
                    None
                    if isinstance(v, float) and not math.isfinite(v)
                    else v
                    for v in value
                ]
            payload[key] = value
        tr.emit("papi", call, tid=tid, args=payload)
        tr.metrics.counter("papi.calls", key=call)

    # -- EventSet lifecycle ---------------------------------------------------

    def create_eventset(self) -> int:
        es = EventSet(esid=self._next_esid)
        self._next_esid += 1
        self._eventsets[es.esid] = es
        self._trace("create_eventset", esid=es.esid)
        return es.esid

    def eventset(self, esid: int) -> EventSet:
        es = self._eventsets.get(esid)
        if es is None:
            raise PapiError(PapiErrorCode.ENOEVST, f"no EventSet #{esid}")
        return es

    def attach(self, esid: int, thread: "SimThread") -> None:
        es = self.eventset(esid)
        self._require_stopped(es)
        if es.entries:
            raise PapiError(
                PapiErrorCode.EINVAL,
                "cannot re-attach an EventSet that already has events",
            )
        es.attached = thread
        self._trace("attach", esid=esid, tid=thread.tid)

    def set_multiplex(self, esid: int) -> None:
        es = self.eventset(esid)
        self._require_stopped(es)
        if es.entries:
            raise PapiError(
                PapiErrorCode.EINVAL,
                "PAPI_set_multiplex must be called before events are added",
            )
        es.multiplexed = True
        self._trace("set_multiplex", esid=esid)

    def cleanup_eventset(self, esid: int, caller: Optional["SimThread"] = None) -> None:
        es = self.eventset(esid)
        self._require_stopped(es)
        if es.component is not None:
            es.component.cleanup(es, caller)
        es.entries.clear()
        es.component = None
        self._started.discard(esid)
        self._trace("cleanup_eventset", esid=esid)

    def destroy_eventset(self, esid: int, caller: Optional["SimThread"] = None) -> None:
        es = self.eventset(esid)
        if es.entries:
            self.cleanup_eventset(esid, caller)
        del self._eventsets[esid]
        self._trace("destroy_eventset", esid=esid)

    # -- adding events -----------------------------------------------------------

    def add_event(
        self,
        esid: int,
        name: str,
        caller: Optional["SimThread"] = None,
        component: Optional[str] = None,
    ) -> None:
        """Add a preset or native event to an EventSet.

        ``component`` forces a specific component by name — the
        backwards-compatibility path §V-3 worries about: workflows with
        ``perf_event_uncore`` hardcoded keep working even in hybrid mode,
        where uncore events would otherwise join the combined EventSet.
        """
        es = self.eventset(esid)
        self._require_stopped(es)
        if name.startswith("PAPI_"):
            if component is not None:
                raise PapiError(
                    PapiErrorCode.EINVAL, "presets cannot be routed by component"
                )
            self._add_preset(es, name, caller)
        else:
            self._add_native(es, name, caller, component)
        self._trace("add_event", esid=esid, event=name)

    def add_events(
        self, esid: int, names: Sequence[str], caller: Optional["SimThread"] = None
    ) -> None:
        for name in names:
            self.add_event(esid, name, caller)

    def _component_for(self, info: EventInfo) -> Component:
        if self.mode == "hybrid":
            return self.perf_event
        if info.pmu.name == "rapl":
            if not self.system.spec.has_rapl:
                raise PapiError(PapiErrorCode.ECMP, "machine has no RAPL")
            return self.rapl
        if not info.pmu.is_core:
            return self.perf_event_uncore
        return self.perf_event

    def _bind_component(self, es: EventSet, component: Component) -> None:
        if es.component is None:
            es.component = component
        elif es.component is not component:
            raise PapiError(
                PapiErrorCode.ECNFLCT,
                f"EventSet #{es.esid} belongs to component "
                f"{es.component.name!r}; cannot add {component.name!r} events",
            )

    def _component_by_name(self, name: str) -> Component:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise PapiError(PapiErrorCode.ENOCMP, f"no component named {name!r}")

    def _add_native(
        self, es: EventSet, name: str, caller, component_name: Optional[str] = None
    ) -> None:
        try:
            matches = self.pfm.find_all_matches(name)
        except (PfmError, ValueError) as exc:
            raise PapiError(PapiErrorCode.ENOEVNT, str(exc)) from None
        if len(matches) > 1:
            info = self._pick_default(matches, what=name)
        else:
            info = matches[0]
        if component_name is not None:
            component = self._component_by_name(component_name)
            if not component.supports(info):
                raise PapiError(
                    PapiErrorCode.ECMP,
                    f"component {component_name!r} cannot count {info.fullname}",
                )
        else:
            component = self._component_for(info)
        self._bind_component(es, component)
        slot = component.add_slot(es, info, caller)
        es.entries.append(
            EventEntry(name=name, is_preset=False, slot_indices=[slot])
        )

    def _pick_default(self, matches: list[EventInfo], what: str) -> EventInfo:
        """Resolve an unqualified name that matched several default PMUs.

        Legacy PAPI fails here (§IV-D); the patched library hard-codes a
        preference for the "big" core type's PMU, as the paper does for
        Raptor Lake's P-core.
        """
        if self.mode == "legacy":
            raise PapiError(
                PapiErrorCode.EMISC,
                f"{what!r} matches {len(matches)} default PMUs "
                f"({', '.join(m.pmu.name for m in matches)}); unpatched PAPI "
                "cannot handle multiple default PMUs",
            )
        ranking = self._pmu_capacity_ranking()
        return max(matches, key=lambda m: ranking.get(m.pmu.name, -1))

    def _pmu_capacity_ranking(self) -> dict[str, float]:
        topo = self.system.topology
        return {
            ct.pfm_pmu: ct.capacity * ct.max_freq_mhz for ct in topo.core_types
        }

    def _add_preset(self, es: EventSet, name: str, caller) -> None:
        resolved = self._csv_presets.get(name)
        if resolved is not None:
            infos = []
            for native in resolved.natives:
                try:
                    infos.append(self.pfm.find_event(native))
                except PfmError:
                    continue
            if not infos:
                raise PapiError(
                    PapiErrorCode.ENOEVNT,
                    f"{name}: no CSV-defined native event is available",
                )
            self._bind_component(es, self.perf_event)
            slots = [self.perf_event.add_slot(es, info, caller) for info in infos]
            es.entries.append(
                EventEntry(
                    name=name,
                    is_preset=True,
                    slot_indices=slots,
                    derived="DERIVED_ADD" if len(slots) > 1 else "NOT_DERIVED",
                )
            )
            return
        spec = PRESETS.get(name)
        if spec is None:
            raise PapiError(PapiErrorCode.ENOTPRESET, f"unknown preset {name!r}")
        defaults = self.pfm.default_pmus()
        if not defaults:
            raise PapiError(PapiErrorCode.ENOCMP, "no core PMU detected")
        if self.mode == "legacy" and len(defaults) > 1:
            raise PapiError(
                PapiErrorCode.EMISC,
                f"{name}: presets are ambiguous with {len(defaults)} default "
                "PMUs; unpatched PAPI cannot map presets on heterogeneous "
                "machines",
            )
        infos: list[EventInfo] = []
        for table in defaults:
            native = spec.get(pmu_family(table.name))
            if native is None:
                continue
            try:
                infos.append(self.pfm.find_event(f"{table.name}::{native}"))
            except PfmError:
                continue
        if not infos:
            raise PapiError(
                PapiErrorCode.ENOEVNT, f"{name} maps to no available native event"
            )
        self._bind_component(es, self.perf_event)
        slots = [self.perf_event.add_slot(es, info, caller) for info in infos]
        es.entries.append(
            EventEntry(
                name=name,
                is_preset=True,
                slot_indices=slots,
                derived="DERIVED_ADD" if len(slots) > 1 else "NOT_DERIVED",
            )
        )

    def query_event(self, name: str) -> bool:
        """Whether ``name`` could be added on this system (PAPI_query_event)."""
        try:
            if name.startswith("PAPI_"):
                spec = PRESETS.get(name)
                if spec is None:
                    return False
                return any(
                    pmu_family(t.name) in spec for t in self.pfm.default_pmus()
                )
            self.pfm.find_all_matches(name)
            return True
        except (PfmError, ValueError):
            return False

    # -- counting -----------------------------------------------------------------

    def _require_stopped(self, es: EventSet) -> None:
        if es.running:
            raise PapiError(
                PapiErrorCode.EISRUN, f"EventSet #{es.esid} is currently counting"
            )

    def start(self, esid: int, caller: Optional["SimThread"] = None) -> None:
        es = self.eventset(esid)
        self._require_stopped(es)
        if not es.entries or es.component is None:
            raise PapiError(PapiErrorCode.EINVAL, "EventSet has no events")
        es.component.start(es, caller)
        es.state = PapiState.RUNNING
        self._started.add(esid)
        self._trace("start", esid=esid, **es.trace_args())

    def stop(self, esid: int, caller: Optional["SimThread"] = None) -> list[float]:
        es = self.eventset(esid)
        if not es.running:
            raise PapiError(
                PapiErrorCode.ENOTRUN, f"EventSet #{esid} is not running"
            )
        slot_values = es.component.stop(es, caller)
        es.state = PapiState.STOPPED
        values = self._combine(es, slot_values)
        self._trace("stop", esid=esid, values=values)
        return values

    def read(self, esid: int, caller: Optional["SimThread"] = None) -> list[float]:
        es = self.eventset(esid)
        if esid not in self._started:
            raise PapiError(
                PapiErrorCode.ENOTRUN, f"EventSet #{esid} was never started"
            )
        values = self._combine(es, es.component.read(es, caller))
        self._trace("read", esid=esid, values=values)
        return values

    def last_status(self, esid: int) -> int:
        """Status of the EventSet's most recent read/stop: ``PAPI_OK`` or
        ``PapiErrorCode.ECNFLCT`` when some counters degraded to NaN."""
        return self.eventset(esid).last_status

    def reset(self, esid: int, caller: Optional["SimThread"] = None) -> None:
        es = self.eventset(esid)
        if es.component is None:
            raise PapiError(PapiErrorCode.EINVAL, "EventSet has no events")
        es.component.reset(es, caller)
        self._trace("reset", esid=esid)

    def accum(
        self,
        esid: int,
        values: list[float],
        caller: Optional["SimThread"] = None,
    ) -> list[float]:
        """PAPI_accum: add current counts into ``values``, then reset."""
        current = self.read(esid, caller)
        if len(values) != len(current):
            raise PapiError(
                PapiErrorCode.EINVAL,
                f"accum buffer has {len(values)} entries, EventSet has "
                f"{len(current)}",
            )
        out = [a + b for a, b in zip(values, current)]
        self.reset(esid, caller)
        self._trace("accum", esid=esid, values=out)
        return out

    def _combine(self, es: EventSet, slot_values: list[float]) -> list[float]:
        return [
            sum(slot_values[i] for i in entry.slot_indices)
            for entry in es.entries
        ]

    # -- overflow (PAPI_overflow) ---------------------------------------------------

    def overflow(
        self,
        esid: int,
        event_name: str,
        threshold: int,
        handler,
        caller: Optional["SimThread"] = None,
    ) -> None:
        """PAPI_overflow: call ``handler(esid, sample)`` every
        ``threshold`` counted events.

        On a heterogeneous machine a derived preset's overflow fires from
        whichever core-type PMU is counting — each backing slot samples
        independently.  ``threshold=0`` disables overflow delivery.
        """
        es = self.eventset(esid)
        if not isinstance(es.component, PerfEventComponent):
            raise PapiError(
                PapiErrorCode.ECMP, "overflow requires a perf_event EventSet"
            )
        try:
            entry_index = next(
                i for i, e in enumerate(es.entries) if e.name == event_name
            )
        except StopIteration:
            raise PapiError(
                PapiErrorCode.ENOEVNT,
                f"{event_name!r} is not in EventSet #{esid}",
            ) from None
        fds = es.component.set_overflow(es, entry_index, threshold, caller)
        self._trace("overflow", esid=esid, event=event_name, threshold=threshold)
        self._overflow_handlers.pop(esid, None)
        if threshold > 0:
            self._overflow_handlers[esid] = (handler, fds)
            self._install_overflow_hook()

    def _install_overflow_hook(self) -> None:
        if self._overflow_hook_installed:
            return
        self._overflow_hook_installed = True

        def drain(machine):
            for esid, (handler, fds) in list(self._overflow_handlers.items()):
                for fd in fds:
                    try:
                        ev = self.system.perf._event(fd)
                    except Exception:
                        continue
                    for sample in ev.read_samples():
                        handler(esid, sample)

        self.system.machine.tick_hooks.append(drain)
        # Sampling accruals mark the tick recorder unsteady, so a steady
        # macro-tick batch can never have pending samples for drain to
        # deliver — skipping it during replay is a no-op.
        self.system.machine.mark_hook_fastpath_safe(drain)

    # -- information -------------------------------------------------------------

    def get_real_usec(self) -> int:
        """PAPI_get_real_usec: wall-clock (simulated) microseconds."""
        return int(self.system.machine.now_s * 1e6)

    def get_real_cyc(self) -> int:
        """PAPI_get_real_cyc: TSC-equivalent cycles."""
        return int(self.system.machine.now_s * self.system.machine.tsc_ghz * 1e9)

    def get_virt_usec(self, thread: "SimThread") -> int:
        """PAPI_get_virt_usec: the thread's own CPU time in microseconds."""
        return int(thread.total_runtime_s * 1e6)

    def get_component_info(self, cmp_id: int) -> dict:
        """PAPI_get_component_info-style summary."""
        try:
            comp = self.components[cmp_id]
        except IndexError:
            raise PapiError(
                PapiErrorCode.ENOCMP, f"no component with index {cmp_id}"
            ) from None
        num_native = sum(
            1
            for name in self.pfm.list_events()
            if comp.supports(self.pfm.find_event(name))
        )
        return {
            "name": comp.name,
            "cmp_id": comp.cmp_id,
            "num_native_events": num_native,
            "mode": getattr(comp, "mode", None),
        }

    def get_hardware_info(self) -> PapiHardwareInfo:
        return get_hardware_info(self.system)

    def sysdetect(self) -> DetectionReport:
        return detect_core_types(self.system)

    def num_components(self) -> int:
        return len(self.components)

    def list_events(self, pmu: Optional[str] = None) -> list[str]:
        return list(self.pfm.list_events(pmu))

    def num_groups(self, esid: int) -> int:
        """perf event groups backing the EventSet (§V-5 overhead metric)."""
        es = self.eventset(esid)
        if isinstance(es.component, PerfEventComponent):
            return es.component.num_groups(es)
        return len(es.entries)
