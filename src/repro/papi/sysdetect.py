"""Core-type detection — every strategy from §IV-B, with its pitfalls.

The paper enumerates the ways tools try to discover heterogeneous core
types on Linux, none of which works everywhere:

1. ``cpu_capacity`` sysfs — ARM only, opaque values;
2. ``/proc/cpuinfo`` / MIDR identification — works on ARM, but Intel
   P/E-cores share family/model/stepping so it *cannot* tell them apart;
3. the Intel ``cpuid`` leaf 0x1A — x86 only;
4. scanning ``/sys/devices/*/cpus`` PMU files, perf-style — reliable but
   names depend on boot firmware (devicetree vs ACPI);
5. max-frequency / cache-size heuristics — "cannot always be guaranteed
   to work" (and genuinely fails when clusters share a frequency range).

:func:`detect_core_types` runs them all, reports each outcome, and forms
a consensus the way the paper's sysdetect component would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.kernel.sched.affinity import parse_cpu_list

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


@dataclass
class StrategyResult:
    """Outcome of one detection strategy."""

    strategy: str
    applicable: bool
    classes: dict[str, list[int]] = field(default_factory=dict)
    detail: str = ""

    @property
    def n_classes(self) -> int:
        return len(self.classes)


@dataclass
class DetectionReport:
    """All strategies plus the consensus grouping."""

    results: list[StrategyResult]
    consensus: dict[str, list[int]]

    @property
    def heterogeneous(self) -> bool:
        return len(self.consensus) > 1

    def by_strategy(self, name: str) -> StrategyResult:
        for r in self.results:
            if r.strategy == name:
                return r
        raise KeyError(name)


def _cpu_ids(system: "System") -> list[int]:
    return [c.cpu_id for c in system.topology.cores]


def strategy_cpu_capacity(system: "System") -> StrategyResult:
    """Group CPUs by /sys/devices/system/cpu/cpuX/cpu_capacity (ARM only)."""
    groups: dict[str, list[int]] = {}
    for cpu in _cpu_ids(system):
        path = f"/sys/devices/system/cpu/cpu{cpu}/cpu_capacity"
        try:
            cap = system.sysfs.read(path)
        except FileNotFoundError:
            return StrategyResult(
                "cpu_capacity",
                applicable=False,
                detail="cpu_capacity not exported (non-ARM kernel)",
            )
        groups.setdefault(f"capacity_{cap}", []).append(cpu)
    return StrategyResult(
        "cpu_capacity",
        applicable=True,
        classes=groups,
        detail="opaque 0..1024 capacity values",
    )


def strategy_cpuinfo(system: "System") -> StrategyResult:
    """Group by identification values in /proc/cpuinfo.

    Distinguishes ARM parts; on Intel hybrid machines every CPU reports
    identical family/model/stepping, so a single class comes back even on
    a P+E machine — the pitfall the paper highlights.
    """
    text = system.procfs.read("/proc/cpuinfo")
    groups: dict[str, list[int]] = {}
    cpu = None
    ident: dict[int, str] = {}
    fam = model = step = part = None
    for line in text.splitlines() + [""]:
        if not line.strip():
            if cpu is not None:
                if part is not None:
                    key = f"part_{part}"
                else:
                    key = f"fms_{fam}_{model}_{step}"
                ident[cpu] = key
            cpu = fam = model = step = part = None
            continue
        k, _, v = line.partition(":")
        k, v = k.strip(), v.strip()
        if k == "processor":
            cpu = int(v)
        elif k == "CPU part":
            part = v
        elif k == "cpu family":
            fam = v
        elif k == "model":
            model = v
        elif k == "stepping":
            step = v
    for c, key in ident.items():
        groups.setdefault(key, []).append(c)
    return StrategyResult(
        "cpuinfo",
        applicable=True,
        classes=groups,
        detail="family/model/stepping (x86) or CPU part (ARM)",
    )


def strategy_cpuid(system: "System") -> StrategyResult:
    """Intel cpuid leaf 0x1A core-type field (x86 only)."""
    if not system.machine.cpuid.is_x86():
        return StrategyResult(
            "cpuid_leaf_1a",
            applicable=False,
            detail="cpuid is Intel-specific, not a general interface",
        )
    labels = {0x20: "atom", 0x40: "core"}
    groups: dict[str, list[int]] = {}
    for cpu in _cpu_ids(system):
        ct = system.machine.cpuid.core_type(cpu)
        groups.setdefault(labels.get(ct, f"type_{ct:#x}"), []).append(cpu)
    return StrategyResult(
        "cpuid_leaf_1a",
        applicable=True,
        classes=groups,
        detail="leaf 0x1A EAX[31:24]",
    )


def strategy_pmu_scan(system: "System") -> StrategyResult:
    """perf-style scan of /sys/devices/<pmu>/cpus files."""
    groups: dict[str, list[int]] = {}
    try:
        names = system.sysfs.listdir("/sys/devices")
    except FileNotFoundError:
        return StrategyResult("pmu_scan", applicable=False, detail="no /sys/devices")
    for name in names:
        cpus_path = f"/sys/devices/{name}/cpus"
        if not system.sysfs.exists(cpus_path):
            continue
        cpus = sorted(parse_cpu_list(system.sysfs.read(cpus_path)))
        if cpus:
            groups[name] = cpus
    return StrategyResult(
        "pmu_scan",
        applicable=bool(groups),
        classes=groups,
        detail="PMU names are firmware-dependent on ARM (devicetree vs ACPI)",
    )


def strategy_max_freq(system: "System") -> StrategyResult:
    """Heuristic: group by cpuinfo_max_freq + L2 size."""
    groups: dict[str, list[int]] = {}
    for cpu in _cpu_ids(system):
        base = f"/sys/devices/system/cpu/cpu{cpu}"
        try:
            freq = system.sysfs.read(f"{base}/cpufreq/cpuinfo_max_freq")
            l2 = system.sysfs.read(f"{base}/cache/index2/size")
        except FileNotFoundError:
            return StrategyResult(
                "max_freq_heuristic", applicable=False, detail="cpufreq missing"
            )
        groups.setdefault(f"freq_{freq}_l2_{l2}", []).append(cpu)
    return StrategyResult(
        "max_freq_heuristic",
        applicable=True,
        classes=groups,
        detail="cannot always be guaranteed to work",
    )


def strategy_cpu_types_sysfs(system: "System") -> StrategyResult:
    """The proposed /sys/devices/system/cpu/types interface [Neri 2020].

    Never merged upstream, so this is normally not applicable — unless
    the system was built with ``expose_cpu_types=True``.
    """
    path = "/sys/devices/system/cpu/types"
    if not system.sysfs.exists(path):
        return StrategyResult(
            "cpu_types_sysfs",
            applicable=False,
            detail="proposed interface was not merged upstream",
        )
    groups: dict[str, list[int]] = {}
    for line in system.sysfs.read(path).splitlines():
        name, _, cpus = line.partition(":")
        groups[name.strip()] = sorted(parse_cpu_list(cpus.strip()))
    return StrategyResult("cpu_types_sysfs", applicable=True, classes=groups)


STRATEGIES: list[Callable[["System"], StrategyResult]] = [
    strategy_cpu_types_sysfs,
    strategy_cpuid,
    strategy_cpu_capacity,
    strategy_cpuinfo,
    strategy_pmu_scan,
    strategy_max_freq,
]


def detect_core_types(system: "System") -> DetectionReport:
    """Run every strategy; consensus prefers the PMU scan (kernel-named
    classes), falling back through the priority order."""
    results = [s(system) for s in STRATEGIES]
    consensus: dict[str, list[int]] = {}
    pmu = next(r for r in results if r.strategy == "pmu_scan")
    if pmu.applicable:
        # Only CPU PMUs expose a "cpus" file, so these classes should
        # partition the CPU set; accept them when they do.
        all_cpus = set(_cpu_ids(system))
        covered = set().union(*pmu.classes.values()) if pmu.classes else set()
        if covered == all_cpus and _disjoint(pmu.classes):
            consensus = pmu.classes
    if not consensus:
        for r in results:
            if r.applicable and r.classes and _disjoint(r.classes):
                covered = set().union(*r.classes.values())
                if covered == set(_cpu_ids(system)):
                    consensus = r.classes
                    break
    return DetectionReport(results=results, consensus=consensus)


def _disjoint(classes: dict[str, list[int]]) -> bool:
    seen: set[int] = set()
    for cpus in classes.values():
        s = set(cpus)
        if s & seen:
            return False
        seen |= s
    return True
