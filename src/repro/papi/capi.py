"""C-flavoured PAPI API.

A faithful shim over :class:`repro.papi.library.Papi` with the C
library's calling conventions: integer return codes instead of
exceptions, out-parameters passed as single-element lists, thread
targets by tid, and ``PAPI_strerror`` for diagnostics.  Ported PAPI test
programs (like the paper's ``papi_hybrid_100m_one_eventset``) read
almost line-for-line against this interface::

    api = CApi(system)
    assert api.PAPI_library_init(PAPI_VER_CURRENT) == PAPI_VER_CURRENT

    es = [PAPI_NULL]
    assert api.PAPI_create_eventset(es) == PAPI_OK
    assert api.PAPI_attach(es[0], tid) == PAPI_OK
    assert api.PAPI_add_named_event(es[0], "adl_glc::INST_RETIRED:ANY") == PAPI_OK
    assert api.PAPI_start(es[0]) == PAPI_OK
    ...
    values = [0, 0]
    assert api.PAPI_stop(es[0], values) == PAPI_OK
"""

from __future__ import annotations

from typing import Optional

from repro.papi.consts import PAPI_OK, PapiErrorCode
from repro.papi.error import PapiError
from repro.papi.library import Papi
from repro.system import System

#: The simulated library version (major 7, minor 1 + hybrid support).
PAPI_VER_CURRENT = 0x07010200
PAPI_NULL = -1

_STRERROR = {
    PAPI_OK: "No error",
    PapiErrorCode.EINVAL: "Invalid argument",
    PapiErrorCode.ENOMEM: "Insufficient memory",
    PapiErrorCode.ESYS: "A System/C library call failed",
    PapiErrorCode.ECMP: "Not supported by component",
    PapiErrorCode.ENOEVNT: "Event does not exist",
    PapiErrorCode.ECNFLCT: "Event exists, but cannot be counted due to hardware resource limits",
    PapiErrorCode.ENOTRUN: "EventSet is currently not running",
    PapiErrorCode.EISRUN: "EventSet is currently counting",
    PapiErrorCode.ENOEVST: "No such EventSet available",
    PapiErrorCode.ENOTPRESET: "Event in argument is not a valid preset",
    PapiErrorCode.ENOINIT: "PAPI hasn't been initialized yet",
    PapiErrorCode.ENOCMP: "Component Index isn't set",
    PapiErrorCode.EMISC: "Unknown error code",
}


class CApi:
    """One process's PAPI, C calling conventions."""

    def __init__(self, system: System, mode: str = "hybrid"):
        self._system = system
        self._mode = mode
        self._papi: Optional[Papi] = None

    # -- helpers -------------------------------------------------------------

    def _lib(self) -> Papi:
        if self._papi is None:
            raise PapiError(PapiErrorCode.ENOINIT, "PAPI_library_init not called")
        return self._papi

    def _call(self, fn, *args, **kw) -> int:
        try:
            fn(*args, **kw)
            return PAPI_OK
        except PapiError as exc:
            return int(exc.code)

    # -- the API ---------------------------------------------------------------

    def PAPI_library_init(self, version: int) -> int:
        """Returns the library version on success, or a negative code."""
        if version != PAPI_VER_CURRENT:
            return int(PapiErrorCode.EINVAL)
        self._papi = Papi(self._system, mode=self._mode)
        return PAPI_VER_CURRENT

    def PAPI_is_initialized(self) -> bool:
        return self._papi is not None

    def PAPI_shutdown(self) -> None:
        self._papi = None

    def PAPI_create_eventset(self, eventset_out: list) -> int:
        try:
            eventset_out[0] = self._lib().create_eventset()
            return PAPI_OK
        except PapiError as exc:
            return int(exc.code)

    def PAPI_attach(self, eventset: int, tid: int) -> int:
        try:
            thread = self._system.machine.thread_by_tid(tid)
        except KeyError:
            return int(PapiErrorCode.EINVAL)
        return self._call(self._lib().attach, eventset, thread)

    def PAPI_add_named_event(self, eventset: int, name: str) -> int:
        return self._call(self._lib().add_event, eventset, name)

    def PAPI_start(self, eventset: int) -> int:
        return self._call(self._lib().start, eventset)

    def PAPI_read(self, eventset: int, values_out: list) -> int:
        try:
            values = self._lib().read(eventset)
        except PapiError as exc:
            return int(exc.code)
        if len(values_out) < len(values):
            return int(PapiErrorCode.EINVAL)
        for i, v in enumerate(values):
            values_out[i] = int(v)
        return PAPI_OK

    def PAPI_accum(self, eventset: int, values_io: list) -> int:
        try:
            out = self._lib().accum(eventset, [float(v) for v in values_io])
        except PapiError as exc:
            return int(exc.code)
        for i, v in enumerate(out):
            values_io[i] = int(v)
        return PAPI_OK

    def PAPI_stop(self, eventset: int, values_out: list) -> int:
        try:
            values = self._lib().stop(eventset)
        except PapiError as exc:
            return int(exc.code)
        if len(values_out) < len(values):
            return int(PapiErrorCode.EINVAL)
        for i, v in enumerate(values):
            values_out[i] = int(v)
        return PAPI_OK

    def PAPI_reset(self, eventset: int) -> int:
        return self._call(self._lib().reset, eventset)

    def PAPI_cleanup_eventset(self, eventset: int) -> int:
        return self._call(self._lib().cleanup_eventset, eventset)

    def PAPI_destroy_eventset(self, eventset_io: list) -> int:
        rc = self._call(self._lib().destroy_eventset, eventset_io[0])
        if rc == PAPI_OK:
            eventset_io[0] = PAPI_NULL
        return rc

    def PAPI_num_events(self, eventset: int) -> int:
        try:
            return self._lib().eventset(eventset).num_events
        except PapiError as exc:
            return int(exc.code)

    def PAPI_query_named_event(self, name: str) -> int:
        try:
            ok = self._lib().query_event(name)
        except PapiError as exc:
            return int(exc.code)
        return PAPI_OK if ok else int(PapiErrorCode.ENOEVNT)

    def PAPI_get_real_usec(self) -> int:
        return self._lib().get_real_usec()

    def PAPI_num_components(self) -> int:
        return self._lib().num_components()

    @staticmethod
    def PAPI_strerror(code: int) -> str:
        if code == PAPI_OK:
            return _STRERROR[PAPI_OK]
        try:
            return _STRERROR[PapiErrorCode(code)]
        except (ValueError, KeyError):
            return "Unknown error code"
