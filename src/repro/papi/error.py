"""PAPI errors."""

from __future__ import annotations

from repro.papi.consts import PapiErrorCode


class PapiError(Exception):
    """Raised where the C API would return a negative PAPI error code."""

    def __init__(self, code: PapiErrorCode, message: str):
        super().__init__(message)
        self.code = code

    def __str__(self) -> str:
        return f"PAPI_{self.code.name} ({int(self.code)}): {self.args[0]}"
