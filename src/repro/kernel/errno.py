"""Kernel error codes, matching Linux semantics for perf_event_open."""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    EPERM = 1
    ENOENT = 2
    EBADF = 9
    EBUSY = 16
    EINVAL = 22
    ENOSPC = 28
    ESRCH = 3
    EOPNOTSUPP = 95


class KernelError(OSError):
    """A failed simulated syscall."""

    def __init__(self, errno_: Errno, message: str):
        super().__init__(int(errno_), message)
        self.kernel_errno = errno_

    def __str__(self) -> str:
        return f"[{self.kernel_errno.name}] {self.args[1]}"
