"""Kernel error codes, matching Linux semantics for perf_event_open."""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    EPERM = 1
    ENOENT = 2
    EINTR = 4
    EIO = 5
    EBADF = 9
    EBUSY = 16
    ENODEV = 19
    EINVAL = 22
    ENOSPC = 28
    ESRCH = 3
    EOPNOTSUPP = 95


class KernelError(OSError):
    """A failed simulated syscall."""

    def __init__(self, errno_: Errno, message: str):
        super().__init__(int(errno_), message)
        self.kernel_errno = errno_

    def __str__(self) -> str:
        return f"[{self.kernel_errno.name}] {self.args[1]}"


class KernelFileNotFound(KernelError, FileNotFoundError):
    """ENOENT from a virtual filesystem.

    Inherits both :class:`KernelError` (so all kernel surfaces report a
    consistent ``kernel_errno``) and :class:`FileNotFoundError` (so
    callers probing paths with ``except FileNotFoundError`` keep
    working).
    """

    def __init__(self, path: str):
        super().__init__(Errno.ENOENT, path)
        self.path = path
