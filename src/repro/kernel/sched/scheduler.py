"""Quantum-level CPU scheduler.

A CFS-flavoured scheduler operating at tick granularity: placement is
sticky, contended CPUs timeshare proportionally to weight, idle CPUs pull
waiting work (work-conserving load balancing), and placement of waking
threads is capacity-aware — the highest-capacity idle CPU wins, matching
the performance-first behaviour of Intel Thread Director / EAS on big
cores, which is why an unpinned single thread lands on a P-core and only
visits E-cores when pushed off by other load.

``migrate_jitter`` injects the background-interference migrations the
paper's ``papi_hybrid_100m_one_eventset`` discussion describes ("you might
get 0, 1 million, or something in between depending how the OS scheduled
the process"): with that probability per tick, a running thread is moved
to another allowed CPU.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.checkpoint.surface import snapshot_surface
from repro.hw.topology import CpuTopology

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread


@dataclass
class SchedEntry:
    """One thread's share of one CPU for the coming tick."""

    thread: "SimThread"
    share: float    # fraction of the tick this thread gets


@snapshot_surface(
    state=(
        "topology",
        "rng",
        "migrate_jitter",
        "rebalance_jitter",
        "total_migrations",
        "total_switches",
        "tracer",
        "_prev_assignment",
    ),
    digest_exclude=("tracer",),
    note="All state: the jitter RNG (random.Random pickles its full "
    "Mersenne state), migration/switch totals, and the previous "
    "assignment map that keeps placement sticky across ticks.  The "
    "tracer is a digest-excluded observer set by the machine."
)
class Scheduler:
    """Assigns runnable threads to CPUs once per tick."""

    def __init__(
        self,
        topology: CpuTopology,
        seed: int = 0,
        migrate_jitter: float = 0.0,
        rebalance_jitter: float = 0.0,
    ):
        self.topology = topology
        self.rng = random.Random(seed)
        self.migrate_jitter = migrate_jitter
        self.rebalance_jitter = rebalance_jitter
        self.total_migrations = 0
        self.total_switches = 0
        #: Trace observer, set by the owning Machine when tracing is on.
        self.tracer = None
        self._prev_assignment: dict[int, list[int]] = {}

    # -- helpers -----------------------------------------------------------

    def _allowed_cpus(self, thread: "SimThread") -> list[int]:
        online = self.topology.online_cpus()
        if thread.affinity is None:
            return online
        allowed = sorted(thread.affinity.intersection(online))
        if not allowed:
            # Linux cpuset-fallback semantics: when hotplug empties a
            # task's effective mask, it runs on any online CPU.  The
            # stored affinity is untouched, so the task snaps back as
            # soon as one of its CPUs returns.
            return online
        return allowed

    def _usable(self, thread: "SimThread", cpu_id: int) -> bool:
        """Whether ``thread`` may run on ``cpu_id`` right now (affinity
        plus hotplug state, including the empty-mask fallback)."""
        if not self.topology.core(cpu_id).online:
            return False
        if thread.allowed_on(cpu_id):
            return True
        # Fallback-mode thread: every online CPU is usable.
        return not thread.affinity.intersection(self.topology.online_cpus())

    def _placement_rank(self, cpu_id: int, load: dict[int, int]) -> tuple:
        """Sort key for idle-CPU selection: lowest load, then biggest
        capacity, then primary SMT threads, then lowest id."""
        core = self.topology.core(cpu_id)
        return (
            load[cpu_id],
            -self.topology.capacity_of(cpu_id),
            core.smt_thread,
            cpu_id,
        )

    # -- the per-tick decision ----------------------------------------------

    def schedule(self, runnable: list["SimThread"]) -> dict[int, list[SchedEntry]]:
        """Place ``runnable`` threads; returns cpu -> entries with shares."""
        online = [c for c in self.topology.cores if c.online]
        load: dict[int, int] = {c.cpu_id: 0 for c in online}
        placed: dict[int, list["SimThread"]] = {c.cpu_id: [] for c in online}

        # Jitter first: occasionally kick a thread off its CPU, forcing a
        # fresh placement decision (background interference model), and
        # occasionally let the periodic load balancer pull a thread back
        # to the best-ranked CPU (idle big cores first).
        kicked: set[int] = set()
        rebalanced: set[int] = set()
        if self.migrate_jitter > 0.0 or self.rebalance_jitter > 0.0:
            for t in runnable:
                if t.last_cpu is None:
                    continue
                r = self.rng.random()
                if r < self.migrate_jitter:
                    kicked.add(id(t))
                elif r < self.migrate_jitter + self.rebalance_jitter:
                    rebalanced.add(id(t))

        # Pass 1: sticky placement.
        fresh: list["SimThread"] = []
        for t in runnable:
            if (
                t.last_cpu is not None
                and id(t) not in kicked
                and id(t) not in rebalanced
                and t.last_cpu in placed
                and self._usable(t, t.last_cpu)
            ):
                placed[t.last_cpu].append(t)
                load[t.last_cpu] += 1
            else:
                fresh.append(t)

        # Pass 2: place fresh/kicked threads on the best available CPU.
        for t in fresh:
            allowed = self._allowed_cpus(t)
            if not allowed:
                continue
            if id(t) in kicked:
                # Kicked threads land somewhere else, chosen at random among
                # the other allowed CPUs (interference is not capacity-aware).
                others = [c for c in allowed if c != t.last_cpu] or allowed
                target = self.rng.choice(others)
            else:
                target = min(allowed, key=lambda c: self._placement_rank(c, load))
            placed[target].append(t)
            load[target] += 1

        # Pass 3: work-conserving balance — idle allowed CPUs pull waiters
        # from CPUs running more than one thread.  A single ascending sweep
        # is equivalent to restarting after every move: pass-3 moves only
        # fill idle CPUs (no CPU ever becomes overloaded again) and the
        # idle set only shrinks (an unmovable waiter stays unmovable), so
        # re-scanning already-drained CPUs can never find new work.
        idle = [c for c, ts in placed.items() if not ts]
        if idle:
            for cpu in placed:
                ts = placed[cpu]
                while len(ts) > 1 and idle:
                    # Move the most recently added movable waiter to the
                    # best idle CPU.
                    moved_thread = None
                    for t in reversed(ts):
                        targets = [c for c in idle if self._usable(t, c)]
                        if targets:
                            target = min(
                                targets, key=lambda c: self._placement_rank(c, load)
                            )
                            ts.remove(t)
                            placed[target].append(t)
                            load[cpu] -= 1
                            load[target] += 1
                            idle.remove(target)
                            moved_thread = t
                            break
                    if moved_thread is None:
                        break
                if not idle:
                    break

        # Build entries with proportional shares, and account switches and
        # migrations by diffing against the previous tick.  Trace events
        # fire only on *placement changes* (never on the per-tick
        # timesharing switch accounting): steady placements must stay
        # silent so a macro-tick replay — which skips the scheduler —
        # emits the same event sequence as single-stepping.
        tr = self.tracer
        if tr is not None and not tr.sched:
            tr = None
        result: dict[int, list[SchedEntry]] = {}
        new_assignment: dict[int, list[int]] = {}
        for cpu, ts in placed.items():
            if not ts:
                continue
            total_w = sum(t.weight for t in ts)
            result[cpu] = [SchedEntry(t, t.weight / total_w) for t in ts]
            new_assignment[cpu] = [t.tid for t in ts]
            for t in ts:
                if tr is not None and t.cpu != cpu:
                    if t.cpu is not None:
                        tr.emit("sched", "switch_out", tid=t.tid, cpu=t.cpu)
                    to_type = self.topology.core(cpu).ctype.name
                    if t.last_cpu is not None and t.last_cpu != cpu:
                        from_type = self.topology.core(t.last_cpu).ctype.name
                        tr.emit(
                            "sched",
                            "migrate",
                            tid=t.tid,
                            cpu=cpu,
                            args={
                                "from_cpu": t.last_cpu,
                                "to_cpu": cpu,
                                "from_type": from_type,
                                "to_type": to_type,
                            },
                        )
                        tr.metrics.counter("sched.migrations", key=to_type)
                        if from_type != to_type:
                            tr.metrics.counter(
                                "sched.cross_type_migrations", key=to_type
                            )
                    tr.emit("sched", "switch_in", tid=t.tid, cpu=cpu)
                    tr.metrics.counter("sched.placements", key=to_type)
                if t.last_cpu is not None and t.last_cpu != cpu:
                    t.nr_migrations += 1
                    self.total_migrations += 1
                if t.cpu != cpu or len(ts) > 1:
                    t.nr_switches += 1
                    self.total_switches += 1
                t.cpu = cpu
                t.last_cpu = cpu
        self._prev_assignment = new_assignment
        return result
