"""Kernel CPU scheduler."""

from repro.kernel.sched.affinity import CpuMask, parse_cpu_list, format_cpu_list, taskset
from repro.kernel.sched.scheduler import Scheduler, SchedEntry

__all__ = [
    "CpuMask",
    "parse_cpu_list",
    "format_cpu_list",
    "taskset",
    "Scheduler",
    "SchedEntry",
]
