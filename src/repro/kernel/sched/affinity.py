"""CPU affinity masks and the taskset-style helpers.

The paper's experiments pin HPL threads and the ``papi_hybrid`` test with
``taskset``; the artifact's monitoring script takes core lists such as
``0,2,4,6,8,10,12,14,16-24``.  This module parses and formats that syntax
(the same one the kernel uses in sysfs ``cpus`` files).
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread


def parse_cpu_list(text: str) -> set[int]:
    """Parse a Linux CPU list ("0,2,4-7") into a set of CPU ids."""
    cpus: set[int] = set()
    text = text.strip()
    if not text:
        return cpus
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            lo_s, hi_s = part.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ValueError(f"backwards CPU range: {part!r}")
            cpus.update(range(lo, hi + 1))
        else:
            cpus.add(int(part))
    return cpus


def format_cpu_list(cpus: Iterable[int]) -> str:
    """Format CPU ids the way the kernel does ("0-3,8,10-11")."""
    ids = sorted(set(cpus))
    if not ids:
        return ""
    runs: list[tuple[int, int]] = []
    start = prev = ids[0]
    for c in ids[1:]:
        if c == prev + 1:
            prev = c
            continue
        runs.append((start, prev))
        start = prev = c
    runs.append((start, prev))
    return ",".join(f"{a}" if a == b else f"{a}-{b}" for a, b in runs)


class CpuMask:
    """An affinity mask over a machine's CPUs."""

    def __init__(self, cpus: Iterable[int] | str, n_cpus: int | None = None):
        self.cpus = parse_cpu_list(cpus) if isinstance(cpus, str) else set(cpus)
        if n_cpus is not None:
            bad = {c for c in self.cpus if not 0 <= c < n_cpus}
            if bad:
                raise ValueError(f"CPUs outside the machine: {sorted(bad)}")
        if not self.cpus:
            raise ValueError("affinity mask may not be empty")

    def __contains__(self, cpu: int) -> bool:
        return cpu in self.cpus

    def __iter__(self):
        return iter(sorted(self.cpus))

    def __len__(self) -> int:
        return len(self.cpus)

    def __eq__(self, other) -> bool:
        return isinstance(other, CpuMask) and self.cpus == other.cpus

    def __repr__(self) -> str:
        return f"CpuMask({format_cpu_list(self.cpus)!r})"


def taskset(thread: "SimThread", cpus: Iterable[int] | str, n_cpus: int | None = None) -> None:
    """Bind a thread to a CPU set (sched_setaffinity equivalent)."""
    thread.affinity = CpuMask(cpus, n_cpus).cpus
