"""The simulated ``perf_event`` kernel subsystem.

Reproduces the Linux behaviour the paper builds on:

* one PMU *type* is exported per core type (plus software, uncore and
  RAPL "power" PMUs); the type number is what userspace reads from
  ``/sys/devices/<pmu>/type`` and passes in ``perf_event_attr.type``;
* a per-thread event follows the thread across CPUs, with counter state
  saved/restored at context switch, but **only counts while the thread
  runs on a CPU whose PMU matches the event's PMU type** — the central
  heterogeneity mechanism ("an event might be measuring hardware features
  that do not exist on the new core");
* event *groups* are scheduled atomically and must be homogeneous in PMU
  type (grouping across PMUs fails with EINVAL, which is exactly why PAPI
  needs one group per PMU type);
* when a PMU runs out of hardware counters the kernel multiplexes via
  round-robin rotation, exposing ``time_enabled``/``time_running`` so
  userspace can scale;
* ``read()`` has a syscall cost; ``rdpmc`` offers a cheap user-space read
  for self-monitoring threads.
"""

from repro.kernel.perf.attr import (
    PerfEventAttr,
    PerfType,
    HwConfig,
    SwConfig,
    ReadFormat,
    PERF_PMU_TYPE_SHIFT,
)
from repro.kernel.perf.event import KernelPerfEvent, PerfReadValue, PerfSample
from repro.kernel.perf.subsystem import PerfSubsystem, PerfFd
from repro.kernel.perf.rdpmc import RdpmcReader

__all__ = [
    "PerfEventAttr",
    "PerfType",
    "HwConfig",
    "SwConfig",
    "ReadFormat",
    "PERF_PMU_TYPE_SHIFT",
    "KernelPerfEvent",
    "PerfReadValue",
    "PerfSample",
    "PerfSubsystem",
    "PerfFd",
    "RdpmcReader",
]
