"""Kernel-side PMU descriptors and the registry built from a machine.

Each distinct core type registers its own PMU with its own dynamic type
number (the paper: "a separate PMU type exported for each type of CPU
core"), alongside the software PMU, a package uncore PMU, and — on
machines with RAPL — the ``power`` energy PMU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hw.coretype import ArchEvent
from repro.hw.eventcodes import CODES_BY_PFM_PMU
from repro.kernel.perf.attr import (
    DYNAMIC_PMU_TYPE_BASE,
    HwConfig,
    PerfType,
    SwConfig,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Machine


class PmuKind(enum.Enum):
    CPU = "cpu"
    SOFTWARE = "software"
    UNCORE = "uncore"
    RAPL = "rapl"


#: Generic PERF_TYPE_HARDWARE id -> architectural event.
GENERIC_HW_MAP: dict[int, ArchEvent] = {
    HwConfig.CPU_CYCLES: ArchEvent.CYCLES,
    HwConfig.INSTRUCTIONS: ArchEvent.INSTRUCTIONS,
    HwConfig.CACHE_REFERENCES: ArchEvent.LLC_REFERENCES,
    HwConfig.CACHE_MISSES: ArchEvent.LLC_MISSES,
    HwConfig.BRANCH_INSTRUCTIONS: ArchEvent.BRANCHES,
    HwConfig.BRANCH_MISSES: ArchEvent.BRANCH_MISSES,
    HwConfig.STALLED_CYCLES_BACKEND: ArchEvent.STALLED_CYCLES,
    HwConfig.REF_CPU_CYCLES: ArchEvent.REF_CYCLES,
}

#: RAPL event config values of the Linux ``power`` PMU.
RAPL_CONFIG_PKG = 0x02
RAPL_CONFIG_CORES = 0x01
RAPL_CONFIG_RAM = 0x03

#: The power PMU reports energy in 2^-32 J units (its sysfs scale file).
RAPL_PERF_UNIT_J = 2.0 ** -32


@dataclass
class KernelPmu:
    """One registered PMU."""

    name: str
    type: int
    kind: PmuKind
    cpus: list[int] = field(default_factory=list)   # sysfs "cpus"/"cpumask"
    decode: dict[int, ArchEvent] = field(default_factory=dict)
    n_counters: int = 8
    n_fixed: int = 3

    def decodes(self, config: int) -> bool:
        return config in self.decode

    def arch_event(self, config: int) -> ArchEvent:
        return self.decode[config]


class PmuRegistry:
    """All PMUs of one machine, indexed by type number and name."""

    def __init__(self) -> None:
        self.by_type: dict[int, KernelPmu] = {}
        self.by_name: dict[str, KernelPmu] = {}
        self._next_type = DYNAMIC_PMU_TYPE_BASE

    def register(self, pmu: KernelPmu) -> KernelPmu:
        if pmu.type in self.by_type:
            raise ValueError(f"PMU type {pmu.type} already registered")
        if pmu.name in self.by_name:
            raise ValueError(f"PMU name {pmu.name!r} already registered")
        self.by_type[pmu.type] = pmu
        self.by_name[pmu.name] = pmu
        return pmu

    def alloc_type(self) -> int:
        t = self._next_type
        self._next_type += 1
        return t

    def cpu_pmus(self) -> list[KernelPmu]:
        return [p for p in self.by_type.values() if p.kind is PmuKind.CPU]

    def default_cpu_pmu(self) -> KernelPmu:
        """The PMU generic PERF_TYPE_HARDWARE events fall through to.

        On hybrid kernels this is the boot CPU's PMU — the P-core/big PMU
        when cpu0 is a P-core, the LITTLE PMU on boards like the RK3399
        where cpu0 is a LITTLE core.
        """
        cpu_pmus = self.cpu_pmus()
        if not cpu_pmus:
            raise LookupError("no CPU PMU registered")
        return min(cpu_pmus, key=lambda p: min(p.cpus) if p.cpus else 1 << 30)

    @classmethod
    def for_machine(cls, machine: "Machine") -> "PmuRegistry":
        reg = cls()
        reg.register(
            KernelPmu(
                name="software",
                type=int(PerfType.SOFTWARE),
                kind=PmuKind.SOFTWARE,
                decode={
                    int(SwConfig.CONTEXT_SWITCHES): ArchEvent.CONTEXT_SWITCHES,
                    int(SwConfig.CPU_MIGRATIONS): ArchEvent.MIGRATIONS,
                    # Clock events: values come from thread runtime, in ns.
                    int(SwConfig.CPU_CLOCK): ArchEvent.CYCLES,
                    int(SwConfig.TASK_CLOCK): ArchEvent.CYCLES,
                },
                n_counters=1 << 16,
            )
        )
        topo = machine.topology
        for ctype in topo.core_types:
            codes = CODES_BY_PFM_PMU.get(ctype.pfm_pmu, {})
            decode = {
                cfg: ev for cfg, ev in codes.items() if ctype.supports_event(ev)
            }
            reg.register(
                KernelPmu(
                    name=ctype.pmu_name,
                    type=reg.alloc_type(),
                    kind=PmuKind.CPU,
                    cpus=topo.cpus_of_type(ctype.name),
                    decode=decode,
                    n_counters=ctype.n_gp_counters,
                    n_fixed=ctype.n_fixed_counters,
                )
            )
        # Package uncore PMU: LLC-level events, counted package-wide.
        reg.register(
            KernelPmu(
                name="uncore_llc",
                type=reg.alloc_type(),
                kind=PmuKind.UNCORE,
                cpus=[0],
                decode={
                    0x01: ArchEvent.LLC_REFERENCES,
                    0x02: ArchEvent.LLC_MISSES,
                },
                n_counters=4,
            )
        )
        if machine.spec.has_rapl:
            reg.register(
                KernelPmu(
                    name="power",
                    type=reg.alloc_type(),
                    kind=PmuKind.RAPL,
                    cpus=[0],
                    decode={
                        # RAPL configs do not map to ArchEvents; the
                        # subsystem special-cases them.  Keep keys so
                        # validation accepts them.
                        RAPL_CONFIG_PKG: ArchEvent.CYCLES,
                        RAPL_CONFIG_CORES: ArchEvent.CYCLES,
                        RAPL_CONFIG_RAM: ArchEvent.CYCLES,
                    },
                    n_counters=8,
                )
            )
        return reg
