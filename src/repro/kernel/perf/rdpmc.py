"""User-space counter reads (``rdpmc``).

On x86 a self-monitoring thread can read its own active counters with the
``rdpmc`` instruction via the mmap'd perf page, skipping the read()
syscall entirely — the "fast" path the paper's §V-5 wants preserved.  The
read is only valid while the calling thread is the event's target *and*
is currently running on a CPU whose PMU matches the event; otherwise the
mmap page's ``index`` field is zero and userspace must fall back to the
syscall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.kernel.perf.pmu import PmuKind
from repro.kernel.perf.subsystem import PerfSubsystem

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread


@dataclass
class RdpmcResult:
    """Outcome of one user-space read attempt."""

    valid: bool
    value: int = 0
    reason: str = ""


class RdpmcReader:
    """Reads one event's counter from user space."""

    def __init__(self, subsystem: PerfSubsystem, fd: int):
        self.subsystem = subsystem
        self.fd = fd

    def read(self, caller: "SimThread") -> RdpmcResult:
        self.subsystem.cost.charge(caller, "rdpmc")
        ev = self.subsystem._event(self.fd)
        if ev.pmu.kind is not PmuKind.CPU:
            return RdpmcResult(False, reason="rdpmc only covers CPU PMU events")
        if ev.target_tid != caller.tid:
            return RdpmcResult(False, reason="not the event's target thread")
        cpu: Optional[int] = caller.cpu if caller.cpu is not None else caller.last_cpu
        if cpu is None:
            return RdpmcResult(False, reason="caller not on a CPU")
        core = self.subsystem.machine.topology.core(cpu)
        if self.subsystem.registry.by_name[core.ctype.pmu_name].type != ev.pmu.type:
            # Running on the other core type: the counter is not live here.
            return RdpmcResult(False, reason="event PMU does not match current core")
        if not ev.enabled:
            return RdpmcResult(False, reason="event disabled")
        return RdpmcResult(True, value=int(ev.count))
