"""``perf_event_open`` and friends.

:class:`PerfSubsystem` is the syscall surface: ``perf_event_open``,
``ioctl`` (enable/disable/reset, optionally group-wide), ``read`` and
``close``.  It validates requests the way Linux does — in particular the
rules the paper's PAPI redesign has to live with:

* an event group may not mix CPU PMU types (EINVAL);
* a CPU-PMU event bound to a CPU the PMU does not cover is rejected;
* generic ``PERF_TYPE_HARDWARE`` events on a hybrid machine either carry
  the target PMU in the high config bits or fall through to the boot
  CPU's PMU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.hw.coretype import ArchEvent
from repro.hw.topology import Core
from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf.attr import PerfEventAttr, PerfType, ReadFormat
from repro.kernel.perf.event import KernelPerfEvent, PerfReadValue
from repro.kernel.perf.pmu import (
    GENERIC_HW_MAP,
    KernelPmu,
    PmuKind,
    PmuRegistry,
    RAPL_CONFIG_CORES,
    RAPL_CONFIG_PKG,
    RAPL_CONFIG_RAM,
    RAPL_PERF_UNIT_J,
)
from repro.kernel.perf.attr import SwConfig
from repro.kernel.syscall_cost import SyscallCostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Machine
    from repro.sim.task import SimThread

#: How often the kernel rotates multiplexed event groups (per-thread
#: runtime clock), matching the scheduler-tick-driven rotation in Linux.
MUX_ROTATION_PERIOD_S = 0.004


class PerfIoctl(enum.Enum):
    ENABLE = "enable"
    DISABLE = "disable"
    RESET = "reset"


@dataclass
class PerfFd:
    fd: int
    event: KernelPerfEvent


class PerfSubsystem:
    """The kernel perf_event layer of one machine."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.registry = PmuRegistry.for_machine(machine)
        self.cost = SyscallCostModel()
        self._fds: dict[int, KernelPerfEvent] = {}
        self._next_fd = 3
        self._thread_events: dict[int, list[KernelPerfEvent]] = {}
        self._cpuwide_events: dict[int, list[KernelPerfEvent]] = {}
        self._uncore_events: list[KernelPerfEvent] = []
        self._rapl_events: list[KernelPerfEvent] = []
        # cpu_id -> PMU type number, for the hot accrual path.
        self._cpu_pmu_type = [
            self.registry.by_name[c.ctype.pmu_name].type
            for c in machine.topology.cores
        ]
        # Hardware counters stolen from each PMU by outside users (the
        # classic case: the NMI watchdog pins one fixed counter); shrinks
        # the budget groups and the multiplexer can use.
        self._reserved: dict[int, int] = {}
        machine.account_hooks.append(self._account)
        machine.tick_hooks.append(self._on_tick)

    def reserve_counters(self, pmu_name: str, n: int) -> None:
        """Model an external consumer (e.g. the NMI watchdog) holding
        ``n`` hardware counters of ``pmu_name``."""
        pmu = self.registry.by_name[pmu_name]
        if n < 0 or n > pmu.n_counters + pmu.n_fixed:
            raise ValueError(
                f"cannot reserve {n} of {pmu.n_counters + pmu.n_fixed} counters"
            )
        self._reserved[pmu.type] = n

    def _budget(self, pmu: KernelPmu) -> int:
        return pmu.n_counters + pmu.n_fixed - self._reserved.get(pmu.type, 0)

    # ------------------------------------------------------------------ open

    def perf_event_open(
        self,
        attr: PerfEventAttr,
        pid: int,
        cpu: int,
        group_fd: int = -1,
        flags: int = 0,
        caller: Optional["SimThread"] = None,
    ) -> int:
        self.cost.charge(caller, "perf_event_open")
        if pid == -1 and cpu == -1:
            raise KernelError(Errno.EINVAL, "pid == -1 requires cpu >= 0")

        pmu, arch_event, rapl_domain = self._resolve(attr)

        target_tid: Optional[int] = None
        target_cpu: Optional[int] = None
        if pid >= 0:
            try:
                self.machine.thread_by_tid(pid)
            except KeyError:
                raise KernelError(Errno.ESRCH, f"no such thread {pid}") from None
            target_tid = pid
        else:
            if not 0 <= cpu < self.machine.topology.n_cpus:
                raise KernelError(Errno.EINVAL, f"no such cpu {cpu}")
            if pmu.kind is PmuKind.CPU and cpu not in pmu.cpus:
                raise KernelError(
                    Errno.EINVAL,
                    f"PMU {pmu.name} does not cover cpu {cpu} "
                    f"(covers {pmu.cpus})",
                )
            target_cpu = cpu

        leader: Optional[KernelPerfEvent] = None
        if group_fd != -1:
            leader = self._fds.get(group_fd)
            if leader is None:
                raise KernelError(Errno.EBADF, f"bad group_fd {group_fd}")
            if not leader.is_group_leader:
                raise KernelError(Errno.EINVAL, "group_fd is not a group leader")
            if (leader.target_tid, leader.target_cpu) != (target_tid, target_cpu):
                raise KernelError(
                    Errno.EINVAL, "group members must share the leader's target"
                )
            self._check_group_compatible(leader, pmu)

        event = KernelPerfEvent(
            attr=attr,
            pmu=pmu,
            target_tid=target_tid,
            target_cpu=target_cpu,
            group_leader=leader,
            arch_event=arch_event,
        )
        if rapl_domain is not None:
            event._rapl_domain = rapl_domain  # type: ignore[attr-defined]

        if leader is not None and pmu.kind is PmuKind.CPU:
            if leader.hw_counters_needed() > self._budget(pmu):
                leader.siblings.remove(event)
                raise KernelError(
                    Errno.EINVAL,
                    f"group exceeds {pmu.name}'s "
                    f"{self._budget(pmu)} available hardware counters",
                )

        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = event
        if target_tid is not None:
            self._thread_events.setdefault(target_tid, []).append(event)
        elif pmu.kind is PmuKind.UNCORE:
            self._uncore_events.append(event)
        elif pmu.kind is PmuKind.RAPL:
            self._rapl_events.append(event)
        else:
            self._cpuwide_events.setdefault(target_cpu, []).append(event)
        if not attr.disabled:
            self._arm(event)
        return fd

    def _resolve(
        self, attr: PerfEventAttr
    ) -> tuple[KernelPmu, Optional[ArchEvent], Optional[object]]:
        """Map attr -> (pmu, architectural event, rapl domain)."""
        if attr.type == PerfType.HARDWARE:
            hint = attr.pmu_type_hint()
            if hint is not None:
                pmu = self.registry.by_type.get(hint)
                if pmu is None or pmu.kind is not PmuKind.CPU:
                    raise KernelError(
                        Errno.ENOENT, f"no CPU PMU with type {hint}"
                    )
            else:
                pmu = self.registry.default_cpu_pmu()
            base = attr.base_config()
            arch = GENERIC_HW_MAP.get(base)
            if arch is None:
                raise KernelError(
                    Errno.EINVAL, f"unknown generic hardware event {base:#x}"
                )
            if arch not in pmu.decode.values():
                raise KernelError(
                    Errno.EINVAL,
                    f"{pmu.name} cannot count {arch.name}",
                )
            return pmu, arch, None

        if attr.type == PerfType.SOFTWARE:
            pmu = self.registry.by_type[int(PerfType.SOFTWARE)]
            if attr.config not in pmu.decode:
                raise KernelError(
                    Errno.EINVAL, f"unsupported software event {attr.config:#x}"
                )
            return pmu, pmu.decode[attr.config], None

        pmu = self.registry.by_type.get(attr.type)
        if pmu is None:
            raise KernelError(Errno.ENOENT, f"no PMU with type {attr.type}")
        if pmu.kind is PmuKind.RAPL:
            if attr.config not in (
                RAPL_CONFIG_PKG,
                RAPL_CONFIG_CORES,
                RAPL_CONFIG_RAM,
            ):
                raise KernelError(
                    Errno.EINVAL, f"unknown RAPL event {attr.config:#x}"
                )
            rapl = self.machine.rapl
            domain = {
                RAPL_CONFIG_PKG: rapl.package,
                RAPL_CONFIG_CORES: rapl.cores,
                RAPL_CONFIG_RAM: rapl.dram,
            }[attr.config]
            return pmu, None, domain
        if not pmu.decodes(attr.base_config()):
            raise KernelError(
                Errno.EINVAL,
                f"PMU {pmu.name} does not decode config {attr.base_config():#x}",
            )
        return pmu, pmu.arch_event(attr.base_config()), None

    def _check_group_compatible(self, leader: KernelPerfEvent, pmu: KernelPmu) -> None:
        """Software events may join any group; everything else must match PMUs."""
        if pmu.kind is PmuKind.SOFTWARE:
            return
        for member in leader.group_events():
            if member.pmu.kind is PmuKind.SOFTWARE:
                continue
            if member.pmu.type != pmu.type:
                raise KernelError(
                    Errno.EINVAL,
                    f"cannot group {pmu.name} event with {member.pmu.name} "
                    "event: event groups cannot span PMUs",
                )

    # ---------------------------------------------------------------- ioctls

    def ioctl(
        self,
        fd: int,
        op: PerfIoctl,
        flag_group: bool = False,
        caller: Optional["SimThread"] = None,
    ) -> None:
        self.cost.charge(caller, "ioctl")
        event = self._event(fd)
        targets = event.group_events() if flag_group else [event]
        for ev in targets:
            if op is PerfIoctl.ENABLE:
                self._arm(ev)
            elif op is PerfIoctl.DISABLE:
                ev.disable()
            elif op is PerfIoctl.RESET:
                ev.reset()
                self._rebase(ev)

    def _arm(self, ev: KernelPerfEvent) -> None:
        ev.enable()
        self._rebase(ev)

    def _rebase(self, ev: KernelPerfEvent) -> None:
        """Snapshot baselines for events counted by differencing."""
        if ev.pmu.kind is PmuKind.SOFTWARE and ev.target_tid is not None:
            ev._sw_base = self._sw_stat(ev)
        if ev.pmu.kind is PmuKind.RAPL:
            ev._rapl_base = ev._rapl_domain.energy_j  # type: ignore[attr-defined]

    def _sw_stat(self, ev: KernelPerfEvent) -> float:
        thread = self.machine.thread_by_tid(ev.target_tid)
        if ev.attr.config == SwConfig.CONTEXT_SWITCHES:
            return float(thread.nr_switches)
        if ev.attr.config == SwConfig.CPU_MIGRATIONS:
            return float(thread.nr_migrations)
        if ev.attr.config in (SwConfig.CPU_CLOCK, SwConfig.TASK_CLOCK):
            # On-CPU time (spinning included), in nanoseconds like Linux.
            return thread.total_runtime_s * 1e9
        return 0.0

    # ------------------------------------------------------------------ read

    def read(
        self, fd: int, caller: Optional["SimThread"] = None
    ) -> PerfReadValue | list[PerfReadValue]:
        event = self._event(fd)
        group = event.wants(ReadFormat.GROUP)
        self.cost.charge(caller, "read_group" if group else "read")
        if group:
            return [self._materialize(ev) for ev in event.group_events()]
        return self._materialize(event)

    def _materialize(self, ev: KernelPerfEvent) -> PerfReadValue:
        if ev.pmu.kind is PmuKind.SOFTWARE and ev.target_tid is not None:
            base = ev._sw_base if ev._sw_base is not None else 0.0
            ev.count = self._sw_stat(ev) - base
        elif ev.pmu.kind is PmuKind.RAPL:
            base = ev._rapl_base if ev._rapl_base is not None else 0.0
            joules = ev._rapl_domain.energy_j - base  # type: ignore[attr-defined]
            ev.count = joules / RAPL_PERF_UNIT_J
        return ev.read_value()

    def close(self, fd: int, caller: Optional["SimThread"] = None) -> None:
        self.cost.charge(caller, "close")
        event = self._fds.pop(fd, None)
        if event is None:
            raise KernelError(Errno.EBADF, f"bad fd {fd}")
        event.closed = True
        event.disable()
        for bucket in (
            self._thread_events.get(event.target_tid or -2, []),
            self._cpuwide_events.get(
                event.target_cpu if event.target_cpu is not None else -2, []
            ),
            self._uncore_events,
            self._rapl_events,
        ):
            if event in bucket:
                bucket.remove(event)

    def _event(self, fd: int) -> KernelPerfEvent:
        ev = self._fds.get(fd)
        if ev is None:
            raise KernelError(Errno.EBADF, f"bad fd {fd}")
        return ev

    # ------------------------------------------------------------- accounting

    def _account(
        self, thread: "SimThread", core: Core, values: np.ndarray, time_s: float
    ) -> None:
        core_pmu_type = self._cpu_pmu_type[core.cpu_id]
        now_s = self.machine.now_s
        events = self._thread_events.get(thread.tid)
        if events:
            active = self._mux_active(thread, core_pmu_type, events)
            for ev in events:
                ev.accrue(
                    core_pmu_type,
                    values,
                    time_s,
                    counting_allowed=ev.group_leader in active,
                    now_s=now_s,
                    cpu=core.cpu_id,
                )
        for ev in self._cpuwide_events.get(core.cpu_id, ()):
            ev.accrue_cpuwide(values)
        for ev in self._uncore_events:
            ev.accrue_uncore(values)

    def _mux_active(
        self,
        thread: "SimThread",
        core_pmu_type: int,
        events: list[KernelPerfEvent],
    ) -> set[KernelPerfEvent]:
        """Group leaders currently holding counters on this core's PMU."""
        leaders: list[KernelPerfEvent] = []
        for ev in events:
            if not ev.is_group_leader or not ev.enabled:
                continue
            if ev.pmu.kind is PmuKind.CPU and ev.pmu.type != core_pmu_type:
                # Foreign-PMU groups take no counters here; mark active so
                # software members keep counting.
                leaders.append(ev)
                continue
            leaders.append(ev)
        cpu_leaders = [
            ev
            for ev in leaders
            if ev.pmu.kind is PmuKind.CPU and ev.pmu.type == core_pmu_type
        ]
        if not cpu_leaders:
            return set(leaders)
        pmu = cpu_leaders[0].pmu
        budget = self._budget(pmu)
        needed = sum(ev.hw_counters_needed() for ev in cpu_leaders)
        if needed <= budget:
            return set(leaders)
        # Rotate: pinned groups first, then round-robin by thread runtime.
        active: set[KernelPerfEvent] = {
            ev for ev in leaders if ev not in cpu_leaders
        }
        pinned = [ev for ev in cpu_leaders if ev.attr.pinned]
        rotating = [ev for ev in cpu_leaders if not ev.attr.pinned]
        for ev in pinned:
            need = ev.hw_counters_needed()
            if need <= budget:
                active.add(ev)
                budget -= need
        if rotating:
            start = int(thread.total_runtime_s / MUX_ROTATION_PERIOD_S) % len(rotating)
            for i in range(len(rotating)):
                ev = rotating[(start + i) % len(rotating)]
                need = ev.hw_counters_needed()
                if need <= budget:
                    active.add(ev)
                    budget -= need
                else:
                    break
        return active

    def _on_tick(self, machine: "Machine") -> None:
        dt = machine.clock.dt_s
        for ev in self._uncore_events:
            ev.accrue_wall_time(dt)
        for ev in self._rapl_events:
            ev.accrue_wall_time(dt)
        for bucket in self._cpuwide_events.values():
            for ev in bucket:
                ev.accrue_wall_time(dt)
