"""``perf_event_open`` and friends.

:class:`PerfSubsystem` is the syscall surface: ``perf_event_open``,
``ioctl`` (enable/disable/reset, optionally group-wide), ``read`` and
``close``.  It validates requests the way Linux does — in particular the
rules the paper's PAPI redesign has to live with:

* an event group may not mix CPU PMU types (EINVAL);
* a CPU-PMU event bound to a CPU the PMU does not cover is rejected;
* generic ``PERF_TYPE_HARDWARE`` events on a hybrid machine either carry
  the target PMU in the high config bits or fall through to the boot
  CPU's PMU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.checkpoint.surface import snapshot_surface
from repro.hw.coretype import ArchEvent
from repro.hw.sensor import SensorReadError
from repro.hw.topology import Core
from repro.kernel.errno import Errno, KernelError
from repro.kernel.perf.attr import PerfEventAttr, PerfType, ReadFormat
from repro.kernel.perf.event import KernelPerfEvent, PerfReadValue
from repro.kernel.perf.pmu import (
    GENERIC_HW_MAP,
    KernelPmu,
    PmuKind,
    PmuRegistry,
    RAPL_CONFIG_CORES,
    RAPL_CONFIG_PKG,
    RAPL_CONFIG_RAM,
    RAPL_PERF_UNIT_J,
)
from repro.kernel.perf.attr import SwConfig
from repro.kernel.syscall_cost import SyscallCostModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Machine
    from repro.sim.task import SimThread

#: How often the kernel rotates multiplexed event groups (per-thread
#: runtime clock), matching the scheduler-tick-driven rotation in Linux.
MUX_ROTATION_PERIOD_S = 0.004


class PerfIoctl(enum.Enum):
    ENABLE = "enable"
    DISABLE = "disable"
    RESET = "reset"


@dataclass
class PerfFd:
    fd: int
    event: KernelPerfEvent


class _DispatchEntry:
    """Cached per-(thread, core PMU type) multiplexing decision.

    ``static_active`` is the full active-leader set when no rotation is
    needed (everything fits the counter budget) — the common case, making
    dispatch a dict lookup.  Otherwise ``base_active`` holds the always-on
    leaders (software/foreign-PMU groups plus granted pinned groups),
    ``rotating`` the round-robin queue, and the last computed rotation
    slot is memoized.  Entries are invalidated wholesale by bumping the
    subsystem's ``_dispatch_gen`` on open/close/ioctl/reserve.
    """

    __slots__ = (
        "gen",
        "static_active",
        "base_active",
        "rotating",
        "budget",
        "last_slot",
        "last_active",
    )

    def __init__(self, gen: int):
        self.gen = gen
        self.static_active: Optional[set] = None
        self.base_active: Optional[set] = None
        self.rotating: Optional[list] = None
        self.budget = 0
        self.last_slot = -1
        self.last_active: Optional[set] = None


@snapshot_surface(
    state=(
        "machine",
        "registry",
        "cost",
        "_fds",
        "_next_fd",
        "_thread_events",
        "_cpuwide_events",
        "_uncore_events",
        "_rapl_events",
        "_cpu_pmu_type",
        "_reserved",
        "_fault_budgets",
        "_dispatch_gen",
        "_mux_traced",
        "_mismatch_traced",
    ),
    caches=("_dispatch",),
    rebuild="_init_snapshot_caches",
    digest_exclude=("_mux_traced", "_mismatch_traced"),
    note=(
        "Multiplexing dispatch entries are generation-tagged memos "
        "rebuilt on first use; everything else — fd table, event "
        "contexts with counts and enabled/running clocks, rotation "
        "state via thread runtime, reserved counters, fault budgets, "
        "the dispatch generation itself — is genuine kernel state.  "
        "The last-traced rotation slots and mismatch flags are "
        "serialized (a restored run must not re-emit old transitions) "
        "but digest-excluded: they only exist to deduplicate trace "
        "emission and must not break trace-on/off digest parity."
    ),
)
class PerfSubsystem:
    """The kernel perf_event layer of one machine."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.registry = PmuRegistry.for_machine(machine)
        self.cost = SyscallCostModel()
        self._fds: dict[int, KernelPerfEvent] = {}
        self._next_fd = 3
        self._thread_events: dict[int, list[KernelPerfEvent]] = {}
        self._cpuwide_events: dict[int, list[KernelPerfEvent]] = {}
        self._uncore_events: list[KernelPerfEvent] = []
        self._rapl_events: list[KernelPerfEvent] = []
        # cpu_id -> PMU type number, for the hot accrual path.
        self._cpu_pmu_type = [
            self.registry.by_name[c.ctype.pmu_name].type
            for c in machine.topology.cores
        ]
        # Hardware counters stolen from each PMU by outside users (the
        # classic case: the NMI watchdog pins one fixed counter); shrinks
        # the budget groups and the multiplexer can use.
        self._reserved: dict[int, int] = {}
        # Indexed dispatch: (tid, core_pmu_type) -> _DispatchEntry, valid
        # while its generation matches (bumped by any state-changing call).
        self._init_snapshot_caches()
        self._dispatch_gen = 0
        # Injected transient syscall failures: list of [ops, errno, left]
        # budgets consumed by _maybe_fail (fault-injection hook).
        self._fault_budgets: list[list] = []
        # Trace-emission dedup state: last emitted rotation slot per
        # (tid, pmu type) and current PMU-mismatch flag per event id.
        # Events fire only on transitions, which by construction happen
        # on ticks the macro-tick engine runs live (see repro.trace).
        self._mux_traced: dict[tuple[int, int], int] = {}
        self._mismatch_traced: dict[int, bool] = {}
        machine.account_hooks.append(self._account)
        machine.tick_hooks.append(self._on_tick)
        machine.hotplug_hooks.append(self._on_hotplug)
        # Both hooks record their per-tick effects through the tick
        # recorder, so the macro-tick engine may batch over them.
        machine.mark_hook_fastpath_safe(self._account)
        machine.mark_hook_fastpath_safe(self._on_tick)

    def _init_snapshot_caches(self) -> None:
        self._dispatch: dict[tuple[int, int], _DispatchEntry] = {}

    def reserve_counters(self, pmu_name: str, n: int) -> None:
        """Model an external consumer (e.g. the NMI watchdog) holding
        ``n`` hardware counters of ``pmu_name``."""
        pmu = self.registry.by_name[pmu_name]
        if n < 0 or n > pmu.n_counters + pmu.n_fixed:
            raise ValueError(
                f"cannot reserve {n} of {pmu.n_counters + pmu.n_fixed} counters"
            )
        self._reserved[pmu.type] = n
        self._dispatch_gen += 1

    def _budget(self, pmu: KernelPmu) -> int:
        return pmu.n_counters + pmu.n_fixed - self._reserved.get(pmu.type, 0)

    # ----------------------------------------------------------- fault hooks

    def inject_syscall_failures(
        self,
        errno_: Errno,
        count: int,
        ops: tuple[str, ...] = ("perf_event_open", "ioctl"),
    ) -> None:
        """Make the next ``count`` matching syscalls fail transiently.

        Models EBUSY/EINTR storms: each failing call consumes one unit of
        the budget, so a bounded-retry caller eventually gets through.
        """
        if count > 0:
            self._fault_budgets.append([frozenset(ops), errno_, count])

    def _maybe_fail(self, op: str) -> None:
        for budget in self._fault_budgets:
            ops, errno_, left = budget
            if op in ops and left > 0:
                budget[2] = left - 1
                if budget[2] == 0:
                    self._fault_budgets.remove(budget)
                raise KernelError(errno_, f"injected transient {op} failure")

    def _on_hotplug(self, cpu_id: int, online: bool) -> None:
        """Park/resume events whose target CPU changed hotplug state.

        Thread-bound events follow their thread (which migrates off a
        dead CPU), so only CPU-bound events need parking.  Dispatch
        entries are invalidated wholesale — the scheduler may now place
        threads on a different core type.
        """
        self._dispatch_gen += 1
        for ev in self._cpuwide_events.get(cpu_id, []):
            ev.parked = not online

    # ------------------------------------------------------------------ open

    def perf_event_open(
        self,
        attr: PerfEventAttr,
        pid: int,
        cpu: int,
        group_fd: int = -1,
        flags: int = 0,
        caller: Optional["SimThread"] = None,
    ) -> int:
        self.cost.charge(caller, "perf_event_open")
        self._maybe_fail("perf_event_open")
        if pid == -1 and cpu == -1:
            raise KernelError(Errno.EINVAL, "pid == -1 requires cpu >= 0")

        pmu, arch_event, rapl_domain = self._resolve(attr)

        target_tid: Optional[int] = None
        target_cpu: Optional[int] = None
        if pid >= 0:
            try:
                self.machine.thread_by_tid(pid)
            except KeyError:
                raise KernelError(Errno.ESRCH, f"no such thread {pid}") from None
            target_tid = pid
        else:
            if not 0 <= cpu < self.machine.topology.n_cpus:
                raise KernelError(Errno.EINVAL, f"no such cpu {cpu}")
            if pmu.kind is PmuKind.CPU and cpu not in pmu.cpus:
                raise KernelError(
                    Errno.EINVAL,
                    f"PMU {pmu.name} does not cover cpu {cpu} "
                    f"(covers {pmu.cpus})",
                )
            if pmu.kind is PmuKind.CPU and not self.machine.topology.core(cpu).online:
                raise KernelError(Errno.ENODEV, f"cpu {cpu} is offline")
            target_cpu = cpu

        leader: Optional[KernelPerfEvent] = None
        if group_fd != -1:
            leader = self._fds.get(group_fd)
            if leader is None:
                raise KernelError(Errno.EBADF, f"bad group_fd {group_fd}")
            if not leader.is_group_leader:
                raise KernelError(Errno.EINVAL, "group_fd is not a group leader")
            if (leader.target_tid, leader.target_cpu) != (target_tid, target_cpu):
                raise KernelError(
                    Errno.EINVAL, "group members must share the leader's target"
                )
            self._check_group_compatible(leader, pmu)

        event = KernelPerfEvent(
            attr=attr,
            pmu=pmu,
            target_tid=target_tid,
            target_cpu=target_cpu,
            group_leader=leader,
            arch_event=arch_event,
        )
        if rapl_domain is not None:
            event._rapl_domain = rapl_domain  # type: ignore[attr-defined]

        if leader is not None and pmu.kind is PmuKind.CPU:
            if leader.hw_counters_needed() > self._budget(pmu):
                leader.siblings.remove(event)
                raise KernelError(
                    Errno.EINVAL,
                    f"group exceeds {pmu.name}'s "
                    f"{self._budget(pmu)} available hardware counters",
                )

        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = event
        self._dispatch_gen += 1
        if target_tid is not None:
            self._thread_events.setdefault(target_tid, []).append(event)
        elif pmu.kind is PmuKind.UNCORE:
            self._uncore_events.append(event)
        elif pmu.kind is PmuKind.RAPL:
            self._rapl_events.append(event)
        else:
            self._cpuwide_events.setdefault(target_cpu, []).append(event)
        if not attr.disabled:
            self._arm(event)
        tr = self.machine.tracer
        if tr is not None and tr.perf:
            tr.emit(
                "perf",
                "open",
                tid=target_tid,
                cpu=target_cpu,
                args={"fd": fd, "id": event.id, "pmu": pmu.name},
            )
            tr.metrics.counter("perf.opens", key=pmu.name)
        return fd

    def _resolve(
        self, attr: PerfEventAttr
    ) -> tuple[KernelPmu, Optional[ArchEvent], Optional[object]]:
        """Map attr -> (pmu, architectural event, rapl domain)."""
        if attr.type == PerfType.HARDWARE:
            hint = attr.pmu_type_hint()
            if hint is not None:
                pmu = self.registry.by_type.get(hint)
                if pmu is None or pmu.kind is not PmuKind.CPU:
                    raise KernelError(
                        Errno.ENOENT, f"no CPU PMU with type {hint}"
                    )
            else:
                pmu = self.registry.default_cpu_pmu()
            base = attr.base_config()
            arch = GENERIC_HW_MAP.get(base)
            if arch is None:
                raise KernelError(
                    Errno.EINVAL, f"unknown generic hardware event {base:#x}"
                )
            if arch not in pmu.decode.values():
                raise KernelError(
                    Errno.EINVAL,
                    f"{pmu.name} cannot count {arch.name}",
                )
            return pmu, arch, None

        if attr.type == PerfType.SOFTWARE:
            pmu = self.registry.by_type[int(PerfType.SOFTWARE)]
            if attr.config not in pmu.decode:
                raise KernelError(
                    Errno.EINVAL, f"unsupported software event {attr.config:#x}"
                )
            return pmu, pmu.decode[attr.config], None

        pmu = self.registry.by_type.get(attr.type)
        if pmu is None:
            raise KernelError(Errno.ENOENT, f"no PMU with type {attr.type}")
        if pmu.kind is PmuKind.RAPL:
            if attr.config not in (
                RAPL_CONFIG_PKG,
                RAPL_CONFIG_CORES,
                RAPL_CONFIG_RAM,
            ):
                raise KernelError(
                    Errno.EINVAL, f"unknown RAPL event {attr.config:#x}"
                )
            rapl = self.machine.rapl
            domain = {
                RAPL_CONFIG_PKG: rapl.package,
                RAPL_CONFIG_CORES: rapl.cores,
                RAPL_CONFIG_RAM: rapl.dram,
            }[attr.config]
            return pmu, None, domain
        if not pmu.decodes(attr.base_config()):
            raise KernelError(
                Errno.EINVAL,
                f"PMU {pmu.name} does not decode config {attr.base_config():#x}",
            )
        return pmu, pmu.arch_event(attr.base_config()), None

    def _check_group_compatible(self, leader: KernelPerfEvent, pmu: KernelPmu) -> None:
        """Software events may join any group; everything else must match PMUs."""
        if pmu.kind is PmuKind.SOFTWARE:
            return
        for member in leader.group_events():
            if member.pmu.kind is PmuKind.SOFTWARE:
                continue
            if member.pmu.type != pmu.type:
                raise KernelError(
                    Errno.EINVAL,
                    f"cannot group {pmu.name} event with {member.pmu.name} "
                    "event: event groups cannot span PMUs",
                )

    # ---------------------------------------------------------------- ioctls

    def ioctl(
        self,
        fd: int,
        op: PerfIoctl,
        flag_group: bool = False,
        caller: Optional["SimThread"] = None,
    ) -> None:
        self.cost.charge(caller, "ioctl")
        self._maybe_fail("ioctl")
        self._dispatch_gen += 1
        event = self._event(fd)
        targets = event.group_events() if flag_group else [event]
        for ev in targets:
            if op is PerfIoctl.ENABLE:
                self._arm(ev)
            elif op is PerfIoctl.DISABLE:
                ev.disable()
            elif op is PerfIoctl.RESET:
                ev.reset()
                self._rebase(ev)
        tr = self.machine.tracer
        if tr is not None and tr.perf:
            tr.emit(
                "perf",
                op.value,
                tid=event.target_tid,
                cpu=event.target_cpu,
                args={"fd": fd, "id": event.id, "group": flag_group},
            )

    def _arm(self, ev: KernelPerfEvent) -> None:
        ev.enable()
        self._rebase(ev)

    def _rebase(self, ev: KernelPerfEvent) -> None:
        """Snapshot baselines for events counted by differencing."""
        if ev.pmu.kind is PmuKind.SOFTWARE and ev.target_tid is not None:
            ev._sw_base = self._sw_stat(ev)
        if ev.pmu.kind is PmuKind.RAPL:
            try:
                ev._rapl_base = ev._rapl_domain.visible_energy_j()  # type: ignore[attr-defined]
            except SensorReadError:
                # Sensor dropout at enable time: keep the previous
                # baseline (stale rebase) rather than failing the ioctl.
                pass

    def _sw_stat(self, ev: KernelPerfEvent) -> float:
        thread = self.machine.thread_by_tid(ev.target_tid)
        if ev.attr.config == SwConfig.CONTEXT_SWITCHES:
            return float(thread.nr_switches)
        if ev.attr.config == SwConfig.CPU_MIGRATIONS:
            return float(thread.nr_migrations)
        if ev.attr.config in (SwConfig.CPU_CLOCK, SwConfig.TASK_CLOCK):
            # On-CPU time (spinning included), in nanoseconds like Linux.
            return thread.total_runtime_s * 1e9
        return 0.0

    # ------------------------------------------------------------------ read

    def read(
        self, fd: int, caller: Optional["SimThread"] = None
    ) -> PerfReadValue | list[PerfReadValue]:
        event = self._event(fd)
        group = event.wants(ReadFormat.GROUP)
        self.cost.charge(caller, "read_group" if group else "read")
        self._maybe_fail("read")
        tr = self.machine.tracer
        if tr is not None and not tr.perf:
            tr = None
        if group:
            return [self._materialize(ev, tr) for ev in event.group_events()]
        return self._materialize(event, tr)

    def _materialize(self, ev: KernelPerfEvent, tr=None) -> PerfReadValue:
        if ev.pmu.kind is PmuKind.SOFTWARE and ev.target_tid is not None:
            base = ev._sw_base if ev._sw_base is not None else 0.0
            ev.count = self._sw_stat(ev) - base
        elif ev.pmu.kind is PmuKind.RAPL:
            base = ev._rapl_base if ev._rapl_base is not None else 0.0
            try:
                joules = ev._rapl_domain.visible_energy_j() - base  # type: ignore[attr-defined]
            except SensorReadError as exc:
                raise KernelError(Errno.EIO, str(exc)) from exc
            ev.count = joules / RAPL_PERF_UNIT_J
        rv = ev.read_value()
        if tr is not None:
            tr.emit(
                "perf",
                "read",
                tid=ev.target_tid,
                cpu=ev.target_cpu,
                args={
                    "id": ev.id,
                    "pmu": ev.pmu.name,
                    "value": rv.value,
                    "enabled_ns": rv.time_enabled_ns,
                    "running_ns": rv.time_running_ns,
                },
            )
        return rv

    def close(self, fd: int, caller: Optional["SimThread"] = None) -> None:
        self.cost.charge(caller, "close")
        event = self._fds.pop(fd, None)
        if event is None:
            raise KernelError(Errno.EBADF, f"bad fd {fd}")
        event.closed = True
        event.disable()
        self._dispatch_gen += 1
        tr = self.machine.tracer
        if tr is not None and tr.perf:
            tr.emit(
                "perf",
                "close",
                tid=event.target_tid,
                cpu=event.target_cpu,
                args={"fd": fd, "id": event.id},
            )
        # Detach from the group so GROUP reads and hw_counters_needed()
        # stop seeing the closed event; closing a leader upgrades its
        # siblings to singleton events, as Linux's perf_group_detach does.
        leader = event.group_leader
        if leader is not event:
            if event in leader.siblings:
                leader.siblings.remove(event)
            event.group_leader = event
        elif event.siblings:
            for sibling in event.siblings:
                sibling.group_leader = sibling
            event.siblings = []
        for bucket in (
            self._thread_events.get(event.target_tid or -2, []),
            self._cpuwide_events.get(
                event.target_cpu if event.target_cpu is not None else -2, []
            ),
            self._uncore_events,
            self._rapl_events,
        ):
            if event in bucket:
                bucket.remove(event)

    def _event(self, fd: int) -> KernelPerfEvent:
        ev = self._fds.get(fd)
        if ev is None:
            raise KernelError(Errno.EBADF, f"bad fd {fd}")
        return ev

    # ------------------------------------------------------------- accounting

    def _account(
        self, thread: "SimThread", core: Core, values: np.ndarray, time_s: float
    ) -> None:
        if not self._fds:
            return  # nothing has ever been opened (or all fds closed)
        cpu_id = core.cpu_id
        events = self._thread_events.get(thread.tid)
        cpuwide = self._cpuwide_events.get(cpu_id)
        uncore = self._uncore_events
        if not events and not cpuwide and not uncore:
            return
        rec = self.machine._rec
        tr = self.machine.tracer
        if tr is not None and not tr.perf:
            tr = None
        if events:
            core_pmu_type = self._cpu_pmu_type[cpu_id]
            entry = self._dispatch_entry(thread.tid, core_pmu_type, events)
            active = entry.static_active
            if active is None:
                active = self._rotated_active(entry, thread, rec, tr)
            now_s = self.machine.clock.now_s
            if tr is not None:
                self._note_pmu_mismatches(events, core_pmu_type, cpu_id, tr)
            for ev in events:
                ev.accrue(
                    core_pmu_type,
                    values,
                    time_s,
                    counting_allowed=ev.group_leader in active,
                    now_s=now_s,
                    cpu=cpu_id,
                    rec=rec,
                    tracer=tr,
                )
        if cpuwide:
            for ev in cpuwide:
                ev.accrue_cpuwide(values, rec)
        for ev in uncore:
            ev.accrue_uncore(values, rec)

    def _dispatch_entry(
        self,
        tid: int,
        core_pmu_type: int,
        events: list[KernelPerfEvent],
    ) -> _DispatchEntry:
        """The cached multiplexing decision for one (thread, PMU) pair."""
        key = (tid, core_pmu_type)
        entry = self._dispatch.get(key)
        if entry is not None and entry.gen == self._dispatch_gen:
            return entry
        entry = _DispatchEntry(self._dispatch_gen)
        # Enabled group leaders; foreign-PMU CPU groups take no counters
        # here but stay "active" so their software members keep counting.
        leaders = [ev for ev in events if ev.is_group_leader and ev.enabled]
        cpu_leaders = [
            ev
            for ev in leaders
            if ev.pmu.kind is PmuKind.CPU and ev.pmu.type == core_pmu_type
        ]
        if not cpu_leaders:
            entry.static_active = set(leaders)
        else:
            pmu = cpu_leaders[0].pmu
            budget = self._budget(pmu)
            needed = sum(ev.hw_counters_needed() for ev in cpu_leaders)
            if needed <= budget:
                entry.static_active = set(leaders)
            else:
                # Rotation required: pinned groups are granted counters
                # first (deterministically), the rest round-robin.
                base = {ev for ev in leaders if ev not in cpu_leaders}
                pinned = [ev for ev in cpu_leaders if ev.attr.pinned]
                rotating = [ev for ev in cpu_leaders if not ev.attr.pinned]
                for ev in pinned:
                    need = ev.hw_counters_needed()
                    if need <= budget:
                        base.add(ev)
                        budget -= need
                if not rotating:
                    entry.static_active = base
                else:
                    entry.base_active = base
                    entry.rotating = rotating
                    entry.budget = budget
        self._dispatch[key] = entry
        return entry

    def _note_pmu_mismatches(
        self, events, core_pmu_type: int, cpu_id: int, tr
    ) -> None:
        """Emit begin/end events when an enabled event starts/stops being
        counted on the wrong core-type PMU (enabled-but-not-running).

        Transitions require a migration, enable/disable or hotplug —
        all of which run on live ticks — so emission is path-identical.
        """
        traced = self._mismatch_traced
        for ev in events:
            mismatched = (
                ev.enabled
                and not ev.closed
                and ev.pmu.kind is PmuKind.CPU
                and ev.pmu.type != core_pmu_type
            )
            if mismatched != traced.get(ev.id, False):
                traced[ev.id] = mismatched
                tr.emit(
                    "perf",
                    "pmu_mismatch_begin" if mismatched else "pmu_mismatch_end",
                    tid=ev.target_tid,
                    cpu=cpu_id,
                    args={"id": ev.id, "pmu": ev.pmu.name},
                )
                if mismatched:
                    tr.metrics.counter("perf.pmu_mismatches", key=ev.pmu.name)

    def _rotated_active(
        self, entry: _DispatchEntry, thread: "SimThread", rec=None, tr=None
    ) -> set[KernelPerfEvent]:
        """Active set under rotation, memoized on the rotation slot."""
        rotating = entry.rotating
        n = len(rotating)
        slot = int(thread.total_runtime_s / MUX_ROTATION_PERIOD_S) % n
        if rec is not None:
            rec.mux_guard(thread, slot, n)
        if tr is not None:
            key = (thread.tid, rotating[0].pmu.type)
            if self._mux_traced.get(key) != slot:
                self._mux_traced[key] = slot
                tr.emit(
                    "perf",
                    "mux_rotate",
                    tid=thread.tid,
                    args={
                        "pmu": rotating[0].pmu.name,
                        "slot": slot,
                        "groups": n,
                    },
                )
                tr.metrics.counter("perf.mux_rotations", key=rotating[0].pmu.name)
        if slot == entry.last_slot:
            return entry.last_active
        active = set(entry.base_active)
        budget = entry.budget
        for i in range(n):
            ev = rotating[(slot + i) % n]
            need = ev.hw_counters_needed()
            if need <= budget:
                active.add(ev)
                budget -= need
            else:
                break
        entry.last_slot = slot
        entry.last_active = active
        return active

    def _on_tick(self, machine: "Machine") -> None:
        dt = machine.clock.dt_s
        rec = machine._rec
        for ev in self._uncore_events:
            ev.accrue_wall_time(dt, rec)
        for ev in self._rapl_events:
            ev.accrue_wall_time(dt, rec)
        for bucket in self._cpuwide_events.values():
            for ev in bucket:
                ev.accrue_wall_time(dt, rec)
