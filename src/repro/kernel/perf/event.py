"""Kernel perf events: state, accrual and the heterogeneity rule.

A :class:`KernelPerfEvent` attached to a thread accrues ``time_enabled``
whenever the thread runs with the event enabled, but only accumulates
counts (and ``time_running``) while the thread executes on a CPU whose
PMU type matches the event's — the kernel behaviour the paper describes:
"the kernel tracks the core type and only enables event counters if they
match the core currently being run on."

Multiplexing: when a context has more events of one PMU type than that
PMU has hardware counters, groups rotate round-robin; an event counts
only while its group holds counters, and the ``enabled``/``running``
times let userspace scale the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

import numpy as np

from repro.checkpoint.surface import register_global_counter, snapshot_surface
from repro.hw.coretype import ArchEvent
from repro.kernel.perf.attr import PerfEventAttr, ReadFormat
from repro.kernel.perf.pmu import KernelPmu, PmuKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread

# Event ids are allocated from a plain module global (not an
# ``itertools.count``) so checkpoints can capture and rewind it: events
# opened *after* a restore must receive the same ids the uninterrupted
# run would have handed out.
_next_event_id = 1


def _alloc_event_id() -> int:
    global _next_event_id
    eid = _next_event_id
    _next_event_id += 1
    return eid


def _get_next_event_id() -> int:
    return _next_event_id


def _set_next_event_id(value: int) -> None:
    global _next_event_id
    _next_event_id = value


register_global_counter(
    "kernel.perf.next_event_id", _get_next_event_id, _set_next_event_id
)


@dataclass(frozen=True)
class PerfSample:
    """One overflow sample (the perf-record path).

    The simulation carries no instruction pointers, so a sample records
    *where and when* the overflow happened: timestamp, CPU, thread and
    the PMU that counted — enough for the per-core-type profiles the
    perf tool reports on hybrid machines.
    """

    time_s: float
    cpu: int
    tid: int
    pmu: str


#: Ring-buffer capacity per event; further samples are dropped and
#: counted as lost (like a full perf mmap buffer).
SAMPLE_BUFFER_CAP = 65536

#: Hardware counter width: general-purpose counters are 48 bits on the
#: modelled parts; reads saturate at this value instead of wrapping.
COUNTER_MAX = (1 << 48) - 1


@dataclass
class PerfReadValue:
    """What a perf read() returns for one event."""

    value: int
    time_enabled_ns: int
    time_running_ns: int
    id: int

    def scaled_value(self) -> float:
        """The perf-tool style multiplexing-scaled estimate."""
        if self.time_running_ns == 0:
            return 0.0
        return self.value * self.time_enabled_ns / self.time_running_ns


@snapshot_surface(
    state=(
        "id",
        "attr",
        "pmu",
        "arch_event",
        "target_tid",
        "target_cpu",
        "enabled",
        "count",
        "time_enabled_s",
        "time_running_s",
        "group_leader",
        "siblings",
        "closed",
        "parked",
        "samples",
        "lost_samples",
        "_next_overflow",
        "_sw_base",
        "_rapl_base",
    ),
    note="All state: counts, enabled/running clocks, group links, "
    "parked flag, software/RAPL baselines, sample ring and overflow "
    "cursor.  Ids come from the kernel.perf.next_event_id global "
    "counter, which the snapshot envelope rewinds on restore."
)
class KernelPerfEvent:
    """One opened perf event."""

    def __init__(
        self,
        attr: PerfEventAttr,
        pmu: KernelPmu,
        target_tid: Optional[int],
        target_cpu: Optional[int],
        group_leader: Optional["KernelPerfEvent"] = None,
        arch_event: Optional[ArchEvent] = None,
    ):
        self.id = _alloc_event_id()
        self.attr = attr
        self.pmu = pmu
        self.arch_event = arch_event
        self.target_tid = target_tid
        self.target_cpu = target_cpu
        self.enabled = not attr.disabled
        self.count = 0.0
        self.time_enabled_s = 0.0
        self.time_running_s = 0.0
        self.group_leader = group_leader if group_leader is not None else self
        self.siblings: list[KernelPerfEvent] = []
        if group_leader is not None:
            group_leader.siblings.append(self)
        self.closed = False
        # Parked: the event's target CPU is hotplug-offline.  A parked
        # event keeps accruing enabled time (it is still attached) but
        # neither counts nor accrues running time — so after re-online
        # the enabled/running ratio reflects the outage.
        self.parked = False
        # Software-event baseline snapshots (count = live stat - baseline).
        self._sw_base: Optional[float] = None
        # RAPL baseline (energy joules at enable).
        self._rapl_base: Optional[float] = None
        # Sampling state (attr.sample_period > 0).
        self.samples: list[PerfSample] = []
        self.lost_samples = 0
        self._next_overflow = float(attr.sample_period) if attr.sample_period else None

    # -- group helpers ------------------------------------------------------

    @property
    def is_group_leader(self) -> bool:
        return self.group_leader is self

    def group_events(self) -> list["KernelPerfEvent"]:
        """Leader plus siblings (leader first)."""
        leader = self.group_leader
        return [leader, *leader.siblings]

    def hw_counters_needed(self) -> int:
        """Hardware counters this event's group needs on its PMU."""
        return sum(
            1 for e in self.group_events() if e.pmu.kind is PmuKind.CPU
        )

    # -- state --------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.count = 0.0
        self._sw_base = None
        self._rapl_base = None
        # Linux's PERF_EVENT_IOC_RESET zeroes the count but not the times;
        # we match that.

    # -- accrual (called from the subsystem's account hook) ------------------

    def accrue(
        self,
        core_pmu_type: int,
        values: np.ndarray,
        time_s: float,
        counting_allowed: bool,
        now_s: float = 0.0,
        cpu: int = -1,
        rec=None,
        tracer=None,
    ) -> None:
        """Credit one execution slice of the target thread.

        ``counting_allowed`` is False while the event's group is rotated
        out by the multiplexer.
        """
        if not self.enabled or self.closed:
            return
        self.time_enabled_s += time_s
        if rec is not None:
            rec.scalar(self, "time_enabled_s", time_s)
        if self.pmu.kind is PmuKind.CPU and self.pmu.type != core_pmu_type:
            return  # wrong core type: enabled but not running
        if not counting_allowed:
            return
        self.time_running_s += time_s
        if rec is not None:
            rec.scalar(self, "time_running_s", time_s)
        if self.pmu.kind is PmuKind.CPU and self.arch_event is not None:
            inc = float(values[self.arch_event])
            self.count += inc
            if rec is not None:
                rec.scalar(self, "count", inc)
            if self._next_overflow is not None:
                if self.count >= self._next_overflow:
                    # Sample emission is per-tick state: a crossing tick
                    # is never replayable.
                    if rec is not None:
                        rec.unsteady = True
                    self._record_overflows(now_s, cpu, tracer)
                elif rec is not None:
                    # Below threshold: batching may continue, guarded by
                    # the analytic distance to the crossing.
                    rec.overflow_step(self, inc)

    def _record_overflows(self, now_s: float, cpu: int, tracer=None) -> None:
        """Emit one sample per period crossing within the slice.

        Trace emission is parity-safe by construction: a sampling
        event's accrual marks the tick recorder unsteady, so ticks that
        emit samples are never macro-tick-replayed.
        """
        period = float(self.attr.sample_period)
        while self.count >= self._next_overflow:
            self._next_overflow += period
            if len(self.samples) >= SAMPLE_BUFFER_CAP:
                self.lost_samples += 1
                if tracer is not None:
                    tracer.metrics.counter("perf.lost_samples", key=self.pmu.name)
                continue
            self.samples.append(
                PerfSample(
                    time_s=now_s,
                    cpu=cpu,
                    tid=self.target_tid if self.target_tid is not None else -1,
                    pmu=self.pmu.name,
                )
            )
            if tracer is not None:
                tracer.emit(
                    "perf",
                    "overflow",
                    tid=self.target_tid,
                    cpu=cpu,
                    args={"id": self.id, "pmu": self.pmu.name},
                )
                tracer.metrics.counter("perf.overflows", key=self.pmu.name)

    def read_samples(self) -> list["PerfSample"]:
        """Drain the sample buffer (like reading the mmap ring)."""
        out = self.samples
        self.samples = []
        return out

    def accrue_cpuwide(self, values: np.ndarray, rec=None) -> None:
        """CPU-wide hardware events: count whatever ran on their CPU.

        Their enabled/running clocks follow wall time (accrued per tick),
        since a CPU-wide event keeps "running" through idle.
        """
        if (
            self.enabled
            and not self.closed
            and not self.parked
            and self.arch_event is not None
        ):
            inc = float(values[self.arch_event])
            self.count += inc
            if rec is not None:
                rec.scalar(self, "count", inc)

    def accrue_uncore(self, values: np.ndarray, rec=None) -> None:
        """Uncore events count package traffic from every core."""
        if (
            self.enabled
            and not self.closed
            and not self.parked
            and self.arch_event is not None
        ):
            inc = float(values[self.arch_event])
            self.count += inc
            if rec is not None:
                rec.scalar(self, "count", inc)

    def accrue_wall_time(self, dt_s: float, rec=None) -> None:
        """CPU-wide (uncore/RAPL) events: times advance with wall time.

        A parked event (its CPU is offline) accrues enabled time only —
        its PMU context is gone, so it cannot be running.
        """
        if self.enabled and not self.closed:
            self.time_enabled_s += dt_s
            if rec is not None:
                rec.scalar(self, "time_enabled_s", dt_s)
            if not self.parked:
                self.time_running_s += dt_s
                if rec is not None:
                    rec.scalar(self, "time_running_s", dt_s)

    def saturate(self) -> None:
        """Force the counter to its hardware width (overflow-storm mode)."""
        self.count = float(COUNTER_MAX)
        if self._next_overflow is not None:
            # Re-anchor the overflow threshold so the next accrual emits
            # a bounded number of samples rather than replaying the jump.
            self._next_overflow = self.count + float(self.attr.sample_period)

    def read_value(self) -> PerfReadValue:
        return PerfReadValue(
            value=min(int(self.count), COUNTER_MAX),
            time_enabled_ns=int(self.time_enabled_s * 1e9),
            time_running_ns=int(self.time_running_s * 1e9),
            id=self.id,
        )

    def wants(self, flag: ReadFormat) -> bool:
        return bool(self.attr.read_format & flag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tgt = f"tid={self.target_tid}" if self.target_tid is not None else f"cpu={self.target_cpu}"
        return (
            f"KernelPerfEvent(#{self.id} {self.pmu.name}:{self.attr.base_config():#x} "
            f"{tgt} {'on' if self.enabled else 'off'} count={self.count:.0f})"
        )
