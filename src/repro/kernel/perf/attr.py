"""``perf_event_attr`` and the perf ABI constants we model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PerfType(enum.IntEnum):
    """The static ``perf_event_attr.type`` values from the perf ABI.

    Dynamic PMUs (the per-core-type CPU PMUs, uncore, RAPL power) get
    their type numbers assigned at registration time, published in sysfs;
    those start at :data:`DYNAMIC_PMU_TYPE_BASE`.
    """

    HARDWARE = 0
    SOFTWARE = 1
    TRACEPOINT = 2
    HW_CACHE = 3
    RAW = 4
    BREAKPOINT = 5


#: First type number handed out to dynamically registered PMUs.
DYNAMIC_PMU_TYPE_BASE = 8

#: On hybrid kernels, generic PERF_TYPE_HARDWARE events select the target
#: PMU in the high bits of config: ``config = (pmu_type << 32) | hw_id``.
PERF_PMU_TYPE_SHIFT = 32


class HwConfig(enum.IntEnum):
    """PERF_COUNT_HW_* generic hardware event ids."""

    CPU_CYCLES = 0
    INSTRUCTIONS = 1
    CACHE_REFERENCES = 2
    CACHE_MISSES = 3
    BRANCH_INSTRUCTIONS = 4
    BRANCH_MISSES = 5
    BUS_CYCLES = 6
    STALLED_CYCLES_FRONTEND = 7
    STALLED_CYCLES_BACKEND = 8
    REF_CPU_CYCLES = 9


class SwConfig(enum.IntEnum):
    """PERF_COUNT_SW_* software event ids."""

    CPU_CLOCK = 0
    TASK_CLOCK = 1
    CONTEXT_SWITCHES = 3
    CPU_MIGRATIONS = 4


class ReadFormat(enum.IntFlag):
    """read_format flags controlling what read() returns."""

    NONE = 0
    TOTAL_TIME_ENABLED = 1
    TOTAL_TIME_RUNNING = 2
    ID = 4
    GROUP = 8


@dataclass
class PerfEventAttr:
    """The subset of ``struct perf_event_attr`` the simulation honours."""

    type: int
    config: int
    disabled: bool = True
    inherit: bool = False
    exclude_user: bool = False
    exclude_kernel: bool = False
    exclude_idle: bool = False
    pinned: bool = False
    read_format: ReadFormat = ReadFormat.TOTAL_TIME_ENABLED | ReadFormat.TOTAL_TIME_RUNNING
    sample_period: int = 0
    name: str = ""              # debugging aid, not part of the real ABI
    extra: dict = field(default_factory=dict)

    def pmu_type_hint(self) -> int | None:
        """The PMU type selected by hybrid extended encoding, if any."""
        if self.type == PerfType.HARDWARE and (self.config >> PERF_PMU_TYPE_SHIFT):
            return self.config >> PERF_PMU_TYPE_SHIFT
        return None

    def base_config(self) -> int:
        """config with any hybrid PMU-type bits stripped."""
        return self.config & ((1 << PERF_PMU_TYPE_SHIFT) - 1)
