"""Simulated ``/proc/cpuinfo``.

Reproduces the identification pitfall from §IV-B: on Intel hybrid parts
every logical CPU reports the *same* family/model/stepping and model
name, so ``/proc/cpuinfo`` cannot distinguish P-cores from E-cores.  On
ARM each processor block carries its own ``CPU part``, so big and LITTLE
cores *are* distinguishable there.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.errno import KernelFileNotFound

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Machine


def cpuinfo_text(machine: "Machine") -> str:
    """Render /proc/cpuinfo for the machine."""
    topo = machine.topology
    is_arm = any(ct.vendor == "arm" for ct in topo.core_types)
    blocks: list[str] = []
    for core in topo.cores:
        ct = core.ctype
        if is_arm:
            midr = machine.cpuid.midr(core.cpu_id)
            blocks.append(
                "\n".join(
                    [
                        f"processor\t: {core.cpu_id}",
                        "BogoMIPS\t: 48.00",
                        "Features\t: fp asimd evtstrm aes pmull sha1 sha2 crc32",
                        f"CPU implementer\t: {midr.implementer:#04x}",
                        "CPU architecture: 8",
                        f"CPU variant\t: {midr.variant:#03x}",
                        f"CPU part\t: {midr.part:#05x}",
                        f"CPU revision\t: {midr.revision}",
                    ]
                )
            )
        else:
            freq = machine.governor.freq_of_cpu_mhz(core.cpu_id)
            blocks.append(
                "\n".join(
                    [
                        f"processor\t: {core.cpu_id}",
                        f"vendor_id\t: {machine.spec.vendor_string}",
                        f"cpu family\t: {ct.x86_family}",
                        f"model\t\t: {ct.x86_model}",
                        f"model name\t: {machine.spec.model_string}",
                        f"stepping\t: {ct.x86_stepping}",
                        f"cpu MHz\t\t: {freq:.3f}",
                        f"cache size\t: {ct.l2_kib} KB",
                        f"physical id\t: 0",
                        f"core id\t\t: {core.phys_core}",
                        f"cpu cores\t: {topo.n_physical_cores}",
                        f"siblings\t: {topo.n_cpus}",
                    ]
                )
            )
    return "\n\n".join(blocks) + "\n"


class ProcFs:
    """Minimal /proc with a live cpuinfo."""

    def __init__(self, machine: "Machine"):
        self.machine = machine

    def read(self, path: str) -> str:
        if path.rstrip("/") == "/proc/cpuinfo":
            return cpuinfo_text(self.machine)
        raise KernelFileNotFound(path)
