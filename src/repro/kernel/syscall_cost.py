"""Syscall latency model.

The paper's §V-5 worries that the multi-group EventSet design adds
syscalls ("it will typically take at least two or more relatively
high-latency read syscalls to gather all of the event values").  To make
that overhead measurable inside the simulation, every perf syscall charges
the calling thread a fixed instruction cost (derived from typical
perf_event self-monitoring latencies, cf. Weaver, ISPASS 2015), and a
global tally is kept so experiments can report syscalls-per-operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.task import SimThread

#: Instructions retired per syscall, by syscall name.  Roughly calibrated
#: to ns latencies at ~3 GHz / IPC 1.6 (library+kernel path code).
SYSCALL_COST_INSTRUCTIONS: dict[str, float] = {
    "perf_event_open": 22_000.0,
    "read": 2_600.0,
    "read_group": 3_400.0,      # group reads move more data but in one call
    "ioctl": 1_800.0,
    "close": 2_000.0,
    "rdpmc": 50.0,              # not a syscall: user-space counter read
}


@dataclass
class SyscallStats:
    """Running totals of simulated perf syscalls."""

    calls: dict[str, int] = field(default_factory=dict)
    instructions_charged: float = 0.0

    def record(self, name: str, instructions: float) -> None:
        self.calls[name] = self.calls.get(name, 0) + 1
        self.instructions_charged += instructions

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())

    def snapshot(self) -> "SyscallStats":
        return SyscallStats(dict(self.calls), self.instructions_charged)

    def delta(self, since: "SyscallStats") -> "SyscallStats":
        calls = {
            k: v - since.calls.get(k, 0)
            for k, v in self.calls.items()
            if v - since.calls.get(k, 0)
        }
        return SyscallStats(calls, self.instructions_charged - since.instructions_charged)


class SyscallCostModel:
    """Charges syscall overhead to calling threads and tallies it."""

    def __init__(self, costs: Optional[dict[str, float]] = None):
        self.costs = dict(SYSCALL_COST_INSTRUCTIONS if costs is None else costs)
        self.stats = SyscallStats()

    def charge(self, caller: Optional["SimThread"], name: str) -> float:
        cost = self.costs.get(name, 2_000.0)
        self.stats.record(name, cost)
        if caller is not None:
            caller.inject_overhead(cost)
        return cost
