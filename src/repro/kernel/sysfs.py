"""Simulated ``/sys`` tree.

Everything §IV-B of the paper says tools scrape to figure out a machine's
core types is materialized here:

* ``/sys/devices/<pmu>/type`` and ``.../cpus`` — the per-PMU files the
  perf tool scans (with the ARM firmware-naming quirk: devicetree boards
  and ACPI servers publish different names for the same PMU);
* ``/sys/devices/system/cpu/cpuX/cpu_capacity`` — the opaque 0..1024
  number (ARM only, as on real kernels);
* ``cpufreq`` limits and ``cache`` sizes — the "cannot always be
  guaranteed to work" heuristics;
* thermal zones and the RAPL powercap tree used by the monitoring
  scripts;
* optionally the *proposed but never merged*
  ``/sys/devices/system/cpu/types`` interface [Neri 2020], off by
  default to match reality.

Files are dynamic: reading ``scaling_cur_freq`` reflects the DVFS state
at read time.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.hw.sensor import SensorReadError
from repro.kernel.errno import Errno, KernelError, KernelFileNotFound
from repro.kernel.sched.affinity import format_cpu_list

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.perf.subsystem import PerfSubsystem
    from repro.sim.engine import Machine

Provider = Callable[[], str]
Writer = Callable[[str], None]


class SysFs:
    """A virtual filesystem of path -> content providers.

    Most files are read-only; a few control files (notably
    ``/sys/devices/system/cpu/cpuN/online``) accept :meth:`write`.
    Missing paths raise :class:`KernelFileNotFound` — a
    :class:`KernelError` carrying ``ENOENT`` that is also a
    ``FileNotFoundError`` for backwards compatibility.
    """

    def __init__(
        self,
        machine: "Machine",
        perf: Optional["PerfSubsystem"] = None,
        expose_cpu_types: bool = False,
    ):
        self.machine = machine
        self.perf = perf
        self.expose_cpu_types = expose_cpu_types
        self._files: dict[str, Provider] = {}
        self._writers: dict[str, Writer] = {}
        self._build()

    # -- filesystem interface ----------------------------------------------

    def read(self, path: str) -> str:
        path = path.rstrip("/")
        provider = self._files.get(path)
        if provider is None:
            raise KernelFileNotFound(path)
        try:
            return provider()
        except SensorReadError as exc:
            # A dropped-out sensor surfaces as EIO, like a dead hwmon.
            raise KernelError(Errno.EIO, f"{path}: {exc}") from exc

    def write(self, path: str, value: str) -> None:
        """Write to a control file (``echo value > path``)."""
        path = path.rstrip("/")
        writer = self._writers.get(path)
        if writer is None:
            if path in self._files:
                raise KernelError(Errno.EPERM, f"read-only file: {path}")
            raise KernelFileNotFound(path)
        writer(value.strip())

    def exists(self, path: str) -> bool:
        path = path.rstrip("/")
        if path in self._files:
            return True
        prefix = path + "/"
        return any(p.startswith(prefix) for p in self._files)

    def listdir(self, path: str) -> list[str]:
        path = path.rstrip("/")
        prefix = path + "/"
        names = {
            p[len(prefix):].split("/", 1)[0]
            for p in self._files
            if p.startswith(prefix)
        }
        if not names and path not in self._files:
            raise KernelFileNotFound(path)
        return sorted(names)

    def add(self, path: str, provider: Provider | str, writer: Optional[Writer] = None) -> None:
        if isinstance(provider, str):
            value = provider
            provider = lambda: value  # noqa: E731
        path = path.rstrip("/")
        self._files[path] = provider
        if writer is not None:
            self._writers[path] = writer

    # -- control-file handlers ----------------------------------------------

    def _write_cpu_online(self, cpu: int, value: str) -> None:
        if value == "0":
            self.machine.offline_cpu(cpu)
        elif value == "1":
            self.machine.online_cpu(cpu)
        else:
            raise KernelError(
                Errno.EINVAL, f"cpu{cpu}/online accepts 0 or 1, got {value!r}"
            )

    # -- tree construction ---------------------------------------------------

    def _build(self) -> None:
        m = self.machine
        topo = m.topology
        spec = m.spec
        is_arm = any(ct.vendor == "arm" for ct in topo.core_types)

        # PMU directories.
        if self.perf is not None:
            for pmu in self.perf.registry.by_type.values():
                base = f"/sys/devices/{pmu.name}"
                self.add(f"{base}/type", str(pmu.type))
                if pmu.kind.value == "cpu":
                    self.add(f"{base}/cpus", format_cpu_list(pmu.cpus))
                else:
                    self.add(f"{base}/cpumask", format_cpu_list(pmu.cpus or [0]))

        # Per-CPU directories.  online/offline reflect live hotplug state.
        self.add(
            "/sys/devices/system/cpu/online",
            lambda: format_cpu_list(topo.online_cpus()),
        )
        self.add(
            "/sys/devices/system/cpu/offline",
            lambda: format_cpu_list(topo.offline_cpus()),
        )
        self.add(
            "/sys/devices/system/cpu/possible",
            format_cpu_list(c.cpu_id for c in topo.cores),
        )
        for core in topo.cores:
            cpu = core.cpu_id
            base = f"/sys/devices/system/cpu/cpu{cpu}"
            ct = core.ctype
            if cpu != 0:
                # cpu0 has no online file: not hotpluggable, as on x86.
                self.add(
                    f"{base}/online",
                    (lambda c=core: "1" if c.online else "0"),
                    writer=(lambda v, c=cpu: self._write_cpu_online(c, v)),
                )
            if is_arm:
                # cpu_capacity is exported by arm64 kernels only.
                self.add(f"{base}/cpu_capacity", str(topo.capacity_of(cpu)))
                midr = m.cpuid.midr(cpu)
                self.add(
                    f"{base}/regs/identification/midr_el1",
                    f"{midr.value:#018x}",
                )
            self.add(
                f"{base}/cpufreq/cpuinfo_max_freq", str(ct.max_freq_mhz * 1000)
            )
            self.add(
                f"{base}/cpufreq/cpuinfo_min_freq", str(ct.min_freq_mhz * 1000)
            )
            self.add(
                f"{base}/cpufreq/scaling_cur_freq",
                (lambda c=cpu: str(round(m.governor.freq_of_cpu_mhz(c) * 1000))),
            )
            self.add(f"{base}/topology/core_id", str(core.phys_core))
            self.add(f"{base}/topology/physical_package_id", "0")
            self.add(
                f"{base}/topology/thread_siblings_list",
                format_cpu_list([cpu, *topo.smt_siblings(cpu)]),
            )
            self.add(f"{base}/cache/index0/level", "1")
            self.add(f"{base}/cache/index0/size", f"{ct.l1d_kib}K")
            self.add(f"{base}/cache/index0/type", "Data")
            self.add(f"{base}/cache/index2/level", "2")
            self.add(f"{base}/cache/index2/size", f"{ct.l2_kib}K")
            self.add(f"{base}/cache/index2/type", "Unified")
            llc_kib = round(float(spec.extra.get("llc_mib", 8.0)) * 1024)
            self.add(f"{base}/cache/index3/level", "3")
            self.add(f"{base}/cache/index3/size", f"{llc_kib}K")
            self.add(f"{base}/cache/index3/type", "Unified")

        # The proposed-but-unmerged types interface.
        if self.expose_cpu_types:
            lines = []
            for ct in topo.core_types:
                cpus = format_cpu_list(topo.cpus_of_type(ct.name))
                lines.append(f"{ct.name}: {cpus}")
            self.add("/sys/devices/system/cpu/types", "\n".join(lines))

        # Thermal zone.
        tz = f"/sys/class/thermal/thermal_zone{spec.thermal_zone_index}"
        self.add(f"{tz}/type", spec.thermal_zone_name)
        self.add(f"{tz}/temp", lambda: str(m.thermal.zone.read_millic()))

        # RAPL powercap tree.
        if spec.has_rapl:
            base = "/sys/class/powercap/intel-rapl/intel-rapl:0"
            self.add(f"{base}/name", "package-0")
            self.add(f"{base}/energy_uj", lambda: str(m.rapl.package.read_uj()))
            self.add(
                f"{base}/constraint_0_name", "long_term"
            )
            self.add(
                f"{base}/constraint_0_power_limit_uw",
                str(round(spec.rapl_pl1_w * 1e6)),
            )
            self.add(f"{base}/constraint_1_name", "short_term")
            self.add(
                f"{base}/constraint_1_power_limit_uw",
                str(round(spec.rapl_pl2_w * 1e6)),
            )
            self.add(
                f"{base}:0/name", "core"
            )
            self.add(
                f"{base}:0/energy_uj", lambda: str(m.rapl.cores.read_uj())
            )
            self.add(f"{base}:1/name", "dram")
            self.add(
                f"{base}:1/energy_uj", lambda: str(m.rapl.dram.read_uj())
            )
