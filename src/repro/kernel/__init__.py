"""Simulated Linux kernel services.

The pieces of Linux the paper's tooling stack sits on:

* :mod:`repro.kernel.sched` — CPU scheduler (runqueues, affinity,
  capacity-aware placement, migrations).
* :mod:`repro.kernel.perf` — the ``perf_event`` subsystem: one PMU
  exported per core type, ``perf_event_open()``, per-thread contexts with
  counter save/restore on context switch, event groups, multiplexing,
  and user-space ``rdpmc`` reads.
* :mod:`repro.kernel.sysfs` / :mod:`repro.kernel.procfs` — the virtual
  filesystems tools scrape for core-type detection.
* :mod:`repro.kernel.syscall_cost` — the syscall latency model behind the
  paper's overhead discussion (§V-5).
"""

from repro.kernel.errno import Errno, KernelError

__all__ = ["Errno", "KernelError"]
