"""A complete simulated system: hardware + kernel services.

:class:`System` is the top-level object experiments and the PAPI library
operate on — the equivalent of "a Linux machine": the simulated hardware
(:class:`~repro.sim.engine.Machine`), the perf_event subsystem, and the
virtual /sys and /proc trees.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.hw.machines import MACHINE_PRESETS, MachineSpec
from repro.kernel.perf.subsystem import PerfSubsystem
from repro.kernel.procfs import ProcFs
from repro.kernel.sysfs import SysFs
from repro.sim.engine import Machine


class System:
    """A booted simulated machine."""

    def __init__(
        self,
        spec: Union[MachineSpec, str],
        dt_s: float = 0.01,
        seed: int = 0,
        migrate_jitter: float = 0.0,
        rebalance_jitter: float = 0.0,
        expose_cpu_types: bool = False,
        fastpath: bool = True,
        engine: Optional[str] = None,
        trace=None,
    ):
        if isinstance(spec, str):
            try:
                spec = MACHINE_PRESETS[spec]()
            except KeyError:
                raise ValueError(
                    f"unknown machine preset {spec!r}; "
                    f"known: {sorted(MACHINE_PRESETS)}"
                ) from None
        self.spec = spec
        self.machine = Machine(
            spec,
            dt_s=dt_s,
            seed=seed,
            migrate_jitter=migrate_jitter,
            rebalance_jitter=rebalance_jitter,
            fastpath=fastpath,
            engine=engine,
            trace=trace,
        )
        self.perf = PerfSubsystem(self.machine)
        self.sysfs = SysFs(self.machine, self.perf, expose_cpu_types=expose_cpu_types)
        self.procfs = ProcFs(self.machine)

    @property
    def topology(self):
        return self.machine.topology

    @property
    def tracer(self):
        """The structured-trace collector, or ``None`` when tracing is off.

        Enable with ``System(..., trace=True)`` (all categories), a list
        of category names, or a :class:`repro.trace.TraceConfig`.
        """
        return self.machine.tracer

    # -- checkpoint/restore --------------------------------------------------

    def save(self, path: str, meta: Optional[dict] = None) -> dict:
        """Snapshot the whole system to ``path`` (atomic, versioned).

        The snapshot carries every stateful layer — topology and
        hotplug state, DVFS/thermal/RAPL, scheduler run-queues and RNG,
        thread state including in-flight phases and closures, all perf
        event contexts, fault-plan progress — such that
        ``System.restore(path)`` followed by running is bit-identical to
        never having snapshotted.  Returns the snapshot header.
        """
        from repro.checkpoint.snapshot import save_object

        merged = {
            "kind": "system",
            "spec": self.spec.name,
            "sim_time_s": self.machine.now_s,
            "ticks": self.machine.clock.ticks,
            "fastpath": self.machine.fastpath,
            "engine": self.machine.engine,
            "state_digest": self.state_digest(),
        }
        if meta:
            merged.update(meta)
        header = save_object(self, path, meta=merged)
        self.machine.last_checkpoint_path = path
        return header

    @classmethod
    def restore(cls, path: str) -> "System":
        """Load a snapshot written by :meth:`save`.

        Also rewinds registered process-global counters (perf event-id
        allocator) to their values at save time — required for
        bit-identical continuation; restore one run per worker process.
        """
        from repro.checkpoint.snapshot import SnapshotError, load_object

        obj = load_object(path)
        if not isinstance(obj, cls):
            raise SnapshotError(
                f"{path} holds a {type(obj).__name__}, not a System; "
                "use repro.checkpoint.load_object for composite snapshots"
            )
        obj.machine.last_checkpoint_path = path
        return obj

    def state_digest(self) -> str:
        """Stable hash over the snapshot surface (see
        :mod:`repro.checkpoint.digest`).  Two systems digest equal iff
        their observable simulated state is bit-identical; engine-path
        selection (``engine``/``fastpath``) is excluded, so single-tick,
        macro-tick and event-driven runs of one workload must digest
        equal."""
        from repro.checkpoint.digest import state_digest

        return state_digest(self)

    # -- fault injection -----------------------------------------------------

    def offline_cpu(self, cpu_id: int) -> None:
        """Hotplug a CPU offline (``echo 0 > .../cpuN/online``)."""
        self.machine.offline_cpu(cpu_id)

    def online_cpu(self, cpu_id: int) -> None:
        """Bring a hotplugged CPU back online."""
        self.machine.online_cpu(cpu_id)

    def inject_faults(self, plan):
        """Attach a :class:`~repro.faults.plan.FaultPlan`; returns the
        live :class:`~repro.faults.injector.FaultInjector`."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, plan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"System({self.spec.name!r}, t={self.machine.now_s:.3f}s)"
