"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hpl.dat import HplConfig
from repro.system import System

#: The paper's full problem size is N = 57024.  Experiments default to a
#: reduced size that preserves every qualitative behaviour (the machine
#: reaches its thermal/power steady state well within the run) while
#: keeping simulation time reasonable; pass ``full_scale=True`` to the
#: run functions to use the paper's exact parameters.
REDUCED_RAPTOR_CONFIG = HplConfig(n=34560, nb=192)
FULL_RAPTOR_CONFIG = HplConfig(n=57024, nb=192)

REDUCED_ORANGEPI_CONFIG = HplConfig(n=13056, nb=128)
FULL_ORANGEPI_CONFIG = HplConfig(n=20096, nb=128)


def raptor_system(dt_s: float = 0.02, seed: int = 0, **kw) -> System:
    return System("raptor-lake-i7-13700", dt_s=dt_s, seed=seed, **kw)


def orangepi_system(dt_s: float = 0.02, seed: int = 0, **kw) -> System:
    return System("orangepi-800", dt_s=dt_s, seed=seed, **kw)


def raptor_core_sets(system: System) -> dict[str, list[int]]:
    """The paper's three CPU selections, 1 thread per core."""
    topo = system.topology
    primary = topo.primary_threads()
    p = [c for c in primary if topo.core(c).ctype.name == "P-core"]
    e = [c for c in primary if topo.core(c).ctype.name == "E-core"]
    return {"E only": e, "P only": p, "P and E": p + e}


def orangepi_core_sets(system: System) -> dict[str, list[int]]:
    topo = system.topology
    big = topo.cpus_of_type("big")
    little = topo.cpus_of_type("LITTLE")
    return {"big x2": big, "little x4": little, "all x6": little + big}


@dataclass
class TableRow:
    cells: list[str]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ASCII table."""
    cols = [list(col) for col in zip(headers, *rows)]
    widths = [max(len(str(c)) for c in col) for col in cols]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep, *(fmt(r) for r in rows)])


def pct_change(before: float, after: float) -> float:
    return (after / before - 1.0) * 100.0 if before else 0.0
