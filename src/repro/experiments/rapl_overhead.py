"""RAPL read-rate overhead sweep: does energy monitoring perturb the run?

Reading RAPL through PAPI is not free — every ``PAPI_read`` issues one
syscall per perf event group, and the modeled call cost is injected back
into the measured thread as extra instructions.  This experiment sweeps
the number of energy reads per run and quantifies the perturbation both
ways the paper cares about: wall-clock inflation of the monitored
workload and the extra energy the monitoring itself costs, against an
unmonitored baseline of the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import pct_change, render_table
from repro.kernel.perf.pmu import RAPL_PERF_UNIT_J
from repro.papi import Papi
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

#: Scalar workload with some floating-point content (so the sweep is
#: representative of a monitored numeric kernel).
RATES = constant_rates(PhaseRates(ipc=2.0, flops_per_instr=1.0))

#: Energy reads per run — the swept monitoring rates.
READ_COUNTS = (0, 10, 100, 1000)


@dataclass
class RaplOverheadRow:
    reads: int
    runtime_s: float
    energy_j: float
    papi_energy_j: float          # what PAPI reported (perf units -> J)
    reads_per_s: float
    runtime_inflation_pct: float  # vs the unmonitored baseline
    energy_inflation_pct: float
    overhead_instructions: float  # injected syscall cost, instructions


@dataclass
class RaplOverheadResult:
    machine: str
    instructions: float
    baseline_runtime_s: float
    baseline_energy_j: float
    rows: list[RaplOverheadRow] = field(default_factory=list)


def _big_core_inst_event(system: System) -> tuple[str, int]:
    ct = max(
        system.topology.core_types, key=lambda c: c.capacity * c.max_freq_mhz
    )
    suffix = "INST_RETIRED:ANY" if ct.vendor == "intel" else "INST_RETIRED"
    return f"{ct.pfm_pmu}::{suffix}", system.topology.cpus_of_type(ct.name)[0]


def _run_workload(
    machine: str, instructions: float, reads: int | None
) -> tuple[SimThread, System, list[float], float]:
    """One run; ``reads=None`` means unmonitored baseline.

    Returns (thread, system, final PAPI values, overhead instructions).
    """
    system = System(machine, dt_s=1e-4)
    event, cpu = _big_core_inst_event(system)
    if reads is None:
        program = Program([ComputePhase(instructions, RATES)])
        thread = system.machine.spawn(
            SimThread("rapl-baseline", program, affinity={cpu})
        )
        system.machine.run_until_done([thread], max_s=60.0, strict=True)
        return thread, system, [], 0.0

    papi = Papi(system, mode="hybrid")
    holder: dict = {}

    def do_setup(t: SimThread) -> None:
        es = papi.create_eventset()
        papi.attach(es, t)
        papi.add_event(es, event, caller=t)
        papi.add_event(es, "rapl::RAPL_ENERGY_PKG", caller=t)
        papi.start(es, caller=t)
        holder["es"] = es

    def do_read(t: SimThread) -> None:
        papi.read(holder["es"], caller=t)

    def do_teardown(t: SimThread) -> None:
        holder["values"] = papi.stop(holder["es"], caller=t)
        papi.destroy_eventset(holder["es"], caller=t)

    chunk = instructions / (reads + 1)
    items: list = [ControlOp(do_setup, "papi-setup")]
    for _ in range(reads):
        items.append(ComputePhase(chunk, RATES, label="monitored"))
        items.append(ControlOp(do_read, "rapl-read"))
    items.append(ComputePhase(chunk, RATES, label="monitored"))
    items.append(ControlOp(do_teardown, "papi-stop"))

    thread = system.machine.spawn(
        SimThread("rapl-monitored", Program(items), affinity={cpu})
    )
    system.machine.run_until_done([thread], max_s=60.0, strict=True)
    stats = system.perf.cost.stats.snapshot()
    return thread, system, holder["values"], stats.instructions_charged


def run_rapl_overhead(
    machine: str = "raptor-lake-i7-13700",
    instructions: float = 2e7,
    read_counts: tuple[int, ...] = READ_COUNTS,
) -> RaplOverheadResult:
    probe = System(machine)
    if not probe.spec.has_rapl:
        raise ValueError(f"{machine!r} has no RAPL; nothing to sweep")

    thread, system, _, _ = _run_workload(machine, instructions, None)
    baseline_runtime = thread.total_runtime_s
    baseline_energy = system.machine.rapl.package.energy_j

    out = RaplOverheadResult(
        machine=machine,
        instructions=instructions,
        baseline_runtime_s=baseline_runtime,
        baseline_energy_j=baseline_energy,
    )
    for reads in read_counts:
        thread, system, values, overhead_instr = _run_workload(
            machine, instructions, reads
        )
        runtime = thread.total_runtime_s
        energy = system.machine.rapl.package.energy_j
        out.rows.append(
            RaplOverheadRow(
                reads=reads,
                runtime_s=runtime,
                energy_j=energy,
                papi_energy_j=values[1] * RAPL_PERF_UNIT_J,
                reads_per_s=reads / runtime if runtime > 0 else 0.0,
                runtime_inflation_pct=pct_change(baseline_runtime, runtime),
                energy_inflation_pct=pct_change(baseline_energy, energy),
                overhead_instructions=overhead_instr,
            )
        )
    return out


def render(result: RaplOverheadResult) -> str:
    rows = [
        [
            str(r.reads),
            f"{r.reads_per_s:.0f}",
            f"{r.runtime_s * 1e3:.3f}",
            f"{r.runtime_inflation_pct:+.3f}%",
            f"{r.energy_j:.4f}",
            f"{r.energy_inflation_pct:+.3f}%",
            f"{r.papi_energy_j:.4f}",
            f"{r.overhead_instructions:.0f}",
        ]
        for r in result.rows
    ]
    table = render_table(
        [
            "reads",
            "reads/s",
            "runtime ms",
            "runtime vs base",
            "energy J",
            "energy vs base",
            "PAPI energy J",
            "overhead instr",
        ],
        rows,
    )
    head = (
        f"  baseline (unmonitored): runtime "
        f"{result.baseline_runtime_s * 1e3:.3f} ms, energy "
        f"{result.baseline_energy_j:.4f} J"
    )
    return head + "\n" + table


def shape_holds(result: RaplOverheadResult) -> dict[str, bool]:
    runtimes = [r.runtime_s for r in result.rows]
    energies = [r.energy_j for r in result.rows]
    return {
        # More reads -> more injected call cost -> longer runs.
        "runtime_monotone_in_reads": all(
            a <= b for a, b in zip(runtimes, runtimes[1:])
        ),
        "energy_monotone_in_reads": all(
            a <= b for a, b in zip(energies, energies[1:])
        ),
        "monitoring_costs_time": runtimes[-1] > result.baseline_runtime_s,
        "monitoring_costs_energy": energies[-1] > result.baseline_energy_j,
        # PAPI's own energy reading stays close to ground truth.
        "papi_energy_tracks_truth": all(
            abs(r.papi_energy_j - r.energy_j) / r.energy_j < 0.05
            for r in result.rows
            if r.energy_j > 0
        ),
    }
