"""§V-5 ablation: overhead of the multi-group EventSet design.

The hybrid perf_event component keeps one perf event group per PMU type,
so every start/stop/read touches one fd *per group* instead of one
total.  This experiment counts the syscalls and their modeled
instruction cost per PAPI operation as the number of PMUs in the
EventSet grows, and demonstrates the ``rdpmc`` fast path (works only on
the matching core type).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import render_table
from repro.kernel.perf.rdpmc import RdpmcReader
from repro.papi import Papi
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System
from repro.validate.groups import MeasurementBundle, MetricValue, evaluate

RATES = constant_rates(PhaseRates(ipc=2.0))


@dataclass
class OpCost:
    syscalls: int
    instructions: float


@dataclass
class OverheadResult:
    machine: str
    # config label -> op name -> cost
    costs: dict[str, dict[str, OpCost]] = field(default_factory=dict)
    groups: dict[str, int] = field(default_factory=dict)
    # config label -> evaluated "papi_op_cost" derived-metric group
    derived: dict[str, MetricValue] = field(default_factory=dict)
    rdpmc_matching_core: bool = False
    rdpmc_foreign_core: bool = True  # should come back False (invalid)
    rdpmc_value: int = 0

    def syscalls_per_group(self, label: str, op: str) -> float:
        """The derived per-group cost of one PAPI op (from ``derived``)."""
        return self.derived[label].per_key[f"{op}.syscalls_per_group"]


EVENTSET_CONFIGS: dict[str, list[str]] = {
    "1 PMU, 2 events": [
        "adl_glc::INST_RETIRED:ANY",
        "adl_glc::CPU_CLK_UNHALTED:THREAD",
    ],
    "2 PMUs, 2 events": [
        "adl_glc::INST_RETIRED:ANY",
        "adl_grt::INST_RETIRED:ANY",
    ],
    "2 PMUs, 4 events": [
        "adl_glc::INST_RETIRED:ANY",
        "adl_glc::CPU_CLK_UNHALTED:THREAD",
        "adl_grt::INST_RETIRED:ANY",
        "adl_grt::CPU_CLK_UNHALTED:THREAD",
    ],
    "2 PMUs + uncore + RAPL": [
        "adl_glc::INST_RETIRED:ANY",
        "adl_grt::INST_RETIRED:ANY",
        "uncore_llc::LLC_MISSES",
        "rapl::RAPL_ENERGY_PKG",
    ],
}


def run_overhead(machine: str = "raptor-lake-i7-13700") -> OverheadResult:
    out = OverheadResult(machine=machine)
    for label, events in EVENTSET_CONFIGS.items():
        system = System(machine, dt_s=1e-4)
        papi = Papi(system, mode="hybrid")
        t = system.machine.spawn(
            SimThread("app", Program([ComputePhase(5e6, RATES)]), affinity={0})
        )
        es = papi.create_eventset()
        papi.attach(es, t)
        for name in events:
            papi.add_event(es, name)
        out.groups[label] = papi.num_groups(es)
        stats = system.perf.cost.stats
        ops = {}
        before = stats.snapshot()
        papi.start(es)
        d = stats.delta(before)
        ops["start"] = OpCost(d.total_calls, d.instructions_charged)
        system.machine.run_until_done([t], max_s=5.0, strict=True)
        before = stats.snapshot()
        papi.read(es)
        d = stats.delta(before)
        ops["read"] = OpCost(d.total_calls, d.instructions_charged)
        before = stats.snapshot()
        papi.stop(es)
        d = stats.delta(before)
        ops["stop"] = OpCost(d.total_calls, d.instructions_charged)
        out.costs[label] = ops
        out.derived[label] = evaluate(
            "papi_op_cost",
            MeasurementBundle(
                syscalls={op: float(c.syscalls) for op, c in ops.items()},
                groups=out.groups[label],
            ),
        )
        papi.destroy_eventset(es)

    # rdpmc fast path: read a P-core event from the target thread while
    # it runs on a P-core (valid) and on an E-core (invalid).
    system = System(machine, dt_s=1e-4)
    papi = Papi(system, mode="hybrid")
    pfm = papi.pfm
    attr_p, _ = pfm.get_os_event_encoding("adl_glc::INST_RETIRED:ANY")
    attr_p.disabled = False

    p_cpu = system.topology.cpus_of_type("P-core")[0]
    e_cpu = system.topology.cpus_of_type("E-core")[0]
    holder: dict = {}

    def on_p(thread):
        r = RdpmcReader(system.perf, holder["fd"]).read(thread)
        out.rdpmc_matching_core = r.valid
        out.rdpmc_value = r.value
        thread.affinity = {e_cpu}

    def on_e(thread):
        r = RdpmcReader(system.perf, holder["fd"]).read(thread)
        out.rdpmc_foreign_core = r.valid

    t = system.machine.spawn(
        SimThread(
            "rdpmc-app",
            Program(
                [
                    ComputePhase(2e6, RATES),
                    ControlOp(on_p, "rdpmc-on-p"),
                    ComputePhase(2e6, RATES),
                    ControlOp(on_e, "rdpmc-on-e"),
                ]
            ),
            affinity={p_cpu},
        )
    )
    holder["fd"] = system.perf.perf_event_open(attr_p, pid=t.tid, cpu=-1)
    system.machine.run_until_done([t], max_s=5.0, strict=True)
    system.perf.close(holder["fd"])
    return out


def render(result: OverheadResult) -> str:
    rows = []
    for label, ops in result.costs.items():
        rows.append(
            [
                label,
                str(result.groups[label]),
                str(ops["start"].syscalls),
                str(ops["read"].syscalls),
                str(ops["stop"].syscalls),
                f"{result.syscalls_per_group(label, 'read'):.1f}",
                f"{ops['read'].instructions:.0f}",
            ]
        )
    table = render_table(
        ["EventSet", "groups", "start syscalls", "read syscalls",
         "stop syscalls", "read sysc/group", "read instr cost"],
        rows,
    )
    rd = (
        f"  rdpmc on matching core: valid={result.rdpmc_matching_core} "
        f"(value {result.rdpmc_value}); on foreign core: "
        f"valid={result.rdpmc_foreign_core}"
    )
    return table + "\n" + rd


def shape_holds(result: OverheadResult) -> dict[str, bool]:
    one = result.costs["1 PMU, 2 events"]
    two = result.costs["2 PMUs, 2 events"]
    return {
        # The paper's accuracy note: reading a hybrid EventSet takes at
        # least one read syscall per PMU group.
        "hybrid_read_needs_more_syscalls": two["read"].syscalls
        > one["read"].syscalls,
        "hybrid_start_needs_more_syscalls": two["start"].syscalls
        > one["start"].syscalls,
        "groups_match_pmus": result.groups["1 PMU, 2 events"] == 1
        and result.groups["2 PMUs, 2 events"] == 2,
        # The derived group states the invariant directly: one read
        # syscall per group, two for start (reset + enable), per config.
        "read_is_one_syscall_per_group": all(
            result.syscalls_per_group(label, "read") == 1.0
            for label in result.costs
        ),
        "start_is_two_syscalls_per_group": all(
            result.syscalls_per_group(label, "start") == 2.0
            for label in result.costs
        ),
        "rdpmc_fast_path_works": result.rdpmc_matching_core
        and not result.rdpmc_foreign_core,
    }
