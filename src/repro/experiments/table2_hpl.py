"""Table II: OpenBLAS HPL vs Intel HPL on E-only / P-only / all cores.

The headline motivation result.  Paper values (Gflop/s):

====================  =============  =========  ========
Enabled cores         OpenBLAS HPL   Intel HPL  % Change
====================  =============  =========  ========
E only                188.62         198.95     +5.4%
P only                356.28         392.89     +10.3%
P and E               290.51         457.38     +57.4%
====================  =============  =========  ========

The shape claims we verify: Intel beats OpenBLAS on every core set; the
all-core gap is by far the largest; OpenBLAS *loses* performance going
from P-only to all cores while Intel *gains*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    FULL_RAPTOR_CONFIG,
    REDUCED_RAPTOR_CONFIG,
    pct_change,
    raptor_core_sets,
    raptor_system,
    render_table,
)
from repro.hpl import HplConfig, HplResult, run_hpl

PAPER_GFLOPS = {
    "E only": (188.62, 198.95),
    "P only": (356.28, 392.89),
    "P and E": (290.51, 457.38),
}

CORE_SET_ORDER = ["E only", "P only", "P and E"]


@dataclass
class Table2Result:
    results: dict[str, dict[str, HplResult]] = field(default_factory=dict)
    n_runs: int = 1

    def gflops(self, core_set: str, variant: str) -> float:
        return self.results[core_set][variant].gflops

    def change_pct(self, core_set: str) -> float:
        return pct_change(
            self.gflops(core_set, "openblas"), self.gflops(core_set, "intel")
        )


def run_table2(
    full_scale: bool = False,
    n_runs: int = 1,
    dt_s: float = 0.02,
    config: HplConfig | None = None,
) -> Table2Result:
    """Run all six cells.

    ``n_runs`` averages repeated runs (the paper used 10); each run uses
    a fresh machine settled to 35 degC, per the paper's methodology.
    """
    if config is None:
        config = FULL_RAPTOR_CONFIG if full_scale else REDUCED_RAPTOR_CONFIG
    out = Table2Result(n_runs=n_runs)
    for core_set in CORE_SET_ORDER:
        out.results[core_set] = {}
        for variant in ("openblas", "intel"):
            runs = []
            for i in range(n_runs):
                system = raptor_system(dt_s=dt_s, seed=i)
                cpus = raptor_core_sets(system)[core_set]
                runs.append(
                    run_hpl(
                        system,
                        config,
                        variant=variant,
                        cpus=cpus,
                        settle_temp_c=35.0,
                    )
                )
            best = max(runs, key=lambda r: r.gflops)
            avg_gflops = sum(r.gflops for r in runs) / len(runs)
            best.gflops = avg_gflops
            out.results[core_set][variant] = best
    return out


def render(result: Table2Result) -> str:
    rows = []
    for core_set in CORE_SET_ORDER:
        po, pi = PAPER_GFLOPS[core_set]
        rows.append(
            [
                core_set,
                f"{result.gflops(core_set, 'openblas'):8.2f}",
                f"{result.gflops(core_set, 'intel'):8.2f}",
                f"{result.change_pct(core_set):+6.1f}%",
                f"{po:8.2f}",
                f"{pi:8.2f}",
                f"{pct_change(po, pi):+6.1f}%",
            ]
        )
    return render_table(
        [
            "Enabled cores",
            "OpenBLAS",
            "Intel",
            "% Change",
            "paper OpenBLAS",
            "paper Intel",
            "paper %",
        ],
        rows,
    )


def shape_holds(result: Table2Result) -> dict[str, bool]:
    """The paper's qualitative claims as booleans."""
    return {
        "intel_wins_everywhere": all(
            result.change_pct(cs) > 0 for cs in CORE_SET_ORDER
        ),
        "all_core_gap_largest": result.change_pct("P and E")
        > max(result.change_pct("E only"), result.change_pct("P only")),
        "openblas_all_core_regression": result.gflops("P and E", "openblas")
        < result.gflops("P only", "openblas"),
        "intel_all_core_gain": result.gflops("P and E", "intel")
        > result.gflops("P only", "intel"),
    }
