"""Figure 3: ARM big.LITTLE frequency scaling under thermal pressure.

On the OrangePi 800, HPL on the big cores ramps them to 1.8 GHz but the
SoC heats past its trip point within seconds and the big cores are
scaled far down; with all six cores most of the computation ends up on
the LITTLE cores.  Wall power is measured WattsUpPro-style (package +
board overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import (
    FULL_ORANGEPI_CONFIG,
    REDUCED_ORANGEPI_CONFIG,
    orangepi_core_sets,
    orangepi_system,
    render_table,
)
from repro.hpl import HplConfig, run_hpl
from repro.monitor import SampleTrace, monitored_run


@dataclass
class Fig3Result:
    traces: dict[str, SampleTrace] = field(default_factory=dict)
    big_start_mhz: dict[str, float] = field(default_factory=dict)
    big_sustained_mhz: dict[str, float] = field(default_factory=dict)
    little_sustained_mhz: dict[str, float] = field(default_factory=dict)
    time_to_throttle_s: dict[str, float] = field(default_factory=dict)
    trip_c: float = 85.0


def run_fig3(
    full_scale: bool = False,
    dt_s: float = 0.02,
    config: HplConfig | None = None,
) -> Fig3Result:
    if config is None:
        config = FULL_ORANGEPI_CONFIG if full_scale else REDUCED_ORANGEPI_CONFIG
    out = Fig3Result()
    for name in ("big x2", "all x6"):
        system = orangepi_system(dt_s=dt_s)
        out.trip_c = system.spec.thermal_trip_c
        cpus = orangepi_core_sets(system)[name]
        _, trace = monitored_run(
            system,
            lambda: run_hpl(system, config, variant="openblas", cpus=cpus),
            period_s=1.0,
            settle_temp_c=35.0,
        )
        out.traces[name] = trace
        big = np.asarray(trace.freq_mhz["big"])
        little = np.asarray(trace.freq_mhz["LITTLE"])
        out.big_start_mhz[name] = float(big[:3].max()) if big.size else 0.0
        tail = slice(len(big) // 2, None)
        out.big_sustained_mhz[name] = float(np.median(big[tail])) if big.size else 0.0
        out.little_sustained_mhz[name] = (
            float(np.median(little[tail])) if little.size else 0.0
        )
        # First sample where the big cluster sits below 60% of max.
        throttled = np.nonzero(big < 0.6 * 1800)[0]
        out.time_to_throttle_s[name] = (
            float(trace.times_s[throttled[0]]) if throttled.size else float("inf")
        )
    return out


def render(result: Fig3Result) -> str:
    rows = []
    for name in result.traces:
        rows.append(
            [
                name,
                f"{result.big_start_mhz[name]:6.0f}",
                f"{result.big_sustained_mhz[name]:6.0f}",
                f"{result.little_sustained_mhz[name]:6.0f}",
                f"{result.time_to_throttle_s[name]:6.1f}",
            ]
        )
    table = render_table(
        ["run", "big start MHz", "big sustained MHz", "LITTLE sustained MHz",
         "throttle onset s"],
        rows,
    )
    notes = []
    for name, trace in result.traces.items():
        head = ", ".join(f"{v:.0f}" for v in trace.freq_mhz["big"][:10])
        notes.append(f"  {name} big-cluster freq: [{head}, ...] MHz @1Hz")
        headw = ", ".join(f"{v:.2f}" for v in trace.wall_power_w[:6])
        notes.append(f"  {name} wall power: [{headw}, ...] W @1Hz")
    return table + "\n" + "\n".join(notes)


def shape_holds(result: Fig3Result) -> dict[str, bool]:
    return {
        # Big cores start at (near) max frequency...
        "big_ramps_to_max": all(
            v > 1700 for v in result.big_start_mhz.values()
        ),
        # ...but are quickly scaled far down.
        "big_throttles_quickly": all(
            t < 30.0 for t in result.time_to_throttle_s.values()
        ),
        "big_sustained_far_below_max": all(
            v < 0.65 * 1800 for v in result.big_sustained_mhz.values()
        ),
        # In the all-core run the LITTLE cluster keeps a much higher
        # relative frequency: most computation lands there.
        "little_keeps_running": result.little_sustained_mhz["all x6"] / 1400
        > result.big_sustained_mhz["all x6"] / 1800,
    }
