"""§IV-F: the ``papi_hybrid_100m_one_eventset`` functional result.

A test program executes 1 million instructions 100 times, measuring
retired instructions with PAPI around each repetition.

* On a *homogeneous* machine: the count is ~1 M every time.
* On a *heterogeneous* machine with **legacy** PAPI only one core type's
  event fits in the EventSet, so the count is "0, 1 million, or
  something in between depending how the OS scheduled the process";
  ``taskset`` pinning to a matching/foreign core gives 1 M / 0.
* With the **patched (hybrid)** PAPI both events live in one EventSet
  and the P + E counts sum to ~1 M, e.g. the paper's
  ``Average instructions p: 836848 e: 167487``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.papi import Papi, PapiError
from repro.sim.task import ControlOp, Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System
from repro.validate.groups import MeasurementBundle, MetricValue, evaluate

#: Execution profile of the test's measured loop (scalar integer work).
LOOP_RATES = constant_rates(PhaseRates(ipc=2.0, branches_per_instr=0.1))


@dataclass
class HybridTestResult:
    mode: str
    machine: str
    pinned: Optional[str]
    reps: int
    instructions_per_rep: float
    per_rep: list[dict[str, float]] = field(default_factory=list)
    events: list[str] = field(default_factory=list)
    error: Optional[str] = None

    def instr_share(self) -> MetricValue:
        """The ``instr_share`` derived group: per-PMU mean instruction
        counts attributed across the hybrid EventSet's events."""
        means: dict[str, float] = {}
        for i, name in enumerate(self.events):
            pmu = name.split("::")[0]
            if self.per_rep:
                means[pmu] = sum(
                    r["values"][i] for r in self.per_rep
                ) / len(self.per_rep)
            else:
                means[pmu] = 0.0
        return evaluate(
            "instr_share", MeasurementBundle(instructions_by_pmu=means)
        )

    def average(self, event_idx: int) -> float:
        share = self.instr_share()
        if share.value is None:
            return 0.0
        pmu = self.events[event_idx].split("::")[0]
        return share.per_key.get(pmu, 0.0) * share.value

    @property
    def avg_total(self) -> float:
        share = self.instr_share()
        return share.value if share.value is not None else 0.0

    def summary_line(self) -> str:
        if self.error:
            return f"[{self.mode}, pin={self.pinned}] ERROR: {self.error}"
        parts = " ".join(
            f"{name.split('::')[0]}: {self.average(i):.0f}"
            for i, name in enumerate(self.events)
        )
        return (
            f"[{self.mode}, pin={self.pinned}] Average instructions {parts} "
            f"(sum {self.avg_total:.0f})"
        )


def _hybrid_event_names(system: System) -> list[str]:
    """The per-core-type INST_RETIRED native names, big core first."""
    names = []
    for ct in sorted(
        system.topology.core_types, key=lambda c: -c.capacity * c.max_freq_mhz
    ):
        suffix = "INST_RETIRED:ANY" if ct.vendor == "intel" else "INST_RETIRED"
        names.append(f"{ct.pfm_pmu}::{suffix}")
    return names


def run_hybrid_test(
    mode: str = "hybrid",
    machine: str = "raptor-lake-i7-13700",
    pin: Optional[str] = None,
    reps: int = 100,
    instructions: float = 1e6,
    seed: int = 7,
) -> HybridTestResult:
    """Run the test; ``pin`` is a core-type name ("P-core", "E-core"...)
    to taskset onto, or None for free scheduling with background noise."""
    jitter = 0.05 if pin is None else 0.0
    system = System(
        machine,
        dt_s=2e-5,
        seed=seed,
        migrate_jitter=jitter,
        rebalance_jitter=jitter,
    )
    papi = Papi(system, mode=mode)

    affinity = None
    if pin is not None:
        cpus = system.topology.cpus_of_type(pin)
        if not cpus:
            raise ValueError(f"machine has no {pin!r} cores")
        affinity = {cpus[0]}

    result = HybridTestResult(
        mode=mode,
        machine=machine,
        pinned=pin,
        reps=reps,
        instructions_per_rep=instructions,
    )

    # On a heterogeneous machine legacy PAPI can only hold one PMU's
    # event; we add the big-core event (what an unsuspecting user's
    # existing EventSet would contain).
    names = _hybrid_event_names(system)
    if mode == "legacy" and len(names) > 1:
        wanted = names[:1]
    else:
        wanted = names

    program_items: list = []
    es_holder: dict = {}

    def do_setup(thread: SimThread) -> None:
        es = papi.create_eventset()
        papi.attach(es, thread)
        try:
            for name in wanted:
                papi.add_event(es, name, caller=thread)
        except PapiError as exc:
            result.error = str(exc)
            raise
        papi.start(es, caller=thread)
        es_holder["es"] = es

    def do_measure(thread: SimThread) -> None:
        values = papi.read(es_holder["es"], caller=thread)
        papi.reset(es_holder["es"], caller=thread)
        result.per_rep.append({"values": values})

    program_items.append(ControlOp(do_setup, "papi-setup"))
    for _ in range(reps):
        program_items.append(ComputePhase(instructions, LOOP_RATES, label="loop"))
        program_items.append(ControlOp(do_measure, "papi-read"))

    def do_teardown(thread: SimThread) -> None:
        papi.stop(es_holder["es"], caller=thread)
        papi.destroy_eventset(es_holder["es"], caller=thread)

    program_items.append(ControlOp(do_teardown, "papi-stop"))

    t = system.machine.spawn(
        SimThread("papi_hybrid_100m_one_eventset", Program(program_items), affinity=affinity)
    )
    # Background noise: short bursts that occasionally contend for cores.
    system.machine.run_until_done([t], max_s=60.0, strict=True)
    result.events = wanted
    return result


def run_paper_scenarios(machine: str = "raptor-lake-i7-13700") -> list[HybridTestResult]:
    """All the §IV-F scenarios on one machine."""
    scenarios: list[HybridTestResult] = []
    system = System(machine)
    ct_names = [ct.name for ct in system.topology.core_types]
    big = ct_names[0]
    scenarios.append(run_hybrid_test(mode="hybrid", machine=machine))
    scenarios.append(run_hybrid_test(mode="hybrid", machine=machine, pin=big))
    if len(ct_names) > 1:
        little = ct_names[-1]
        scenarios.append(run_hybrid_test(mode="hybrid", machine=machine, pin=little))
        scenarios.append(run_hybrid_test(mode="legacy", machine=machine))
        scenarios.append(run_hybrid_test(mode="legacy", machine=machine, pin=big))
        scenarios.append(run_hybrid_test(mode="legacy", machine=machine, pin=little))
    return scenarios


def render(results: list[HybridTestResult]) -> str:
    return "\n".join(r.summary_line() for r in results)
