"""Figure 1: measured core frequencies, all-core runs, both HPL builds.

The paper's observations we verify:

* the P-core median frequency is *lower* for Intel HPL than for
  OpenBLAS HPL (2.61 vs 2.94 GHz) — Intel keeps every core busy, so at
  the same 65 W budget the P-cores clock lower;
* the P/E frequency gap is smaller for Intel HPL ("the heterogeneous
  core frequencies for Intel HPL were less dissimilar").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    FULL_RAPTOR_CONFIG,
    REDUCED_RAPTOR_CONFIG,
    raptor_core_sets,
    raptor_system,
    render_table,
)
from repro.hpl import HplConfig, run_hpl
from repro.monitor import SampleTrace, aggregate_traces, monitored_run

PAPER_MEDIANS_GHZ = {
    "openblas": {"P-core": 2.94, "E-core": 2.26},
    "intel": {"P-core": 2.61, "E-core": 2.32},
}


@dataclass
class Fig1Result:
    traces: dict[str, SampleTrace] = field(default_factory=dict)
    medians_ghz: dict[str, dict[str, float]] = field(default_factory=dict)


def run_fig1(
    full_scale: bool = False,
    n_runs: int = 1,
    dt_s: float = 0.02,
    config: HplConfig | None = None,
) -> Fig1Result:
    if config is None:
        config = FULL_RAPTOR_CONFIG if full_scale else REDUCED_RAPTOR_CONFIG
    out = Fig1Result()
    for variant in ("openblas", "intel"):
        traces = []
        for i in range(n_runs):
            system = raptor_system(dt_s=dt_s, seed=i)
            cpus = raptor_core_sets(system)["P and E"]
            _, trace = monitored_run(
                system,
                lambda: run_hpl(system, config, variant=variant, cpus=cpus),
                period_s=1.0,
                settle_temp_c=35.0,
            )
            traces.append(trace)
        agg = aggregate_traces(traces)
        # Keep one representative raw trace plus aggregated medians.
        out.traces[variant] = traces[0]
        out.medians_ghz[variant] = {
            label: agg.median_freq_ghz(label) for label in agg.freq_mhz
        }
    return out


def render(result: Fig1Result) -> str:
    rows = []
    for variant in ("openblas", "intel"):
        med = result.medians_ghz[variant]
        paper = PAPER_MEDIANS_GHZ[variant]
        rows.append(
            [
                variant,
                f"{med.get('P-core', 0):.2f}",
                f"{med.get('E-core', 0):.2f}",
                f"{paper['P-core']:.2f}",
                f"{paper['E-core']:.2f}",
            ]
        )
    table = render_table(
        ["variant", "median P GHz", "median E GHz", "paper P", "paper E"], rows
    )
    series = []
    for variant, trace in result.traces.items():
        for label, vals in trace.freq_mhz.items():
            head = ", ".join(f"{v:.0f}" for v in vals[:8])
            series.append(f"  {variant}/{label}: [{head}, ...] MHz @1Hz")
    return table + "\n" + "\n".join(series)


def shape_holds(result: Fig1Result) -> dict[str, bool]:
    ob, it = result.medians_ghz["openblas"], result.medians_ghz["intel"]
    gap_ob = ob["P-core"] - ob["E-core"]
    gap_it = it["P-core"] - it["E-core"]
    return {
        "intel_p_median_lower": it["P-core"] < ob["P-core"],
        "intel_freqs_less_dissimilar": gap_it < gap_ob,
    }
