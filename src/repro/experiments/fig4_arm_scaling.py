"""Figure 4: OrangePi HPL performance as more cores are added.

The paper's counter-intuitive ordering, caused by thermal throttling:

* HPL on all four LITTLE cores completes *faster* than on both big
  cores;
* running on all six cores is only a minimal improvement over the four
  LITTLE cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    FULL_ORANGEPI_CONFIG,
    REDUCED_ORANGEPI_CONFIG,
    orangepi_system,
    render_table,
)
from repro.hpl import HplConfig, run_hpl

#: Core sets in "adding more cores" order (RK3399: cpus 0-3 LITTLE, 4-5 big).
CORE_SERIES: list[tuple[str, list[int]]] = [
    ("1 big", [4]),
    ("2 big", [4, 5]),
    ("2 little", [0, 1]),
    ("4 little", [0, 1, 2, 3]),
    ("4 little + 1 big", [0, 1, 2, 3, 4]),
    ("all 6", [0, 1, 2, 3, 4, 5]),
]


@dataclass
class Fig4Result:
    wall_s: dict[str, float] = field(default_factory=dict)
    gflops: dict[str, float] = field(default_factory=dict)


def run_fig4(
    full_scale: bool = False,
    dt_s: float = 0.02,
    config: HplConfig | None = None,
) -> Fig4Result:
    if config is None:
        config = FULL_ORANGEPI_CONFIG if full_scale else REDUCED_ORANGEPI_CONFIG
    out = Fig4Result()
    for name, cpus in CORE_SERIES:
        system = orangepi_system(dt_s=dt_s)
        r = run_hpl(
            system, config, variant="openblas", cpus=cpus, settle_temp_c=35.0
        )
        out.wall_s[name] = r.wall_s
        out.gflops[name] = r.gflops
    return out


def render(result: Fig4Result) -> str:
    rows = [
        [name, f"{result.wall_s[name]:8.1f}", f"{result.gflops[name]:6.2f}"]
        for name, _ in CORE_SERIES
    ]
    return render_table(["cores", "time (s)", "Gflop/s"], rows)


def shape_holds(result: Fig4Result) -> dict[str, bool]:
    return {
        "little4_beats_big2": result.wall_s["4 little"] < result.wall_s["2 big"],
        "all6_minimal_improvement": (
            result.wall_s["all 6"] <= result.wall_s["4 little"]
            and result.gflops["all 6"] / result.gflops["4 little"] < 1.25
        ),
        "more_littles_help": result.wall_s["4 little"] < result.wall_s["2 little"],
    }
