"""Figure 2: package power and temperature during the all-core runs.

Shape claims from the paper:

* an initial power spike while the RAPL PL1 averaging window fills,
  after which both benchmarks settle at the 65 W long-term limit;
* OpenBLAS HPL cannot reach the short-term cap, peaking at 165.7 W —
  its P-cores spin-wait at barriers instead of drawing full power —
  while Intel HPL's peak is substantially higher;
* neither run is thermally throttled (package stays below Tjmax=100 C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    FULL_RAPTOR_CONFIG,
    REDUCED_RAPTOR_CONFIG,
    raptor_core_sets,
    raptor_system,
    render_table,
)
from repro.hpl import HplConfig, run_hpl
from repro.monitor import SampleTrace, monitored_run

PAPER_PEAK_W = {"openblas": 165.7, "intel": 219.0}
PAPER_STEADY_W = 65.0


@dataclass
class Fig2Result:
    traces: dict[str, SampleTrace] = field(default_factory=dict)
    peak_w: dict[str, float] = field(default_factory=dict)
    steady_w: dict[str, float] = field(default_factory=dict)
    max_temp_c: dict[str, float] = field(default_factory=dict)
    throttle_events_thermal: dict[str, int] = field(default_factory=dict)
    pl1_w: float = 65.0
    pl2_w: float = 219.0
    tjmax_c: float = 100.0


def run_fig2(
    full_scale: bool = False,
    dt_s: float = 0.02,
    config: HplConfig | None = None,
) -> Fig2Result:
    if config is None:
        config = FULL_RAPTOR_CONFIG if full_scale else REDUCED_RAPTOR_CONFIG
    out = Fig2Result()
    for variant in ("openblas", "intel"):
        system = raptor_system(dt_s=dt_s)
        out.pl1_w = system.spec.rapl_pl1_w
        out.pl2_w = system.spec.rapl_pl2_w
        out.tjmax_c = system.spec.tjmax_c
        cpus = raptor_core_sets(system)["P and E"]
        _, trace = monitored_run(
            system,
            lambda: run_hpl(system, config, variant=variant, cpus=cpus),
            period_s=1.0,
            settle_temp_c=35.0,
        )
        out.traces[variant] = trace
        out.peak_w[variant] = trace.peak_power_w()
        out.steady_w[variant] = trace.steady_power_w()
        out.max_temp_c[variant] = trace.max_temp_c()
        out.throttle_events_thermal[variant] = system.machine.thermal.throttle_events
    return out


def render(result: Fig2Result) -> str:
    rows = []
    for variant in ("openblas", "intel"):
        rows.append(
            [
                variant,
                f"{result.peak_w[variant]:7.1f}",
                f"{result.steady_w[variant]:7.1f}",
                f"{result.max_temp_c[variant]:6.1f}",
                f"{PAPER_PEAK_W[variant]:7.1f}",
                f"{PAPER_STEADY_W:7.1f}",
            ]
        )
    table = render_table(
        ["variant", "peak W", "steady W", "max degC", "paper peak W", "paper steady W"],
        rows,
    )
    notes = [
        f"  PL1={result.pl1_w:.0f} W  PL2={result.pl2_w:.0f} W  Tjmax={result.tjmax_c:.0f} C",
    ]
    for variant, trace in result.traces.items():
        head = ", ".join(f"{v:.0f}" for v in trace.package_w[:10])
        notes.append(f"  {variant} power series: [{head}, ...] W @1Hz")
    return table + "\n" + "\n".join(notes)


def shape_holds(result: Fig2Result) -> dict[str, bool]:
    return {
        "spike_then_settle": all(
            result.peak_w[v] > result.steady_w[v] * 1.5 for v in result.peak_w
        ),
        "steady_at_pl1": all(
            abs(result.steady_w[v] - result.pl1_w) < result.pl1_w * 0.15
            for v in result.steady_w
        ),
        "openblas_peak_below_intel": result.peak_w["openblas"]
        < result.peak_w["intel"],
        "openblas_cannot_reach_pl2": result.peak_w["openblas"] < result.pl2_w * 0.9,
        "no_thermal_throttling": all(
            t < result.tjmax_c for t in result.max_temp_c.values()
        ),
    }
