"""One module per paper table/figure (see DESIGN.md's experiment index).

Each module exposes a ``run_*`` function returning a structured result
and a ``render(result) -> str`` producing the paper-style rows/series.
The benchmarks in ``benchmarks/`` regenerate every artifact through
these entry points.
"""

from repro.experiments import (  # noqa: F401
    common,
    table1_hw,
    table2_hpl,
    table3_counters,
    fig1_frequencies,
    fig2_power,
    fig3_arm_throttle,
    fig4_arm_scaling,
    energy_efficiency,
    hybrid_eventset,
    overhead,
    rapl_overhead,
)
