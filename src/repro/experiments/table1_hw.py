"""Table I / Table IV: hardware configuration, via PAPI hwinfo (§V-1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import render_table
from repro.papi.hwinfo import PapiHardwareInfo, get_hardware_info
from repro.system import System


@dataclass
class HwConfigResult:
    info: PapiHardwareInfo
    memory_type: str


def run_hw_config(system: System) -> HwConfigResult:
    return HwConfigResult(
        info=get_hardware_info(system),
        memory_type=str(system.spec.extra.get("memory_type", "DRAM")),
    )


def render(result: HwConfigResult) -> str:
    info = result.info
    rows = [["CPU", info.model_string]]
    for cc in info.core_classes:
        threads = (
            f"{cc.n_physical_cores} ({cc.n_logical_cpus} threads)"
            if cc.n_logical_cpus != cc.n_physical_cores
            else f"{cc.n_physical_cores}"
        )
        rows.append(
            [
                f"{cc.name} cores",
                f"{threads} @{cc.base_mhz / 1000:.2f}-{cc.max_mhz / 1000:.2f} GHz"
                f" (PMU {cc.pmu_name})",
            ]
        )
    rows.append(["Memory", f"{info.memory_gib}GB {result.memory_type}"])
    rows.append(["Heterogeneous", str(info.heterogeneous)])
    return render_table(["Item", "Value"], rows)
