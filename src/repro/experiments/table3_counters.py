"""Table III: hardware counter measurements for the all-core runs.

Collected the way the paper did — with the perf tool (our mini
``perf stat``), not PAPI: LLC miss rate per core type and the share of
total instructions retired by each core type.

Paper values (all-core runs):

==========================  =============  ==========
                            OpenBLAS HPL   Intel HPL
==========================  =============  ==========
LLC missrate (P / E)        86% / 0.05%    64% / 0.03%
% of instructions (P / E)   80% / 20%      68% / 32%
==========================  =============  ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    FULL_RAPTOR_CONFIG,
    REDUCED_RAPTOR_CONFIG,
    raptor_core_sets,
    raptor_system,
    render_table,
)
from repro.hpl import HplConfig, run_hpl

PAPER = {
    "openblas": {"miss_p": 0.86, "miss_e": 0.0005, "instr_p": 0.80},
    "intel": {"miss_p": 0.64, "miss_e": 0.0003, "instr_p": 0.68},
}


@dataclass
class Table3Result:
    miss_rate: dict[str, dict[str, float]] = field(default_factory=dict)
    instr_share: dict[str, dict[str, float]] = field(default_factory=dict)


def run_table3(
    full_scale: bool = False,
    dt_s: float = 0.02,
    config: HplConfig | None = None,
) -> Table3Result:
    if config is None:
        config = FULL_RAPTOR_CONFIG if full_scale else REDUCED_RAPTOR_CONFIG
    out = Table3Result()
    for variant in ("openblas", "intel"):
        system = raptor_system(dt_s=dt_s)
        cpus = raptor_core_sets(system)["P and E"]
        result = run_hpl(
            system, config, variant=variant, cpus=cpus, settle_temp_c=35.0
        )
        out.miss_rate[variant] = {
            "P": result.llc_miss_rate("cpu_core"),
            "E": result.llc_miss_rate("cpu_atom"),
        }
        out.instr_share[variant] = {
            "P": result.instruction_share("cpu_core"),
            "E": result.instruction_share("cpu_atom"),
        }
    return out


def render(result: Table3Result) -> str:
    rows = [
        [
            "LLC missrate",
            f"{result.miss_rate['openblas']['P'] * 100:.0f}%",
            f"{result.miss_rate['openblas']['E'] * 100:.2f}%",
            f"{result.miss_rate['intel']['P'] * 100:.0f}%",
            f"{result.miss_rate['intel']['E'] * 100:.2f}%",
            "86% / 0.05%",
            "64% / 0.03%",
        ],
        [
            "% of total instructions",
            f"{result.instr_share['openblas']['P'] * 100:.0f}%",
            f"{result.instr_share['openblas']['E'] * 100:.0f}%",
            f"{result.instr_share['intel']['P'] * 100:.0f}%",
            f"{result.instr_share['intel']['E'] * 100:.0f}%",
            "80% / 20%",
            "68% / 32%",
        ],
    ]
    return render_table(
        [
            "Metric",
            "OpenBLAS P",
            "OpenBLAS E",
            "Intel P",
            "Intel E",
            "paper OpenBLAS",
            "paper Intel",
        ],
        rows,
    )


def shape_holds(result: Table3Result) -> dict[str, bool]:
    return {
        # Intel reduced the LLC miss rate on both core types.
        "intel_lower_p_missrate": result.miss_rate["intel"]["P"]
        < result.miss_rate["openblas"]["P"],
        "intel_lower_e_missrate": result.miss_rate["intel"]["E"]
        < result.miss_rate["openblas"]["E"],
        # E-core miss rates are orders of magnitude below P-core's.
        "e_missrate_tiny": all(
            result.miss_rate[v]["E"] < 0.01 < result.miss_rate[v]["P"]
            for v in ("openblas", "intel")
        ),
        # Intel runs a larger share of instructions on the E-cores.
        "intel_more_e_instructions": result.instr_share["intel"]["E"]
        > result.instr_share["openblas"]["E"],
    }
