"""Extension experiment: energy efficiency of the core-set choices.

The paper motivates heterogeneous cores with power efficiency ("you can
have fast (but power-hungry) cores ... but smaller more power-efficient
cores").  This experiment quantifies that trade-off on the Table II
runs: Gflop/s per watt for each (variant, core set) cell.

Expected shape: the hybrid-aware build extracts more work per joule on
*every* core set; adding the E-cores **improves** its efficiency (more
silicon at lower voltage under the same budget — the whole point of
hybrid parts) while the homogeneity-naive build's efficiency *drops*
when the E-cores join; and the E-only runs draw by far the least power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    FULL_RAPTOR_CONFIG,
    REDUCED_RAPTOR_CONFIG,
    raptor_core_sets,
    raptor_system,
    render_table,
)
from repro.hpl import HplConfig, run_hpl

CORE_SET_ORDER = ["E only", "P only", "P and E"]


@dataclass
class EnergyCell:
    gflops: float
    avg_power_w: float
    energy_j: float

    @property
    def gflops_per_watt(self) -> float:
        return self.gflops / self.avg_power_w if self.avg_power_w else 0.0


@dataclass
class EnergyResult:
    cells: dict[str, dict[str, EnergyCell]] = field(default_factory=dict)

    def cell(self, core_set: str, variant: str) -> EnergyCell:
        return self.cells[core_set][variant]


def run_energy_efficiency(
    full_scale: bool = False,
    dt_s: float = 0.02,
    config: HplConfig | None = None,
) -> EnergyResult:
    if config is None:
        config = FULL_RAPTOR_CONFIG if full_scale else REDUCED_RAPTOR_CONFIG
    out = EnergyResult()
    for core_set in CORE_SET_ORDER:
        out.cells[core_set] = {}
        for variant in ("openblas", "intel"):
            system = raptor_system(dt_s=dt_s)
            cpus = raptor_core_sets(system)[core_set]
            r = run_hpl(
                system, config, variant=variant, cpus=cpus, settle_temp_c=35.0
            )
            out.cells[core_set][variant] = EnergyCell(
                gflops=r.gflops,
                avg_power_w=r.avg_power_w,
                energy_j=r.energy_j,
            )
    return out


def render(result: EnergyResult) -> str:
    rows = []
    for core_set in CORE_SET_ORDER:
        ob = result.cell(core_set, "openblas")
        it = result.cell(core_set, "intel")
        rows.append(
            [
                core_set,
                f"{ob.gflops:8.2f}",
                f"{ob.avg_power_w:6.1f}",
                f"{ob.gflops_per_watt:6.2f}",
                f"{it.gflops:8.2f}",
                f"{it.avg_power_w:6.1f}",
                f"{it.gflops_per_watt:6.2f}",
            ]
        )
    return render_table(
        [
            "Enabled cores",
            "OB Gflop/s",
            "OB avg W",
            "OB Gf/W",
            "Intel Gflop/s",
            "Intel avg W",
            "Intel Gf/W",
        ],
        rows,
    )


def shape_holds(result: EnergyResult) -> dict[str, bool]:
    return {
        # The hybrid-aware build wins Gflop/s per watt on every core set.
        "intel_more_efficient_everywhere": all(
            result.cell(cs, "intel").gflops_per_watt
            > result.cell(cs, "openblas").gflops_per_watt
            for cs in CORE_SET_ORDER
        ),
        # Adding E-cores improves the hybrid-aware build's efficiency...
        "intel_gains_efficiency_from_ecores": (
            result.cell("P and E", "intel").gflops_per_watt
            > result.cell("P only", "intel").gflops_per_watt
        ),
        # ...but degrades the homogeneity-naive build's.
        "openblas_loses_efficiency_from_ecores": (
            result.cell("P and E", "openblas").gflops_per_watt
            < result.cell("P only", "openblas").gflops_per_watt
        ),
        # E-cores alone draw by far the least power.
        "ecores_lowest_power": all(
            result.cell("E only", v).avg_power_w
            < 0.6 * result.cell("P only", v).avg_power_w
            for v in ("openblas", "intel")
        ),
    }
