"""Lumped RC thermal model and IPA-style thermal throttling.

The package temperature follows a first-order RC model::

    C * dT/dt = P - (T - T_ambient) / R

On the Raptor Lake machine the RAPL power caps keep power low enough that
the 100 degC trip is never reached (the paper notes neither benchmark is
thermally throttled).  On the OrangePi the trip point *is* the binding
constraint: the big cores heat the SoC past the trip within seconds and
get scaled down hard — the mechanism behind Figures 3 and 4.

Throttling mimics Linux's Intelligent Power Allocator (IPA): when the
temperature approaches the trip point a package power budget is computed
and clusters are throttled greedily, the least power-efficient
(power per unit capacity) cluster first, which is why the big cluster
pins at minimum frequency while the LITTLE cluster keeps running.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checkpoint.surface import snapshot_surface
from repro.hw.machines import MachineSpec
from repro.hw.dvfs import DvfsGovernor

CEILING_NAME = "thermal"


@dataclass
class ThermalZone:
    """A sysfs-visible thermal zone (millidegree granularity)."""

    name: str
    index: int
    temp_c: float
    #: Injected sensor fault: None (live), "stale" or "error".
    fault_mode: str | None = None
    _stale_c: float = 0.0

    def set_fault(self, mode: str | None) -> None:
        """Inject/clear a sensor dropout; "stale" freezes the reading."""
        from repro.hw.sensor import check_fault_mode

        check_fault_mode(mode)
        if mode == "stale":
            self._stale_c = self.temp_c
        self.fault_mode = mode

    def visible_c(self) -> float:
        """Unrounded temperature as a reader sees it, honoring faults."""
        from repro.hw.sensor import SensorReadError

        if self.fault_mode == "error":
            raise SensorReadError(f"thermal:{self.name}")
        return self._stale_c if self.fault_mode == "stale" else self.temp_c

    def read_millic(self) -> int:
        """The value a sysfs reader sees, honoring injected faults."""
        return round(self.visible_c() * 1000)

    @property
    def temp_millic(self) -> int:
        return round(self.temp_c * 1000)


@snapshot_surface(
    state=("spec", "temp_c", "zone", "_scale", "throttle_events", "tracer"),
    caches=("_ipa",),
    rebuild="_init_caches",
    digest_exclude=("tracer",),
    note="All state: integrated temperature, the sysfs-visible zone, "
    "per-cluster throttle scales and the throttle-event count.  The "
    "tracer is a digest-excluded observer set by the machine; the IPA "
    "allocator's per-cluster power constants are a derived cache."
)
class ThermalModel:
    """Integrates package temperature and applies thermal frequency limits."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.temp_c = spec.ambient_c
        self.zone = ThermalZone(
            name=spec.thermal_zone_name,
            index=spec.thermal_zone_index,
            temp_c=self.temp_c,
        )
        # Per-cluster throttle scale in (0, 1], 1 = unthrottled.
        self._scale = [1.0] * len(spec.topology.clusters)
        self.throttle_events = 0
        #: Trace observer, set by the owning Machine when tracing is on.
        self.tracer = None
        self._init_caches()

    def _init_caches(self) -> None:
        self._ipa = None

    def _ipa_constants(self):
        """Memoized per-cluster allocator inputs, all derived from the
        static machine spec: min/max-frequency core power at full
        activity and the most-efficient-first grant order."""
        ipa = self._ipa
        if ipa is None:
            clusters = self.spec.topology.clusters
            min_w = [
                cl.ctype.power.core_power(cl.ctype.min_freq_ghz, 1.0)
                for cl in clusters
            ]
            max_w = [
                cl.ctype.power.core_power(cl.ctype.max_freq_ghz, 1.0)
                for cl in clusters
            ]
            order = sorted(
                range(len(clusters)),
                key=lambda i: clusters[i].ctype.capacity / max(max_w[i], 1e-6),
                reverse=True,
            )
            ipa = self._ipa = (min_w, max_w, order)
        return ipa

    @property
    def sustainable_power_w(self) -> float:
        """Power at which temperature settles exactly at the trip point."""
        return (self.spec.thermal_trip_c - self.spec.ambient_c) / self.spec.thermal_r_c_per_w

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the RC model by ``dt_s`` under ``power_w``; returns temp."""
        spec = self.spec
        prev_c = self.temp_c
        dTdt = (power_w - (self.temp_c - spec.ambient_c) / spec.thermal_r_c_per_w) / spec.thermal_c_j_per_c
        self.temp_c += dTdt * dt_s
        self.temp_c = max(spec.ambient_c, self.temp_c)
        self.zone.temp_c = self.temp_c
        # Thermal steps run live on both engine paths; trip-crossing
        # events are therefore emitted at path-identical sim times.
        tr = self.tracer
        if tr is not None and tr.thermal:
            trip = spec.thermal_trip_c
            if (prev_c < trip) != (self.temp_c < trip):
                above = self.temp_c >= trip
                tr.emit(
                    "thermal",
                    "trip_above" if above else "trip_below",
                    args={"temp_c": self.temp_c, "trip_c": trip},
                )
                if above:
                    tr.metrics.counter("thermal.trips", key=self.zone.name)
            tr.metrics.gauge("thermal.temp_c", key=self.zone.name, value=self.temp_c)
        return self.temp_c

    def is_settled(self, target_c: float) -> bool:
        """Whether the package has cooled to ``target_c`` (run-start gate)."""
        return self.temp_c <= target_c

    def _note_scale(self, i: int, new: float) -> None:
        """Update one cluster's throttle scale, tracing the transitions.

        ``apply_throttling`` runs live on both engine paths (macro-tick
        replay steps it too), so begin/end events land at identical sim
        times regardless of the fastpath setting.
        """
        old = self._scale[i]
        tr = self.tracer
        if (
            tr is not None
            and tr.thermal
            and (old < 1.0 - 1e-9) != (new < 1.0 - 1e-9)
        ):
            ct_name = self.spec.topology.clusters[i].ctype.name
            tr.emit(
                "thermal",
                "throttle_begin" if new < 1.0 - 1e-9 else "throttle_end",
                args={"cluster": i, "scale": new, "temp_c": self.temp_c},
            )
            tr.metrics.counter("thermal.throttle_transitions", key=ct_name)
        self._scale[i] = new

    #: Proportional gain of the thermal governor, as a fraction of the
    #: sustainable power per degC of headroom.  Far from the trip point
    #: the budget is effectively unlimited; it converges on the
    #: sustainable power as the trip is approached.
    BUDGET_GAIN_FRACTION_PER_C = 0.1

    def apply_throttling(
        self,
        governor: DvfsGovernor,
        cluster_activity: list[float],
        other_power_w: float,
        dt_s: float,
    ) -> None:
        """Allocate a thermal power budget to clusters (Linux IPA style).

        The budget is ``sustainable + gain * (trip - T)``: far from the
        trip point it is effectively unlimited; as the package heats it
        converges on the sustainable power, so temperature approaches the
        trip asymptotically instead of oscillating.  The budget (minus
        uncore/DRAM draw) is granted to clusters most-efficient-first —
        capacity per watt — so on a big.LITTLE part the big cluster is
        squeezed to its minimum frequency before the LITTLE cluster loses
        anything.

        ``cluster_activity`` is the summed effective busy fraction of the
        cores in each cluster over the last tick; ``other_power_w`` is the
        uncore+DRAM power that comes off the top of the budget.
        """
        spec = self.spec
        topo = spec.topology
        margin = spec.thermal_trip_c - self.temp_c
        budget = self.sustainable_power_w * (
            1.0 + self.BUDGET_GAIN_FRACTION_PER_C * margin
        )
        if margin < 0:
            self.throttle_events += 1
        min_w, max_w, order = self._ipa_constants()

        # Active clusters burn their minimum-frequency power no matter
        # what the allocator decides; take that off the top so granting a
        # cluster zero surplus does not push the package past budget.
        floor_w = {}
        for i in range(len(topo.clusters)):
            activity = cluster_activity[i]
            if activity > 1e-6:
                floor_w[i] = min_w[i] * activity
        remaining = budget - other_power_w - sum(floor_w.values())

        for i in order:
            cl = topo.clusters[i]
            ct = cl.ctype
            activity = cluster_activity[i]
            if activity <= 1e-6:
                governor.set_ceiling(i, CEILING_NAME, ct.max_freq_mhz)
                self._note_scale(i, 1.0)
                continue
            # Grant this cluster its floor plus a share of the surplus.
            extra_demand = (max_w[i] - min_w[i]) * activity
            grant = min(max(remaining, 0.0), extra_demand)
            per_core = (floor_w[i] + grant) / activity
            f_ghz = ct.power.freq_for_power(
                per_core, 1.0, ct.min_freq_ghz, ct.max_freq_ghz
            )
            governor.set_ceiling(i, CEILING_NAME, f_ghz * 1000.0)
            self._note_scale(i, f_ghz / ct.max_freq_ghz)
            used_extra = ct.power.core_power(f_ghz, 1.0) * activity - floor_w[i]
            remaining -= max(used_extra, 0.0)
