"""Sensor fault states shared by the RAPL and thermal models.

Real monitoring deployments see sensors *drop out*: an hwmon read that
starts returning ``EIO``, or a management controller that keeps serving
the last cached value long after the sensor died.  Both failure shapes
are modelled as a per-sensor ``fault_mode``:

* ``"stale"`` — reads keep succeeding but return the value frozen at the
  moment the fault was injected;
* ``"error"`` — reads raise :class:`SensorReadError`, which the kernel
  surfaces translate to ``EIO`` and the PAPI/monitor layers degrade
  around (NaN slots plus an error code instead of an exception).

``None`` restores live readings.
"""

from __future__ import annotations

FAULT_MODES = (None, "stale", "error")


class SensorReadError(RuntimeError):
    """A hardware sensor read failed (injected dropout)."""

    def __init__(self, sensor: str):
        super().__init__(f"sensor {sensor!r} read failed (dropout)")
        self.sensor = sensor


def check_fault_mode(mode) -> None:
    if mode not in FAULT_MODES:
        raise ValueError(f"unknown sensor fault mode {mode!r}; use {FAULT_MODES}")
