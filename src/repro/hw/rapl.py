"""RAPL (Running Average Power Limit) emulation.

Two halves, as on real Intel hardware:

* **Energy accounting** — each :class:`RaplDomain` accumulates energy in
  2^-16 J units in a 32-bit register that wraps, exactly like the
  ``MSR_PKG_ENERGY_STATUS`` counters PAPI's rapl component and the kernel's
  ``power`` perf PMU read.

* **Power capping** — :class:`RaplPackage` enforces the two power limits
  from the paper's Figure 2: the long-term limit PL1 (65 W on the
  i7-13700) over a multi-second averaging window, and the short-term limit
  PL2 (219 W) over a short window.  Enforcement is a running-average
  controller that lowers a package-wide frequency-ceiling scale; because
  the averaging window starts empty, a freshly started workload may burst
  to PL2 for roughly one PL1 window before being clamped to PL1 — the
  "initial spike" visible in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Optional

from repro.checkpoint.surface import snapshot_surface
from repro.hw.dvfs import DvfsGovernor
from repro.hw.machines import MachineSpec
from repro.hw.sensor import SensorReadError, check_fault_mode

#: Energy unit of the emulated MSR: 2^-16 joules (15.26 uJ), Intel default.
ENERGY_UNIT_J = 2.0 ** -16
#: The energy status register is 32 bits wide and wraps.
ENERGY_COUNTER_MASK = 0xFFFFFFFF

CEILING_NAME = "rapl"


@dataclass
class RaplDomain:
    """One RAPL domain (package, pp0/cores, dram...)."""

    name: str
    energy_j: float = 0.0      # unwrapped ground truth
    _raw_units: float = 0.0
    #: Injected sensor fault: None (live), "stale" or "error".
    fault_mode: Optional[str] = None
    _stale_j: float = 0.0
    _stale_units: float = 0.0

    def accumulate(self, power_w: float, dt_s: float) -> None:
        e = power_w * dt_s
        self.energy_j += e
        self._raw_units += e / ENERGY_UNIT_J

    def set_fault(self, mode: Optional[str]) -> None:
        """Inject/clear a sensor dropout; "stale" freezes the reading."""
        check_fault_mode(mode)
        if mode == "stale":
            self._stale_j = self.energy_j
            self._stale_units = self._raw_units
        self.fault_mode = mode

    def visible_energy_j(self) -> float:
        """Energy as a reader sees it (ground truth unless faulted)."""
        if self.fault_mode == "error":
            raise SensorReadError(f"rapl:{self.name}")
        if self.fault_mode == "stale":
            return self._stale_j
        return self.energy_j

    def read_raw(self) -> int:
        """The wrapped 32-bit MSR value, in 2^-16 J units."""
        if self.fault_mode == "error":
            raise SensorReadError(f"rapl:{self.name}")
        units = self._stale_units if self.fault_mode == "stale" else self._raw_units
        return int(units) & ENERGY_COUNTER_MASK

    def read_uj(self) -> int:
        """Energy in microjoules as the kernel's powercap sysfs reports it."""
        return int(self.visible_energy_j() * 1e6)


@dataclass
@snapshot_surface(
    state=(
        "spec",
        "package",
        "cores",
        "dram",
        "_avg1_w",
        "_avg_fast_w",
        "_scale",
        "throttle_events",
        "tracer",
    ),
    digest_exclude=("tracer",),
    note="All state: domain energy accumulators, capping-controller "
    "averages and scale, throttle events, and fault modes.  The tracer "
    "is a digest-excluded observer set by the machine."
)
class RaplPackage:
    """Package-level RAPL: domains plus the PL1/PL2 capping controller."""

    spec: MachineSpec
    package: RaplDomain = field(default_factory=lambda: RaplDomain("package-0"))
    cores: RaplDomain = field(default_factory=lambda: RaplDomain("core"))
    dram: RaplDomain = field(default_factory=lambda: RaplDomain("dram"))
    _avg1_w: float = 0.0       # running average over the PL1 window
    _avg_fast_w: float = 0.0   # short EWMA the controller acts on
    _scale: float = 1.0        # package frequency-ceiling scale in (0, 1]
    throttle_events: int = 0
    #: Trace observer, set by the owning Machine when tracing is on.
    tracer: Optional[object] = None

    #: Smoothing window of the control signal, seconds.
    FAST_WINDOW_S = 0.25

    @property
    def enabled(self) -> bool:
        return self.spec.has_rapl

    @property
    def domains(self) -> list[RaplDomain]:
        return [self.package, self.cores, self.dram]

    def step(
        self,
        governor: DvfsGovernor,
        package_w: float,
        cores_w: float,
        dram_w: float,
        dt_s: float,
    ) -> None:
        """Account one tick of energy and run the capping controller."""
        self.package.accumulate(package_w, dt_s)
        self.cores.accumulate(cores_w, dt_s)
        self.dram.accumulate(dram_w, dt_s)
        # RAPL steps run live on both engine paths, so the periodic
        # energy samples land at identical sim times under either path.
        tr = self.tracer
        if tr is not None and not tr.rapl:
            tr = None
        if tr is not None:
            tr.rapl_sample(self, package_w)
        if not self.enabled:
            return
        pl1 = self.spec.rapl_pl1_w
        pl2 = self.spec.rapl_pl2_w
        w1 = self.spec.rapl_pl1_window_s
        # Exponential running averages; the PL1 window starts empty, so a
        # fresh workload may burst up to PL2 until it fills — Figure 2's
        # initial spike.
        self._avg1_w += (package_w - self._avg1_w) * min(1.0, dt_s / w1)
        self._avg_fast_w += (package_w - self._avg_fast_w) * min(
            1.0, dt_s / self.FAST_WINDOW_S
        )

        # The budget the controller defends: PL2 while the long-term
        # average is still under PL1, then PL1.
        budget = pl2 if (pl2 is not None and self._avg1_w < pl1 * 0.98) else pl1
        signal = max(self._avg_fast_w, 1e-3)
        ratio = (budget / signal) ** 0.25
        # Rate-limit scale changes: shrink faster than grow.
        lo = 1.0 - min(0.5, 1.2 * dt_s)
        hi = 1.0 + min(0.2, 0.5 * dt_s)
        adj = min(max(ratio, lo), hi)
        if adj < 1.0:
            self.throttle_events += 1
        prev_scale = self._scale
        self._scale = min(1.0, max(0.05, self._scale * adj))
        if (
            tr is not None
            and (self._scale < 1.0 - 1e-9) != (prev_scale < 1.0 - 1e-9)
        ):
            limited = self._scale < 1.0 - 1e-9
            tr.emit(
                "rapl",
                "power_limit_begin" if limited else "power_limit_end",
                args={
                    "budget_w": budget,
                    "avg_w": self._avg1_w,
                    "scale": self._scale,
                },
            )
            if limited:
                tr.metrics.counter(
                    "rapl.power_limit_transitions", key=self.package.name
                )

        for i, cl in enumerate(self.spec.topology.clusters):
            governor.set_ceiling(i, CEILING_NAME, cl.ctype.max_freq_mhz * self._scale)

    # -- introspection used by the monitor/sampler -------------------------

    @property
    def avg_power_pl1_window_w(self) -> float:
        return self._avg1_w

    @property
    def scale(self) -> float:
        return self._scale
