"""CPU identification: x86 ``cpuid`` and ARM MIDR emulation.

These are the identification mechanisms §IV-B of the paper enumerates for
detecting heterogeneous core types:

* Intel: ``cpuid`` leaf 0x1A returns the core type in EAX[31:24]
  (0x20 = Atom/E-core, 0x40 = Core/P-core); leaf 7 EDX[15] is the hybrid
  flag.  Family/model/stepping (leaf 1) are *identical* across P and E
  cores, which is why ``/proc/cpuinfo`` cannot tell them apart.
* ARM: the MIDR register carries implementer and part numbers that do
  differ between, e.g., Cortex-A53 and Cortex-A72.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.machines import MachineSpec

CPUID_LEAF_VENDOR = 0x0
CPUID_LEAF_FMS = 0x1
CPUID_LEAF_STRUCT_EXT = 0x7
CPUID_LEAF_HYBRID = 0x1A

HYBRID_FLAG_BIT = 15  # leaf 7, EDX


@dataclass(frozen=True)
class CpuidResult:
    eax: int
    ebx: int
    ecx: int
    edx: int


@dataclass(frozen=True)
class ArmMidr:
    """ARM Main ID Register value."""

    implementer: int
    part: int
    variant: int = 0
    revision: int = 0

    @property
    def value(self) -> int:
        return (
            (self.implementer & 0xFF) << 24
            | (self.variant & 0xF) << 20
            | 0xF << 16  # architecture: "by CPUID scheme"
            | (self.part & 0xFFF) << 4
            | (self.revision & 0xF)
        )

    @classmethod
    def from_value(cls, value: int) -> "ArmMidr":
        return cls(
            implementer=(value >> 24) & 0xFF,
            variant=(value >> 20) & 0xF,
            part=(value >> 4) & 0xFFF,
            revision=value & 0xF,
        )


ARM_IMPLEMENTER = 0x41  # 'A'


class CpuidEmulator:
    """Per-CPU ``cpuid`` for a simulated machine.

    Executing ``cpuid`` is inherently per-core: the result depends on
    which CPU the calling thread runs on, exactly as on hardware.
    """

    def __init__(self, spec: MachineSpec):
        self.spec = spec

    def is_x86(self) -> bool:
        return any(ct.vendor == "intel" for ct in self.spec.topology.core_types)

    def cpuid(self, cpu_id: int, leaf: int) -> CpuidResult:
        if not self.is_x86():
            raise NotImplementedError("cpuid is an x86 instruction")
        ct = self.spec.topology.core(cpu_id).ctype
        if leaf == CPUID_LEAF_VENDOR:
            # "GenuineIntel" packed into ebx/edx/ecx.
            return CpuidResult(CPUID_LEAF_HYBRID, 0x756E6547, 0x6C65746E, 0x49656E69)
        if leaf == CPUID_LEAF_FMS:
            family = ct.x86_family or 0
            model = ct.x86_model or 0
            stepping = ct.x86_stepping or 0
            eax = (
                ((family & 0xF00) >> 8) << 20
                | ((model & 0xF0) >> 4) << 16
                | min(family, 0xF) << 8
                | (model & 0xF) << 4
                | (stepping & 0xF)
            )
            return CpuidResult(eax, 0, 0, 0)
        if leaf == CPUID_LEAF_STRUCT_EXT:
            edx = (1 << HYBRID_FLAG_BIT) if self.spec.topology.is_heterogeneous else 0
            return CpuidResult(0, 0, 0, edx)
        if leaf == CPUID_LEAF_HYBRID:
            core_type = ct.cpuid_core_type or 0
            return CpuidResult((core_type & 0xFF) << 24, 0, 0, 0)
        return CpuidResult(0, 0, 0, 0)

    def is_hybrid(self, cpu_id: int = 0) -> bool:
        return bool(
            self.cpuid(cpu_id, CPUID_LEAF_STRUCT_EXT).edx & (1 << HYBRID_FLAG_BIT)
        )

    def core_type(self, cpu_id: int) -> int:
        """Leaf 0x1A EAX[31:24] value for the given CPU."""
        return (self.cpuid(cpu_id, CPUID_LEAF_HYBRID).eax >> 24) & 0xFF

    def midr(self, cpu_id: int) -> ArmMidr:
        ct = self.spec.topology.core(cpu_id).ctype
        if ct.midr_part is None:
            raise NotImplementedError("MIDR is an ARM register")
        return ArmMidr(implementer=ARM_IMPLEMENTER, part=ct.midr_part)
