"""Concrete machine presets.

Two presets mirror the paper's two testbeds (Table I and Table IV):

* :func:`raptor_lake_i7_13700` — the Intel 13th-gen desktop with 8 P-cores
  (2 threads each) and 8 E-cores, PL1 = 65 W / PL2 = 219 W.
* :func:`orangepi_800` — the Rockchip RK3399 board with 2 Cortex-A72 big
  cores and 4 Cortex-A53 LITTLE cores, thermally limited.

Two more exercise generality:

* :func:`homogeneous_xeon` — a traditional homogeneous machine (the paper's
  "on a traditional machine you get the expected result" baseline).
* :func:`dynamiq_three_tier` — an ARM machine with *three* core types
  (prime/big/LITTLE), since the paper notes perf must handle "ARM CPUs with
  three types".

Power and microarchitecture coefficients are calibrated so that the
closed-loop simulation (DVFS + RAPL capping + thermal throttling) lands
near the paper's measured operating points; see DESIGN.md "calibration
anchors".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.coretype import ArchEvent, CoreType, PowerCoefficients
from repro.hw.topology import CpuTopology

# Intel CPUID leaf 0x1A core-type values.
INTEL_CORE_TYPE_ATOM = 0x20
INTEL_CORE_TYPE_CORE = 0x40

# ARM MIDR part numbers.
MIDR_PART_CORTEX_A53 = 0xD03
MIDR_PART_CORTEX_A55 = 0xD05
MIDR_PART_CORTEX_A72 = 0xD08
MIDR_PART_CORTEX_A76 = 0xD0B
MIDR_PART_CORTEX_X1 = 0xD44


@dataclass
class MachineSpec:
    """Everything needed to instantiate a simulated machine."""

    name: str
    topology: CpuTopology
    memory_gib: int
    # Package power model.
    uncore_base_w: float            # always-on package power (uncore, fabric)
    dram_w_per_util: float          # DRAM power at full-machine utilization
    # RAPL (None on machines without RAPL, e.g. ARM boards).
    rapl_pl1_w: float | None = None
    rapl_pl2_w: float | None = None
    rapl_pl1_window_s: float = 8.0
    rapl_pl2_window_s: float = 2.0
    # Thermal.
    ambient_c: float = 25.0
    tjmax_c: float = 100.0
    thermal_trip_c: float = 100.0   # temperature the throttler defends
    thermal_r_c_per_w: float = 0.6  # package thermal resistance
    thermal_c_j_per_c: float = 40.0  # package heat capacity
    thermal_zone_name: str = "x86_pkg_temp"
    thermal_zone_index: int = 9
    # Firmware personality: affects ARM PMU naming in sysfs ("devicetree"
    # boards vs "acpi" servers export different names for the same PMU).
    firmware: str = "acpi"
    vendor_string: str = ""
    model_string: str = ""
    # Board overhead added by a wall power meter (WattsUpPro in the paper).
    board_base_w: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def has_rapl(self) -> bool:
        return self.rapl_pl1_w is not None


def _raptor_cove() -> CoreType:
    """Raptor Lake P-core (libpfm4 models it with the Alder Lake GLC table)."""
    return CoreType(
        name="P-core",
        microarch="goldencove",
        vendor="intel",
        pmu_name="cpu_core",
        pfm_pmu="adl_glc",
        smt=2,
        capacity=1024,
        min_freq_mhz=800,
        base_freq_mhz=2100,
        max_freq_mhz=5100,
        ipc=4.0,
        flops_per_cycle=16.0,       # 2x 256-bit FMA units
        branch_misp_rate=0.01,
        llc_miss_penalty_cycles=220.0,
        l1d_kib=48,
        l2_kib=2048,
        power=PowerCoefficients(c_dyn=1.70, v0=0.60, v_slope=0.16, leak_w=0.10),
        cpuid_core_type=INTEL_CORE_TYPE_CORE,
        x86_family=6,
        x86_model=0xB7,
        x86_stepping=1,
        extra_pmu_events=(ArchEvent.TOPDOWN_SLOTS,),
        n_gp_counters=8,
        n_fixed_counters=4,
    )


def _gracemont() -> CoreType:
    """Raptor Lake E-core (libpfm4 ADL GRT table)."""
    return CoreType(
        name="E-core",
        microarch="gracemont",
        vendor="intel",
        pmu_name="cpu_atom",
        pfm_pmu="adl_grt",
        smt=1,
        capacity=580,
        min_freq_mhz=800,
        base_freq_mhz=1500,
        max_freq_mhz=4100,
        ipc=3.0,
        flops_per_cycle=8.0,        # AVX2 via 2x 128-bit pipes
        branch_misp_rate=0.015,
        llc_miss_penalty_cycles=260.0,
        l1d_kib=32,
        l2_kib=1024,                # 4 MiB per 4-core cluster
        power=PowerCoefficients(c_dyn=0.58, v0=0.55, v_slope=0.18, leak_w=0.06),
        cpuid_core_type=INTEL_CORE_TYPE_ATOM,
        # Same family/model/stepping as the P-core: the paper's point that
        # /proc/cpuinfo cannot distinguish Intel hybrid core types.
        x86_family=6,
        x86_model=0xB7,
        x86_stepping=1,
        n_gp_counters=6,
        n_fixed_counters=3,
    )


def _cortex_a72(firmware: str = "devicetree") -> CoreType:
    pmu_name = "armv8_cortex_a72" if firmware == "devicetree" else "apmu0"
    return CoreType(
        name="big",
        microarch="cortex_a72",
        vendor="arm",
        pmu_name=pmu_name,
        pfm_pmu="arm_a72",
        smt=1,
        capacity=1024,
        min_freq_mhz=408,
        base_freq_mhz=1200,
        max_freq_mhz=1800,
        ipc=2.2,
        flops_per_cycle=4.0,        # 2-wide NEON DP FMA
        branch_misp_rate=0.02,
        llc_miss_penalty_cycles=180.0,
        l1d_kib=32,
        l2_kib=1024,
        power=PowerCoefficients(c_dyn=1.30, v0=0.90, v_slope=0.15, leak_w=0.10),
        midr_part=MIDR_PART_CORTEX_A72,
        n_gp_counters=6,
        n_fixed_counters=1,
    )


def _cortex_a53(firmware: str = "devicetree") -> CoreType:
    pmu_name = "armv8_cortex_a53" if firmware == "devicetree" else "apmu1"
    return CoreType(
        name="LITTLE",
        microarch="cortex_a53",
        vendor="arm",
        pmu_name=pmu_name,
        pfm_pmu="arm_a53",
        smt=1,
        capacity=420,
        min_freq_mhz=408,
        base_freq_mhz=1000,
        max_freq_mhz=1400,
        ipc=1.2,
        flops_per_cycle=2.0,        # in-order, 1x 128-bit NEON
        branch_misp_rate=0.03,
        llc_miss_penalty_cycles=140.0,
        l1d_kib=32,
        l2_kib=512,
        power=PowerCoefficients(c_dyn=0.231, v0=0.90, v_slope=0.10, leak_w=0.08),
        midr_part=MIDR_PART_CORTEX_A53,
        n_gp_counters=6,
        n_fixed_counters=1,
    )


def raptor_lake_i7_13700() -> MachineSpec:
    """The paper's Table I machine: i7-13700, 8P (16 threads) + 8E, 32 GiB."""
    p = _raptor_cove()
    e = _gracemont()
    return MachineSpec(
        name="raptor-lake-i7-13700",
        topology=CpuTopology.build([(p, 8), (e, 8)]),
        memory_gib=32,
        uncore_base_w=6.0,
        dram_w_per_util=10.0,
        rapl_pl1_w=65.0,
        rapl_pl2_w=219.0,
        rapl_pl1_window_s=28.0,
        rapl_pl2_window_s=2.44,
        ambient_c=25.0,
        tjmax_c=100.0,
        thermal_trip_c=100.0,
        thermal_r_c_per_w=0.55,
        thermal_c_j_per_c=60.0,
        thermal_zone_name="x86_pkg_temp",
        thermal_zone_index=9,
        firmware="acpi",
        vendor_string="GenuineIntel",
        model_string="13th Gen Intel(R) Core(TM) i7-13700",
        extra={"llc_mib": 30.0, "memory_type": "DDR5", "memory_gts": 4.4},
    )


def orangepi_800(firmware: str = "devicetree") -> MachineSpec:
    """The paper's Table IV machine: RK3399, 2x A72 big + 4x A53 LITTLE.

    No RAPL; performance is limited by the passive-cooling thermal budget,
    which is what produces Figures 3 and 4.
    """
    big = _cortex_a72(firmware)
    little = _cortex_a53(firmware)
    return MachineSpec(
        name="orangepi-800",
        # RK3399 numbers the A53 cluster first (cpu0-3), A72 second (cpu4-5).
        topology=CpuTopology.build([(little, 4), (big, 2)]),
        memory_gib=4,
        uncore_base_w=0.5,
        dram_w_per_util=0.3,
        rapl_pl1_w=None,
        rapl_pl2_w=None,
        ambient_c=25.0,
        tjmax_c=115.0,
        thermal_trip_c=85.0,
        thermal_r_c_per_w=18.0,     # passive cooling: hot and fast to heat
        thermal_c_j_per_c=0.5,
        thermal_zone_name="soc-thermal",
        thermal_zone_index=0,
        firmware=firmware,
        vendor_string="Rockchip",
        model_string="Rockchip RK3399 (OrangePi 800)",
        board_base_w=2.5,
        extra={"llc_mib": 1.0, "memory_type": "LPDDR4"},
    )


def alder_lake_i5_12600k() -> MachineSpec:
    """An Alder Lake i5-12600K: 6 P-cores (12 threads) + 4 E-cores.

    Same microarchitectures and PMUs as the Raptor Lake preset but a
    different core mix and power budget — exercises topology generality
    (nothing in the library may assume the 8+8 layout).
    """
    p = _raptor_cove()
    e = _gracemont()
    # The i5 tops out lower than the i7.
    p = CoreType(**{**p.__dict__, "max_freq_mhz": 4900})
    e = CoreType(**{**e.__dict__, "max_freq_mhz": 3600})
    return MachineSpec(
        name="alder-lake-i5-12600k",
        topology=CpuTopology.build([(p, 6), (e, 4)]),
        memory_gib=16,
        uncore_base_w=5.0,
        dram_w_per_util=8.0,
        rapl_pl1_w=125.0,
        rapl_pl2_w=150.0,
        rapl_pl1_window_s=28.0,
        rapl_pl2_window_s=2.44,
        ambient_c=25.0,
        tjmax_c=100.0,
        thermal_trip_c=100.0,
        thermal_r_c_per_w=0.45,
        thermal_c_j_per_c=55.0,
        thermal_zone_name="x86_pkg_temp",
        thermal_zone_index=9,
        firmware="acpi",
        vendor_string="GenuineIntel",
        model_string="12th Gen Intel(R) Core(TM) i5-12600K",
        extra={"llc_mib": 20.0, "memory_type": "DDR4"},
    )


def homogeneous_xeon() -> MachineSpec:
    """A traditional homogeneous server; the control machine for the tests."""
    core = CoreType(
        name="core",
        microarch="skylake_sp",
        vendor="intel",
        pmu_name="cpu",
        pfm_pmu="skx",
        smt=2,
        capacity=1024,
        min_freq_mhz=1200,
        base_freq_mhz=2400,
        max_freq_mhz=3500,
        ipc=3.5,
        flops_per_cycle=32.0,       # AVX-512
        branch_misp_rate=0.01,
        llc_miss_penalty_cycles=200.0,
        l1d_kib=32,
        l2_kib=1024,
        power=PowerCoefficients(c_dyn=3.6, v0=0.65, v_slope=0.12, leak_w=0.5),
        x86_family=6,
        x86_model=0x55,
        x86_stepping=4,
        n_gp_counters=8,
        n_fixed_counters=3,
    )
    return MachineSpec(
        name="xeon-homogeneous",
        topology=CpuTopology.build([(core, 8)]),
        memory_gib=64,
        uncore_base_w=18.0,
        dram_w_per_util=10.0,
        rapl_pl1_w=140.0,
        rapl_pl2_w=200.0,
        ambient_c=25.0,
        tjmax_c=96.0,
        thermal_trip_c=96.0,
        thermal_r_c_per_w=0.35,
        thermal_c_j_per_c=80.0,
        firmware="acpi",
        vendor_string="GenuineIntel",
        model_string="Intel(R) Xeon(R) Homogeneous Control",
        extra={"llc_mib": 11.0, "memory_type": "DDR4"},
    )


def dynamiq_three_tier(firmware: str = "devicetree") -> MachineSpec:
    """An ARM DynamIQ machine with three core types (prime/big/LITTLE).

    The paper notes Linux exports one PMU per core type and that "there
    exist ARM CPUs with three types"; this preset exercises that path in
    the detection and multi-PMU EventSet code.
    """
    prime = CoreType(
        name="prime",
        microarch="cortex_x1",
        vendor="arm",
        pmu_name="armv8_cortex_x1" if firmware == "devicetree" else "apmu0",
        pfm_pmu="arm_x1",
        smt=1,
        capacity=1024,
        min_freq_mhz=500,
        base_freq_mhz=2000,
        max_freq_mhz=2800,
        ipc=3.2,
        flops_per_cycle=8.0,
        branch_misp_rate=0.01,
        llc_miss_penalty_cycles=190.0,
        l1d_kib=64,
        l2_kib=1024,
        power=PowerCoefficients(c_dyn=0.9, v0=0.85, v_slope=0.12, leak_w=0.15),
        midr_part=MIDR_PART_CORTEX_X1,
        n_gp_counters=6,
        n_fixed_counters=1,
    )
    big = CoreType(
        name="big",
        microarch="cortex_a76",
        vendor="arm",
        pmu_name="armv8_cortex_a76" if firmware == "devicetree" else "apmu1",
        pfm_pmu="arm_a76",
        smt=1,
        capacity=700,
        min_freq_mhz=500,
        base_freq_mhz=1800,
        max_freq_mhz=2400,
        ipc=2.8,
        flops_per_cycle=8.0,
        branch_misp_rate=0.012,
        llc_miss_penalty_cycles=180.0,
        l1d_kib=64,
        l2_kib=512,
        power=PowerCoefficients(c_dyn=0.55, v0=0.85, v_slope=0.11, leak_w=0.1),
        midr_part=MIDR_PART_CORTEX_A76,
        n_gp_counters=6,
        n_fixed_counters=1,
    )
    little = CoreType(
        name="LITTLE",
        microarch="cortex_a55",
        vendor="arm",
        pmu_name="armv8_cortex_a55" if firmware == "devicetree" else "apmu2",
        pfm_pmu="arm_a55",
        smt=1,
        capacity=260,
        min_freq_mhz=300,
        base_freq_mhz=1200,
        max_freq_mhz=1800,
        ipc=1.4,
        flops_per_cycle=2.0,
        branch_misp_rate=0.025,
        llc_miss_penalty_cycles=150.0,
        l1d_kib=32,
        l2_kib=256,
        power=PowerCoefficients(c_dyn=0.18, v0=0.85, v_slope=0.09, leak_w=0.05),
        midr_part=MIDR_PART_CORTEX_A55,
        n_gp_counters=6,
        n_fixed_counters=1,
    )
    return MachineSpec(
        name="dynamiq-three-tier",
        topology=CpuTopology.build([(little, 4), (big, 3), (prime, 1)]),
        memory_gib=8,
        uncore_base_w=0.8,
        dram_w_per_util=0.5,
        rapl_pl1_w=None,
        rapl_pl2_w=None,
        ambient_c=25.0,
        tjmax_c=110.0,
        thermal_trip_c=80.0,
        thermal_r_c_per_w=14.0,
        thermal_c_j_per_c=1.8,
        thermal_zone_name="soc-thermal",
        thermal_zone_index=0,
        firmware=firmware,
        vendor_string="ARM",
        model_string="DynamIQ three-tier reference",
        extra={"llc_mib": 2.0, "memory_type": "LPDDR4X"},
    )


MACHINE_PRESETS = {
    "raptor-lake-i7-13700": raptor_lake_i7_13700,
    "alder-lake-i5-12600k": alder_lake_i5_12600k,
    "orangepi-800": orangepi_800,
    "xeon-homogeneous": homogeneous_xeon,
    "dynamiq-three-tier": dynamiq_three_tier,
}
