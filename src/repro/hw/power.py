"""Package power model.

Per-core dynamic power follows the classic ``C * f * V^2`` law with a
linear voltage/frequency curve (coefficients live on each
:class:`~repro.hw.coretype.CoreType`); idle cores burn only leakage.
Cores that are *spin-waiting* (busy-looping at a synchronization barrier,
as BLAS thread pools do) draw a configurable fraction of full busy power —
this is what makes the naive HPL variant peak at ~166 W while the
hybrid-aware variant reaches ~215 W (Figure 2).

Package power adds an uncore/fabric base and DRAM power scaled by average
machine utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checkpoint.surface import snapshot_surface
from repro.hw.machines import MachineSpec

#: Fraction of full dynamic power drawn by a core spinning at a barrier.
SPIN_POWER_FRACTION = 0.5


@dataclass
class CorePowerState:
    """Activity of one logical CPU over the last tick."""

    busy_frac: float = 0.0   # fraction of the tick doing real work
    spin_frac: float = 0.0   # fraction of the tick spin-waiting


@dataclass
class PowerSample:
    """One tick's power breakdown, in watts."""

    package_w: float
    per_cluster_w: list[float]
    uncore_w: float
    dram_w: float

    @property
    def cores_w(self) -> float:
        return sum(self.per_cluster_w)


@snapshot_surface(
    state=("spec", "topology", "_phys_groups"),
    note="Stateless between ticks apart from the static physical-core "
    "grouping, which is derived from the topology and pickles as-is."
)
class PowerModel:
    """Computes instantaneous package power from per-CPU activity."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.topology = spec.topology
        # SMT siblings share a physical core's power budget; account
        # physical cores once.  The grouping is static, so precompute
        # (cluster, core type, sibling cpu ids) per physical core.
        seen_phys: dict[int, list[int]] = {}
        for core in self.topology.cores:
            seen_phys.setdefault(core.phys_core, []).append(core.cpu_id)
        self._phys_groups = [
            (
                self.topology.core(cpu_ids[0]).cluster,
                self.topology.core(cpu_ids[0]).ctype,
                cpu_ids,
            )
            for cpu_ids in seen_phys.values()
        ]

    def sample(
        self,
        states: list[CorePowerState],
        cluster_freq_mhz: list[float],
    ) -> PowerSample:
        topo = self.topology
        if len(states) != topo.n_cpus:
            raise ValueError("one CorePowerState per logical CPU required")
        busy = [s.busy_frac for s in states]
        spin = [s.spin_frac for s in states]
        return self.sample_activity(busy, spin, cluster_freq_mhz)

    def sample_activity(
        self,
        busy,
        spin,
        cluster_freq_mhz: list[float],
    ) -> PowerSample:
        """Sample from per-CPU busy/spin fraction sequences (indexable by
        cpu id — lists or numpy arrays)."""
        # Normalize numpy inputs to plain floats once, up front, so the
        # hot accumulations below stay off the numpy scalar-boxing path
        # and keep returning builtin floats either way.
        if type(busy) is not list:
            busy = [float(v) for v in busy]
        if type(spin) is not list:
            spin = [float(v) for v in spin]
        per_cluster = [0.0] * len(self.topology.clusters)
        ghz = [f / 1000.0 for f in cluster_freq_mhz]
        spf = SPIN_POWER_FRACTION
        for cluster, ct, cpu_ids in self._phys_groups:
            if len(cpu_ids) == 1:
                c0 = cpu_ids[0]
                # Single-occupancy core: primary + 0.0 extra, clamped.
                eff_activity = busy[c0] + spf * spin[c0]
                if eff_activity > 1.2:
                    eff_activity = 1.2
            else:
                activities = [busy[c] + spf * spin[c] for c in cpu_ids]
                primary = max(activities)
                # A busy SMT sibling adds ~20% on top of the shared core
                # power.
                extra = 0.2 * (sum(activities) - primary)
                eff_activity = primary + extra
                if eff_activity > 1.2:
                    eff_activity = 1.2
            per_cluster[cluster] += ct.power.core_power(ghz[cluster], eff_activity)
        n = len(self.topology.cores)
        util = 0.0
        for b, s in zip(busy, spin):
            util += b + s
        avg_util = util / max(1, n)
        uncore = self.spec.uncore_base_w
        dram = self.spec.dram_w_per_util * avg_util
        return PowerSample(
            package_w=sum(per_cluster) + uncore + dram,
            per_cluster_w=per_cluster,
            uncore_w=uncore,
            dram_w=dram,
        )

    def max_package_w(self) -> float:
        """Upper bound: every core busy at max frequency."""
        states = [CorePowerState(busy_frac=1.0) for _ in self.topology.cores]
        freqs = [cl.ctype.max_freq_mhz for cl in self.topology.clusters]
        return self.sample(states, freqs).package_w
