"""Native hardware event encodings per microarchitecture.

These are the raw PMU config codes hardware documents (Intel SDM event
select + umask, ARM PMUv3 event numbers).  Both sides of the software
stack consult them: the simulated kernel builds its per-PMU decode table
from here, and the libpfm4 reproduction encodes event-name strings to the
same codes — mirroring how the real libpfm4 tables transcribe the vendor
manuals.

Codes follow Intel's ``(umask << 8) | event_select`` convention and ARM's
PMUv3 common event numbers, so the tables read like the vendor docs.
"""

from __future__ import annotations

from repro.hw.coretype import ArchEvent

# -- Intel Alder/Raptor Lake Golden Cove P-core ("adl_glc") ----------------

ADL_GLC_CODES: dict[int, ArchEvent] = {
    0x00C0: ArchEvent.INSTRUCTIONS,        # INST_RETIRED.ANY
    0x003C: ArchEvent.CYCLES,              # CPU_CLK_UNHALTED.THREAD
    0x013C: ArchEvent.REF_CYCLES,          # CPU_CLK_UNHALTED.REF_TSC
    0x4F2E: ArchEvent.LLC_REFERENCES,      # LONGEST_LAT_CACHE.REFERENCE
    0x412E: ArchEvent.LLC_MISSES,          # LONGEST_LAT_CACHE.MISS
    0x00C4: ArchEvent.BRANCHES,            # BR_INST_RETIRED.ALL_BRANCHES
    0x00C5: ArchEvent.BRANCH_MISSES,       # BR_MISP_RETIRED.ALL_BRANCHES
    0x01C7: ArchEvent.FP_OPS,              # FP_ARITH_INST_RETIRED (scalar+vec)
    0x01A3: ArchEvent.STALLED_CYCLES,      # CYCLE_ACTIVITY.STALLS_TOTAL
    0x0400: ArchEvent.TOPDOWN_SLOTS,       # TOPDOWN.SLOTS (P-core only)
    0x1F24: ArchEvent.L2_REFERENCES,       # L2_RQSTS.REFERENCES
    0x3F24: ArchEvent.L2_MISSES,           # L2_RQSTS.MISS
}

# -- Intel Alder/Raptor Lake Gracemont E-core ("adl_grt") ------------------
# Same vendor conventions, but no TOPDOWN event — the paper's example of a
# P-core-only hardware feature.

ADL_GRT_CODES: dict[int, ArchEvent] = {
    0x00C0: ArchEvent.INSTRUCTIONS,
    0x003C: ArchEvent.CYCLES,
    0x013C: ArchEvent.REF_CYCLES,
    0x4F2E: ArchEvent.LLC_REFERENCES,
    0x412E: ArchEvent.LLC_MISSES,
    0x00C4: ArchEvent.BRANCHES,
    0x00C5: ArchEvent.BRANCH_MISSES,
    0x01C7: ArchEvent.FP_OPS,
    0x0134: ArchEvent.STALLED_CYCLES,      # TOPDOWN_BAD_SPECULATION-ish proxy
    0x1F24: ArchEvent.L2_REFERENCES,
    0x3F24: ArchEvent.L2_MISSES,
}

# -- ARM PMUv3 common events (Cortex-A53/A55/A72/A76/X1) -------------------

_ARM_COMMON: dict[int, ArchEvent] = {
    0x08: ArchEvent.INSTRUCTIONS,          # INST_RETIRED
    0x11: ArchEvent.CYCLES,                # CPU_CYCLES
    0x10: ArchEvent.BRANCH_MISSES,         # BR_MIS_PRED
    0x12: ArchEvent.BRANCHES,              # BR_PRED
    0x16: ArchEvent.L2_REFERENCES,         # L2D_CACHE
    0x17: ArchEvent.L2_MISSES,             # L2D_CACHE_REFILL
    0x2A: ArchEvent.LLC_REFERENCES,        # L3D_CACHE (or bus access proxy)
    0x2B: ArchEvent.LLC_MISSES,            # L3D_CACHE_REFILL
    0x73: ArchEvent.FP_OPS,                # ASE_SPEC / VFP proxy
    0x24: ArchEvent.STALLED_CYCLES,        # STALL_BACKEND
    0x1D: ArchEvent.REF_CYCLES,            # BUS_CYCLES proxy
}

ARM_A53_CODES = dict(_ARM_COMMON)
ARM_A55_CODES = dict(_ARM_COMMON)
ARM_A72_CODES = dict(_ARM_COMMON)
ARM_A76_CODES = dict(_ARM_COMMON)
ARM_X1_CODES = dict(_ARM_COMMON)

# -- Skylake-SP (homogeneous control machine) ------------------------------

SKX_CODES: dict[int, ArchEvent] = {
    0x00C0: ArchEvent.INSTRUCTIONS,
    0x003C: ArchEvent.CYCLES,
    0x013C: ArchEvent.REF_CYCLES,
    0x4F2E: ArchEvent.LLC_REFERENCES,
    0x412E: ArchEvent.LLC_MISSES,
    0x00C4: ArchEvent.BRANCHES,
    0x00C5: ArchEvent.BRANCH_MISSES,
    0x01C7: ArchEvent.FP_OPS,
    0x01A3: ArchEvent.STALLED_CYCLES,
    0x1F24: ArchEvent.L2_REFERENCES,
    0x3F24: ArchEvent.L2_MISSES,
}

#: pfm PMU name -> native decode table.
CODES_BY_PFM_PMU: dict[str, dict[int, ArchEvent]] = {
    "adl_glc": ADL_GLC_CODES,
    "adl_grt": ADL_GRT_CODES,
    "arm_a53": ARM_A53_CODES,
    "arm_a55": ARM_A55_CODES,
    "arm_a72": ARM_A72_CODES,
    "arm_a76": ARM_A76_CODES,
    "arm_x1": ARM_X1_CODES,
    "skx": SKX_CODES,
}
