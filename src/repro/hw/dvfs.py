"""Per-cluster dynamic voltage and frequency scaling.

The governor is schedutil-like: each cluster requests a frequency
proportional to the utilization of its busiest core (with the usual 1.25x
headroom), clipped to externally imposed *ceilings*.  Two controllers push
ceilings down: the RAPL power-cap controller (:mod:`repro.hw.rapl`) on
machines that have RAPL, and the thermal throttler
(:mod:`repro.hw.thermal`) everywhere.  The effective ceiling is the
minimum of all constraints.
"""

from __future__ import annotations

from repro.checkpoint.surface import snapshot_surface
from repro.hw.topology import CpuTopology

#: schedutil's utilization headroom: f = max_f * util * 1.25.
UTIL_HEADROOM = 1.25


@snapshot_surface(
    state=("topology", "freq_mhz", "_ceilings", "tracer"),
    digest_exclude=("tracer",),
    note="All state: per-cluster frequencies and named ceiling maps.  "
    "The tracer is a digest-excluded observer set by the machine."
)
class DvfsGovernor:
    """Tracks the operating frequency of each cluster.

    Frequencies are in MHz internally (matching sysfs ``cpuinfo_cur_freq``
    units of kHz at the presentation layer).
    """

    def __init__(self, topology: CpuTopology):
        self.topology = topology
        n = len(topology.clusters)
        # Current frequency per cluster, start at min (idle).
        self.freq_mhz: list[float] = [
            cl.ctype.min_freq_mhz for cl in topology.clusters
        ]
        # Constraint ceilings, each a dict constraint-name -> max MHz.
        self._ceilings: list[dict[str, float]] = [dict() for _ in range(n)]
        #: Trace observer, set by the owning Machine when tracing is on.
        self.tracer = None

    # -- constraints ------------------------------------------------------

    def set_ceiling(self, cluster: int, name: str, max_mhz: float) -> None:
        """Impose (or update) a named frequency ceiling on a cluster."""
        ct = self.topology.clusters[cluster].ctype
        self._ceilings[cluster][name] = min(
            max(max_mhz, ct.min_freq_mhz), ct.max_freq_mhz
        )

    def clear_ceiling(self, cluster: int, name: str) -> None:
        self._ceilings[cluster].pop(name, None)

    def ceiling_mhz(self, cluster: int) -> float:
        ct = self.topology.clusters[cluster].ctype
        lims = self._ceilings[cluster]
        return min(lims.values()) if lims else ct.max_freq_mhz

    # -- governor ----------------------------------------------------------

    def update(self, cluster_util: list[float]) -> None:
        """Advance one governor step.

        ``cluster_util`` is the utilization (0..1) of the busiest core in
        each cluster over the last tick.
        """
        if len(cluster_util) != len(self.topology.clusters):
            raise ValueError("one utilization value per cluster required")
        # The governor runs live on every tick of both engine paths
        # (macro-tick replay steps it too), so frequency-change events
        # are emitted at identical sim times under either path.
        tr = self.tracer
        if tr is not None and not tr.dvfs:
            tr = None
        for i, cl in enumerate(self.topology.clusters):
            ct = cl.ctype
            target = ct.max_freq_mhz * min(1.0, cluster_util[i] * UTIL_HEADROOM)
            target = max(target, ct.min_freq_mhz)
            target = min(target, self.ceiling_mhz(i))
            if tr is not None and target != self.freq_mhz[i]:
                tr.emit(
                    "dvfs",
                    "freq",
                    args={
                        "cluster": i,
                        "core_type": ct.name,
                        "from_mhz": self.freq_mhz[i],
                        "to_mhz": target,
                        "capped": target < ct.max_freq_mhz
                        and target == self.ceiling_mhz(i),
                    },
                )
                tr.metrics.counter("dvfs.transitions", key=ct.name)
                tr.metrics.gauge("dvfs.freq_mhz", key=ct.name, value=target)
                tr.metrics.observe("dvfs.freq_mhz", key=ct.name, value=target)
            # Frequency transitions are effectively instantaneous at our
            # tick granularity (hardware P-state changes take microseconds).
            self.freq_mhz[i] = target

    def freq_of_cpu_mhz(self, cpu_id: int) -> float:
        return self.freq_mhz[self.topology.core(cpu_id).cluster]

    def freq_of_cpu_ghz(self, cpu_id: int) -> float:
        return self.freq_of_cpu_mhz(cpu_id) / 1000.0
