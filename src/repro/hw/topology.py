"""CPU topology: logical CPUs, physical cores, clusters.

A :class:`CpuTopology` is a flat list of logical CPUs (:class:`Core`
instances — one per hardware thread, matching how Linux numbers CPUs),
grouped into *clusters* of identical core type.  Frequency (DVFS) is
per-cluster, as on real hardware: all Raptor Lake E-cores share one clock
domain, each ARM big.LITTLE cluster has its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.coretype import CoreType


@dataclass
class Core:
    """One logical CPU (hardware thread).

    ``cpu_id`` is the Linux CPU number.  ``phys_core`` identifies the
    physical core (SMT siblings share it).  ``cluster`` indexes into
    :attr:`CpuTopology.clusters`.
    """

    cpu_id: int
    phys_core: int
    cluster: int
    ctype: CoreType
    smt_thread: int = 0     # 0 = primary hardware thread
    online: bool = True     # hotplug state (cpu0 is never offlined)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.online else ", offline"
        return (
            f"Core(cpu{self.cpu_id}, phys{self.phys_core}, "
            f"{self.ctype.name}, smt{self.smt_thread}{state})"
        )


@dataclass
class Cluster:
    """A group of identical cores sharing a clock domain."""

    index: int
    ctype: CoreType
    cpu_ids: list[int] = field(default_factory=list)


class CpuTopology:
    """The set of logical CPUs in a machine.

    Construct via :meth:`build` with an ordered list of
    ``(core_type, n_physical_cores)`` pairs; CPU numbering follows the
    Linux convention of enumerating the primary hardware thread of every
    physical core first within each cluster, with SMT siblings interleaved
    the way Raptor Lake exposes them (P-core threads adjacent: cpu0/cpu1
    are the two threads of P-core 0).
    """

    def __init__(self, cores: list[Core], clusters: list[Cluster]):
        self.cores = cores
        self.clusters = clusters
        self._by_id = {c.cpu_id: c for c in cores}
        if len(self._by_id) != len(cores):
            raise ValueError("duplicate cpu_id in topology")

    @classmethod
    def build(cls, layout: list[tuple[CoreType, int]]) -> "CpuTopology":
        cores: list[Core] = []
        clusters: list[Cluster] = []
        cpu_id = 0
        phys = 0
        for cluster_idx, (ctype, n_phys) in enumerate(layout):
            cluster = Cluster(index=cluster_idx, ctype=ctype)
            for _ in range(n_phys):
                for smt in range(ctype.smt):
                    core = Core(
                        cpu_id=cpu_id,
                        phys_core=phys,
                        cluster=cluster_idx,
                        ctype=ctype,
                        smt_thread=smt,
                    )
                    cores.append(core)
                    cluster.cpu_ids.append(cpu_id)
                    cpu_id += 1
                phys += 1
            clusters.append(cluster)
        return cls(cores, clusters)

    # -- basic queries ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self):
        return iter(self.cores)

    def core(self, cpu_id: int) -> Core:
        return self._by_id[cpu_id]

    @property
    def n_cpus(self) -> int:
        return len(self.cores)

    @property
    def n_physical_cores(self) -> int:
        return len({c.phys_core for c in self.cores})

    @property
    def core_types(self) -> list[CoreType]:
        """Distinct core types, in cluster order, de-duplicated."""
        seen: dict[str, CoreType] = {}
        for cl in self.clusters:
            seen.setdefault(cl.ctype.name, cl.ctype)
        return list(seen.values())

    @property
    def is_heterogeneous(self) -> bool:
        return len(self.core_types) > 1

    def cpus_of_type(self, ctype_name: str) -> list[int]:
        """Logical CPU ids whose core type name matches ``ctype_name``."""
        return [c.cpu_id for c in self.cores if c.ctype.name == ctype_name]

    def cpus_of_pmu(self, pmu_name: str) -> list[int]:
        """Logical CPU ids served by the Linux PMU ``pmu_name``."""
        return [c.cpu_id for c in self.cores if c.ctype.pmu_name == pmu_name]

    def online_cpus(self) -> list[int]:
        """Logical CPU ids currently online (hotplug state)."""
        return [c.cpu_id for c in self.cores if c.online]

    def offline_cpus(self) -> list[int]:
        """Logical CPU ids currently offline."""
        return [c.cpu_id for c in self.cores if not c.online]

    def smt_siblings(self, cpu_id: int) -> list[int]:
        me = self.core(cpu_id)
        return [
            c.cpu_id
            for c in self.cores
            if c.phys_core == me.phys_core and c.cpu_id != cpu_id
        ]

    def primary_threads(self) -> list[int]:
        """One logical CPU per physical core (the smt-0 thread)."""
        return [c.cpu_id for c in self.cores if c.smt_thread == 0]

    def capacity_of(self, cpu_id: int) -> int:
        """Linux-style cpu_capacity, scaled so the biggest core is 1024."""
        top = max(
            ct.capacity * ct.max_freq_mhz for ct in self.core_types
        )
        me = self.core(cpu_id).ctype
        return round(1024 * me.capacity * me.max_freq_mhz / top)
