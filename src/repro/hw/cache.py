"""Shared last-level cache model.

A deliberately coarse model: what the experiments need is (a) an LLC miss
*rate* per core type that responds to working-set size, blocking quality
and co-runner contention (Table III), and (b) the resulting memory-stall
cycles that couple cache behaviour back into achieved FLOP rates
(Table II).  Workload phases may also pin an explicit miss rate, which is
how the HPL variant models encode their blocking quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.coretype import CoreType


@dataclass
class LlcModel:
    """Package LLC of ``size_mib`` shared by all cores."""

    size_mib: float

    def effective_share_mib(self, n_sharers: int) -> float:
        """Cache capacity effectively available to one of ``n_sharers``.

        Sharing is not perfectly destructive: co-runners overlap somewhat,
        so each sharer sees more than size/n.
        """
        if n_sharers <= 1:
            return self.size_mib
        return self.size_mib / (0.25 + 0.75 * n_sharers)

    def miss_rate(
        self,
        working_set_mib: float,
        reuse_factor: float,
        n_sharers: int,
    ) -> float:
        """Estimated LLC miss rate for a working set.

        ``reuse_factor`` in [0, 1]: 1 = perfectly blocked (every line
        reused from cache), 0 = pure streaming.  Working sets that fit in
        the effective share mostly hit; larger ones miss in proportion to
        the uncovered fraction, attenuated by blocking quality.
        """
        share = self.effective_share_mib(n_sharers)
        if working_set_mib <= share:
            base = 0.002
        else:
            uncovered = 1.0 - share / working_set_mib
            base = uncovered * (1.0 - reuse_factor) + 0.002
        return min(1.0, max(0.0002, base))


def memory_stall_cycles(
    ctype: CoreType,
    llc_refs: float,
    llc_miss_rate: float,
    mlp_overlap: float = 0.85,
) -> float:
    """Stall cycles caused by LLC misses.

    ``mlp_overlap`` is the fraction of miss latency hidden by
    memory-level parallelism and prefetching (out-of-order cores hide
    most of it; the in-order A53 hides little).
    """
    misses = llc_refs * llc_miss_rate
    return misses * ctype.llc_miss_penalty_cycles * (1.0 - mlp_overlap)
