"""Simulated heterogeneous CPU hardware.

This package models the hardware layer the paper's experiments run on:
core microarchitectures (:mod:`repro.hw.coretype`), CPU topologies
(:mod:`repro.hw.topology`), concrete machine presets
(:mod:`repro.hw.machines`), DVFS (:mod:`repro.hw.dvfs`), the RC thermal
model (:mod:`repro.hw.thermal`), the power model (:mod:`repro.hw.power`),
RAPL energy accounting and power capping (:mod:`repro.hw.rapl`), the
shared last-level cache (:mod:`repro.hw.cache`), per-core performance
monitoring hardware (:mod:`repro.hw.pmu`) and CPU identification
(:mod:`repro.hw.cpuid`).
"""

from repro.hw.coretype import CoreType, ArchEvent
from repro.hw.topology import Core, CpuTopology
from repro.hw.machines import (
    raptor_lake_i7_13700,
    orangepi_800,
    homogeneous_xeon,
    dynamiq_three_tier,
    MACHINE_PRESETS,
)
from repro.hw.dvfs import DvfsGovernor
from repro.hw.thermal import ThermalModel, ThermalZone
from repro.hw.power import PowerModel
from repro.hw.rapl import RaplDomain, RaplPackage
from repro.hw.cache import LlcModel
from repro.hw.pmu import CorePmu, CounterDelta
from repro.hw.cpuid import CpuidEmulator, ArmMidr

__all__ = [
    "CoreType",
    "ArchEvent",
    "Core",
    "CpuTopology",
    "raptor_lake_i7_13700",
    "orangepi_800",
    "homogeneous_xeon",
    "dynamiq_three_tier",
    "MACHINE_PRESETS",
    "DvfsGovernor",
    "ThermalModel",
    "ThermalZone",
    "PowerModel",
    "RaplDomain",
    "RaplPackage",
    "LlcModel",
    "CorePmu",
    "CounterDelta",
    "CpuidEmulator",
    "ArmMidr",
]
