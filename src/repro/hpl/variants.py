"""The two HPL builds and their DGEMM execution profiles.

A :class:`DgemmProfile` turns the calibration anchors of Table II/III
into per-core-type :class:`~repro.sim.workload.PhaseRates`:

* ``base_eff`` — blocking quality: the fraction of peak SIMD issue the
  kernel sustains before memory stalls;
* ``llc_refs_per_instr`` / ``llc_miss_rate`` — the LLC behaviour perf
  measures in Table III, which feeds back into achieved FLOP rate
  through the core's miss penalty;
* ``scalar_overhead`` — non-SIMD bookkeeping instructions per SIMD
  instruction (hidden by the out-of-order core, but visible in retired
  instruction counts — part of the Table III instruction-share story).

The variants differ in *work distribution*: ``openblas`` statically
splits each trailing update equally (with a small dynamically scheduled
look-ahead tail), ``intel`` schedules the whole update dynamically so
each core contributes in proportion to its throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.coretype import CoreType
from repro.sim.workload import PhaseRates


def _lookup(table: dict[str, float], ctype: CoreType, what: str) -> float:
    try:
        return table[ctype.microarch]
    except KeyError:
        if "default" in table:
            return table["default"]
        raise KeyError(
            f"DGEMM profile has no {what} entry for microarch "
            f"{ctype.microarch!r}"
        ) from None


@dataclass(frozen=True)
class DgemmProfile:
    """Per-microarchitecture DGEMM execution characteristics."""

    base_eff: dict[str, float]
    llc_refs_per_instr: dict[str, float]
    llc_miss_rate: dict[str, float]
    scalar_overhead: dict[str, float]
    mlp_overlap: float = 0.97

    def flops_per_simd_instr(self, ctype: CoreType) -> float:
        """FMA width in flops per SIMD instruction (ISA-level)."""
        return 8.0 if ctype.vendor == "intel" else 4.0

    #: The block size the per-microarch tables are calibrated at (the
    #: paper's tuned NB for Raptor Lake).
    REFERENCE_NB = 192

    def rates(self, ctype: CoreType, nb: int | None = None) -> PhaseRates:
        """Effective execution rates of the update DGEMM on ``ctype``.

        ``nb`` models blocking quality: each matrix element is re-fetched
        once per block pass, so LLC traffic scales as 1/NB, and tiny
        blocks also pay more per-call kernel overhead.
        """
        fpi = self.flops_per_simd_instr(ctype)
        peak_simd_ipc = ctype.flops_per_cycle / fpi
        eff = _lookup(self.base_eff, ctype, "base_eff")
        refs = _lookup(self.llc_refs_per_instr, ctype, "llc_refs_per_instr")
        miss = _lookup(self.llc_miss_rate, ctype, "llc_miss_rate")
        sc = _lookup(self.scalar_overhead, ctype, "scalar_overhead")
        if nb is not None and nb != self.REFERENCE_NB:
            ref_nb = self.REFERENCE_NB
            refs *= ref_nb / nb
            # Kernel-call overhead: eff(nb) ~ nb / (nb + c), normalized
            # so the reference NB keeps its calibrated efficiency.
            eff *= (nb / (nb + 24.0)) / (ref_nb / (ref_nb + 24.0))
        stall_per_simd = (
            refs * miss * ctype.llc_miss_penalty_cycles * (1.0 - self.mlp_overlap)
        )
        cpi_simd = 1.0 / (peak_simd_ipc * eff) + stall_per_simd
        # Scalar bookkeeping dual-issues with the SIMD stream on these
        # cores, so it inflates retired-instruction counts, not cycles.
        ipc_total = (1.0 + sc) / cpi_simd
        return PhaseRates(
            ipc=ipc_total,
            flops_per_instr=fpi / (1.0 + sc),
            llc_refs_per_instr=refs / (1.0 + sc),
            llc_miss_rate=miss,
            l2_refs_per_instr=0.05,
            l2_miss_rate=min(1.0, refs * 8),
            branches_per_instr=0.02,
            branch_miss_rate=ctype.branch_misp_rate * 0.2,
        )

    def effective_flops_per_cycle(self, ctype: CoreType) -> float:
        r = self.rates(ctype)
        return r.ipc * r.flops_per_instr

    def panel_rates(self, ctype: CoreType) -> PhaseRates:
        """Panel factorization: scalar-heavy, latency-bound."""
        return PhaseRates(
            ipc=ctype.ipc * 0.45,
            flops_per_instr=0.9,
            llc_refs_per_instr=0.001,
            llc_miss_rate=0.2,
            branches_per_instr=0.08,
            branch_miss_rate=ctype.branch_misp_rate,
        )


@dataclass(frozen=True)
class HplVariant:
    """One HPL build: a DGEMM profile plus a work-distribution policy."""

    name: str
    display: str
    profile: DgemmProfile
    dynamic_fraction: float     # share of each update scheduled dynamically
    grain_parts: int = 24       # dynamic chunks per thread per step

    def __post_init__(self) -> None:
        if not 0.0 <= self.dynamic_fraction <= 1.0:
            raise ValueError("dynamic_fraction must be in [0, 1]")


#: Intel-optimized build: hybrid-aware scheduling, better blocking.
INTEL_PROFILE = DgemmProfile(
    base_eff={
        "goldencove": 0.93,
        "gracemont": 0.77,
        "cortex_a72": 0.72,
        "cortex_a53": 0.76,
        "default": 0.90,
    },
    llc_refs_per_instr={
        "goldencove": 0.004,
        "gracemont": 0.0005,
        "default": 0.003,
    },
    llc_miss_rate={
        "goldencove": 0.64,
        "gracemont": 0.0003,
        "default": 0.30,
    },
    scalar_overhead={
        "goldencove": 0.10,
        "gracemont": 0.35,
        "default": 0.20,
    },
)

#: Homogeneity-assuming OpenBLAS build.
OPENBLAS_PROFILE = DgemmProfile(
    base_eff={
        "goldencove": 0.90,
        "gracemont": 0.73,
        "cortex_a72": 0.70,
        "cortex_a53": 0.72,
        "skylake_sp": 0.90,
        "cortex_x1": 0.82,
        "cortex_a76": 0.80,
        "cortex_a55": 0.72,
        "default": 0.85,
    },
    llc_refs_per_instr={
        "goldencove": 0.006,
        "gracemont": 0.0006,
        "default": 0.004,
    },
    llc_miss_rate={
        "goldencove": 0.86,
        "gracemont": 0.0005,
        "default": 0.35,
    },
    scalar_overhead={
        "goldencove": 0.10,
        "gracemont": 0.35,
        "default": 0.20,
    },
)

VARIANTS: dict[str, HplVariant] = {
    "openblas": HplVariant(
        name="openblas",
        display="OpenBLAS HPL",
        profile=OPENBLAS_PROFILE,
        dynamic_fraction=0.16,
    ),
    "intel": HplVariant(
        name="intel",
        display="Intel HPL",
        profile=INTEL_PROFILE,
        dynamic_fraction=1.0,
    ),
}
