"""High Performance Linpack workload model.

HPL factorizes a dense N x N system via blocked LU: a sequence of panel
steps, each with a (mostly serial) panel factorization followed by a
large parallel trailing-matrix update, separated by synchronization.
The two benchmark builds the paper compares differ in how that parallel
work meets a heterogeneous machine:

* ``openblas`` — assumes homogeneous cores: a mostly *static equal*
  partition per step with a limited dynamic tail (look-ahead).  On P+E
  machines the E-cores straggle and the P-cores spin at the barrier.
* ``intel`` — hybrid-aware (Intel MKL): fully dynamic work distribution,
  so every core contributes in proportion to its actual throughput, plus
  better cache blocking (the lower LLC miss rates of Table III).
"""

from repro.hpl.dat import HplConfig, parse_dat, to_dat
from repro.hpl.model import hpl_flops, hpl_steps, HplStep
from repro.hpl.variants import VARIANTS, HplVariant, DgemmProfile
from repro.hpl.runner import HplResult, run_hpl
from repro.hpl.tuning import beta_problem_size, tune_hpl

__all__ = [
    "HplConfig",
    "parse_dat",
    "to_dat",
    "hpl_flops",
    "hpl_steps",
    "HplStep",
    "VARIANTS",
    "HplVariant",
    "DgemmProfile",
    "HplResult",
    "run_hpl",
    "beta_problem_size",
    "tune_hpl",
]
