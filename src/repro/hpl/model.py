"""The blocked-LU structure of HPL.

The flop accounting follows the benchmark's own convention
(``2/3 N^3 + 3/2 N^2``).  Execution is a sequence of panel steps: at
step k the panel (the next NB columns) is factorized — a small, poorly
parallel amount of work — and the trailing submatrix of order
``m = N - (k+1) * NB`` is updated with a rank-NB DGEMM of ``2 * NB * m^2``
flops, which is where nearly all the time goes and what the partitioning
strategies fight over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hpl.dat import HplConfig


def hpl_flops(n: int) -> float:
    """The official HPL flop count for problem size N."""
    return (2.0 / 3.0) * n**3 + 1.5 * n**2


@dataclass(frozen=True)
class HplStep:
    """One panel step's work, in flops."""

    index: int
    panel_flops: float      # serial-ish panel factorization
    update_flops: float     # parallel trailing update

    @property
    def total_flops(self) -> float:
        return self.panel_flops + self.update_flops


def hpl_steps(config: HplConfig) -> list[HplStep]:
    """Decompose the factorization into panel steps.

    The per-step counts are normalized so they sum exactly to
    :func:`hpl_flops` — the simulation then reports Gflop/s on the same
    basis real HPL does.
    """
    n, nb = config.n, config.nb
    steps: list[HplStep] = []
    raw_panel: list[float] = []
    raw_update: list[float] = []
    k = 0
    col = 0
    while col < n:
        width = min(nb, n - col)
        m = n - col - width       # trailing matrix order
        # Panel factorization of an (n - col) x width block.
        panel = (n - col) * width * width
        update = 2.0 * width * m * m
        raw_panel.append(panel)
        raw_update.append(update)
        col += width
        k += 1
    raw_total = sum(raw_panel) + sum(raw_update)
    scale = hpl_flops(n) / raw_total if raw_total else 0.0
    for i in range(len(raw_panel)):
        steps.append(
            HplStep(
                index=i,
                panel_flops=raw_panel[i] * scale,
                update_flops=raw_update[i] * scale,
            )
        )
    return steps
