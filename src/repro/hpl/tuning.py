"""HPL tuning: problem-size selection and the NB sweep.

The paper selects N with the "beta approach" of Krpic, Loina and Galba:
pick N so the matrix uses a target fraction of system memory, rounded
down to a multiple of NB::

    N = floor(sqrt(beta * mem_bytes / 8) / NB) * NB

and sweeps beta in {0.70, 0.75, 0.80, 0.85} x NB in {64, 128, 192, 256}
(16 runs), landing on N = 57024, NB = 192 for the 32 GiB Raptor Lake
machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.hpl.dat import HplConfig

PAPER_BETAS = (0.70, 0.75, 0.80, 0.85)
PAPER_NBS = (64, 128, 192, 256)


def beta_problem_size(memory_gib: float, beta: float, nb: int) -> int:
    """N for a target memory fraction, rounded down to a multiple of NB."""
    if not 0.0 < beta <= 1.0:
        raise ValueError("beta must be in (0, 1]")
    mem_bytes = memory_gib * (1 << 30)
    n_raw = math.sqrt(beta * mem_bytes / 8.0)
    n = int(n_raw // nb) * nb
    if n < nb:
        raise ValueError(
            f"memory too small for NB={nb} at beta={beta}"
        )
    return n


@dataclass
class TuningCell:
    """One (beta, NB) point of the sweep."""

    beta: float
    nb: int
    n: int
    gflops: float


@dataclass
class TuningResult:
    cells: list[TuningCell]

    @property
    def best(self) -> TuningCell:
        return max(self.cells, key=lambda c: c.gflops)

    def table(self) -> str:
        lines = ["beta     NB    N        Gflop/s"]
        for c in sorted(self.cells, key=lambda c: (c.beta, c.nb)):
            lines.append(f"{c.beta:.2f}  {c.nb:5d}  {c.n:7d}  {c.gflops:9.2f}")
        return "\n".join(lines)


def tune_hpl(
    memory_gib: float,
    run_fn: Callable[[HplConfig], float],
    betas: Sequence[float] = PAPER_BETAS,
    nbs: Sequence[int] = PAPER_NBS,
    scale: float = 1.0,
) -> TuningResult:
    """Run the 16-point sweep; ``run_fn(config) -> Gflop/s``.

    ``scale`` shrinks N (keeping NB) so the sweep is affordable on the
    simulator; the *relative* ranking is what tuning needs.
    """
    cells: list[TuningCell] = []
    for beta in betas:
        for nb in nbs:
            n_full = beta_problem_size(memory_gib, beta, nb)
            n = max(nb, int(n_full * scale // nb) * nb)
            config = HplConfig(n=n, nb=nb)
            cells.append(
                TuningCell(beta=beta, nb=nb, n=n, gflops=run_fn(config))
            )
    return TuningResult(cells)
