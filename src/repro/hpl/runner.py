"""Running HPL on a simulated machine.

One thread per selected logical CPU, pinned 1:1 (how both benchmark
builds run in the paper, with ``taskset``/``OMP_NUM_THREADS``).  A shared
:class:`HplCoordinator` hands out each step's panel and update work
according to the variant's policy; threads spin at a barrier between
steps, exactly the behaviour whose power/instruction signature the
motivation experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.hw.coretype import ArchEvent, CoreType
from repro.hpl.dat import HplConfig
from repro.hpl.model import HplStep, hpl_flops, hpl_steps
from repro.hpl.variants import VARIANTS, HplVariant
from repro.sim.task import SimThread
from repro.sim.workload import (
    ChunkStream,
    ComputePhase,
    SpinPhase,
    WorkPhase,
    constant_rates,
)
from repro.system import System


class HplCoordinator:
    """Shared state: per-step work assignments and the step barrier."""

    def __init__(
        self,
        steps: list[HplStep],
        variant: HplVariant,
        core_types: list[CoreType],
    ):
        self.steps = steps
        self.variant = variant
        self.core_types = core_types
        self.n_threads = len(core_types)
        self.panel_done = [False] * len(steps)
        self.generation = 0     # completed steps (acts as the barrier)
        self._arrived = 0
        dyn = variant.dynamic_fraction
        self.static_flops = [
            s.update_flops * (1.0 - dyn) / self.n_threads for s in steps
        ]
        self._pool = [s.update_flops * dyn for s in steps]
        self._grain = [
            max(1.0, s.update_flops * dyn / (self.n_threads * variant.grain_parts))
            for s in steps
        ]

    def claim(self, step: int) -> float:
        """Take one dynamic chunk from the step's pool (0 when drained).

        Kept for targeted tests; the HPL threads themselves claim through
        a fused :class:`~repro.sim.workload.ChunkStream` (same arithmetic,
        executed inside the engine's slice loop).
        """
        pool = self._pool[step]
        if pool <= 0.0:
            return 0.0
        take = min(self._grain[step], pool)
        self._pool[step] = pool - take
        return take

    def arrive(self) -> None:
        self._arrived += 1
        if self._arrived >= self.n_threads:
            self._arrived = 0
            self.generation += 1

    @property
    def done(self) -> bool:
        return self.generation >= len(self.steps)


class HplThreadSource:
    """Work source of one pinned HPL thread (a per-step state machine)."""

    def __init__(
        self,
        coord: HplCoordinator,
        slot: int,
        ctype: CoreType,
        nb: int | None = None,
    ):
        self.coord = coord
        self.slot = slot
        self.ctype = ctype
        profile = coord.variant.profile
        self._rates = profile.rates(ctype, nb=nb)
        self._panel_rates = profile.panel_rates(ctype)
        self._flops_per_instr = self._rates.flops_per_instr
        # One rates_fn per source (threads are pinned, so the executing
        # core type is always this one) instead of a lambda per phase.
        self._rates_fn = constant_rates(self._rates)
        self._panel_rates_fn = constant_rates(self._panel_rates)
        self.step = 0
        self.stage = "panel"
        self.flops_done = 0.0

    def _note_flops(self, flops: float) -> None:
        self.flops_done += flops

    def _compute(self, flops: float, rates, rates_fn, label: str) -> ComputePhase:
        self.flops_done += flops
        instr = max(1.0, flops / rates.flops_per_instr)
        return ComputePhase(instr, rates_fn, label=label)

    def next_phase(self, thread: SimThread) -> Optional[WorkPhase]:
        coord = self.coord
        while True:
            if self.step >= len(coord.steps):
                return None
            st = coord.steps[self.step]

            if self.stage == "panel":
                # Look-ahead: the panel for the next step is factorized by
                # thread 0 *concurrently* with everyone's update work, as
                # both real HPL builds do; no panel barrier.
                self.stage = "static"
                if self.slot == 0 and st.panel_flops > 0:
                    step_idx = self.step
                    phase = self._compute(
                        st.panel_flops,
                        self._panel_rates,
                        self._panel_rates_fn,
                        "hpl-panel",
                    )
                    phase.on_complete = (
                        lambda thread, _c=coord, _i=step_idx: _c.panel_done.__setitem__(_i, True)
                    )
                    return phase
                continue

            if self.stage == "static":
                self.stage = "dynamic"
                amount = coord.static_flops[self.step]
                if amount > 0:
                    return self._compute(
                        amount, self._rates, self._rates_fn, "hpl-update"
                    )
                continue

            if self.stage == "dynamic":
                self.stage = "barrier"
                if coord._pool[self.step] > 0.0:
                    # The engine claims grain-sized chunks from the shared
                    # pool inside its fused slice loop (same arithmetic as
                    # one ComputePhase per claim, minus the phase churn).
                    return ChunkStream(
                        pool=coord._pool,
                        index=self.step,
                        grain=coord._grain[self.step],
                        rates_fn=self._rates_fn,
                        flops_per_instr=self._flops_per_instr,
                        on_claimed=self._note_flops,
                        label="hpl-steal",
                    )
                continue

            if self.stage == "barrier":
                coord.arrive()
                self.stage = "wait"
                gen_target = self.step + 1
                if coord.generation < gen_target:
                    return SpinPhase(
                        until=lambda _c=coord, _g=gen_target: _c.generation >= _g,
                        label="step-barrier",
                    )
                continue

            if self.stage == "wait":
                self.step += 1
                self.stage = "panel"
                continue

            raise AssertionError(f"unknown stage {self.stage}")


@dataclass
class HplResult:
    """Outcome of one HPL run."""

    variant: str
    config: HplConfig
    cpus: list[int]
    gflops: float
    wall_s: float
    energy_j: float
    avg_power_w: float
    # Per-PMU counter totals summed over HPL threads.
    instructions: dict[str, float] = field(default_factory=dict)
    llc_references: dict[str, float] = field(default_factory=dict)
    llc_misses: dict[str, float] = field(default_factory=dict)
    fp_ops: dict[str, float] = field(default_factory=dict)
    runtime_s: dict[str, float] = field(default_factory=dict)
    spin_time_s: float = 0.0

    def llc_miss_rate(self, pmu: str) -> float:
        refs = self.llc_references.get(pmu, 0.0)
        return self.llc_misses.get(pmu, 0.0) / refs if refs else 0.0

    def instruction_share(self, pmu: str) -> float:
        total = sum(self.instructions.values())
        return self.instructions.get(pmu, 0.0) / total if total else 0.0


def default_cpu_selection(system: System) -> list[int]:
    """One logical CPU per physical core (the paper's 1 thread/core)."""
    return system.topology.primary_threads()


@dataclass
class HplRunHandle:
    """An HPL run in flight: everything needed to finish and score it.

    The handle is part of the checkpoint payload a supervisor worker
    saves between slices — it survives a snapshot/restore alongside the
    :class:`~repro.system.System`, so a resumed run finishes with the
    same baselines (``t0``/``e0``) the uninterrupted run would use.
    """

    variant: str
    config: HplConfig
    cpus: list[int]
    threads: list[SimThread]
    t0: float
    e0: float

    @property
    def done(self) -> bool:
        return all(t.done for t in self.threads)


def start_hpl(
    system: System,
    config: HplConfig,
    variant: str = "openblas",
    cpus: Optional[Sequence[int]] = None,
    settle_temp_c: Optional[float] = None,
) -> HplRunHandle:
    """Spawn an HPL run's threads without driving the clock.

    The caller decides how to advance time — :func:`run_hpl` runs to
    completion in one go; the experiment supervisor's worker advances in
    slices with periodic checkpoints in between.
    """
    try:
        var = VARIANTS[variant]
    except KeyError:
        raise ValueError(
            f"unknown HPL variant {variant!r}; known: {sorted(VARIANTS)}"
        ) from None
    machine = system.machine
    if settle_temp_c is not None:
        machine.cool_down(settle_temp_c, max_s=600.0)

    cpu_list = list(cpus) if cpus is not None else default_cpu_selection(system)
    if not cpu_list:
        raise ValueError("need at least one CPU")
    core_types = [machine.topology.core(c).ctype for c in cpu_list]
    steps = hpl_steps(config)
    coord = HplCoordinator(steps, var, core_types)

    threads = []
    for slot, cpu in enumerate(cpu_list):
        src = HplThreadSource(coord, slot, core_types[slot], nb=config.nb)
        threads.append(
            machine.spawn(
                SimThread(f"hpl-{variant}-{slot}", src, affinity={cpu})
            )
        )
    return HplRunHandle(
        variant=variant,
        config=config,
        cpus=cpu_list,
        threads=threads,
        t0=machine.now_s,
        e0=machine.rapl.package.energy_j,
    )


def finish_hpl(system: System, handle: HplRunHandle) -> HplResult:
    """Score a completed HPL run (all handle threads done)."""
    machine = system.machine
    wall = machine.now_s - handle.t0
    energy = machine.rapl.package.energy_j - handle.e0
    config = handle.config

    result = HplResult(
        variant=handle.variant,
        config=config,
        cpus=handle.cpus,
        gflops=hpl_flops(config.n) / wall / 1e9 if wall else 0.0,
        wall_s=wall,
        energy_j=energy,
        avg_power_w=energy / wall if wall else 0.0,
        spin_time_s=sum(t.spin_time_s for t in handle.threads),
    )
    for t in handle.threads:
        for pmu, counters in t.counters.items():
            result.instructions[pmu] = (
                result.instructions.get(pmu, 0.0) + counters[ArchEvent.INSTRUCTIONS]
            )
            result.llc_references[pmu] = (
                result.llc_references.get(pmu, 0.0)
                + counters[ArchEvent.LLC_REFERENCES]
            )
            result.llc_misses[pmu] = (
                result.llc_misses.get(pmu, 0.0) + counters[ArchEvent.LLC_MISSES]
            )
            result.fp_ops[pmu] = (
                result.fp_ops.get(pmu, 0.0) + counters[ArchEvent.FP_OPS]
            )
        for pmu, rt in t.runtime_s.items():
            result.runtime_s[pmu] = result.runtime_s.get(pmu, 0.0) + rt
    return result


def run_hpl(
    system: System,
    config: HplConfig,
    variant: str = "openblas",
    cpus: Optional[Sequence[int]] = None,
    settle_temp_c: Optional[float] = None,
    max_s: float = 36_000.0,
) -> HplResult:
    """Run one HPL benchmark to completion and collect its metrics."""
    handle = start_hpl(
        system, config, variant=variant, cpus=cpus, settle_temp_c=settle_temp_c
    )
    # strict: a wedged run raises SimTimeout naming the stuck threads.
    system.machine.run_until_done(handle.threads, max_s=max_s, strict=True)
    return finish_hpl(system, handle)
