"""HPL.dat configuration files.

A small, faithful subset of the real HPL.dat format: problem sizes (N),
block sizes (NB) and the process grid (P x Q).  The paper's runs use a
single node, so P = Q = 1, N = 57024 and NB = 192.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HplConfig:
    """One HPL run configuration."""

    n: int
    nb: int
    p: int = 1
    q: int = 1

    def __post_init__(self) -> None:
        if self.n <= 0 or self.nb <= 0:
            raise ValueError("N and NB must be positive")
        if self.nb > self.n:
            raise ValueError(f"NB ({self.nb}) cannot exceed N ({self.n})")
        if self.p < 1 or self.q < 1:
            raise ValueError("process grid dimensions must be >= 1")

    @property
    def n_steps(self) -> int:
        return -(-self.n // self.nb)  # ceil

    def memory_bytes(self) -> int:
        """Matrix storage: N^2 doubles."""
        return self.n * self.n * 8


#: The paper's tuned configuration for the Raptor Lake machine.
PAPER_RAPTOR_LAKE = HplConfig(n=57024, nb=192, p=1, q=1)


def to_dat(config: HplConfig) -> str:
    """Render an HPL.dat file (single-N, single-NB layout)."""
    return "\n".join(
        [
            "HPLinpack benchmark input file",
            "Innovative Computing Laboratory, University of Tennessee",
            "HPL.out      output file name (if any)",
            "6            device out (6=stdout,7=stderr,file)",
            "1            # of problems sizes (N)",
            f"{config.n}        Ns",
            "1            # of NBs",
            f"{config.nb}          NBs",
            "0            PMAP process mapping (0=Row-,1=Column-major)",
            "1            # of process grids (P x Q)",
            f"{config.p}            Ps",
            f"{config.q}            Qs",
            "16.0         threshold",
            "",
        ]
    )


def parse_dat(text: str) -> HplConfig:
    """Parse the first problem configuration out of an HPL.dat file."""
    lines = text.splitlines()
    n = nb = p = q = None
    for i, line in enumerate(lines):
        token = line.split("#")[0].strip()
        label = line.lower()
        first = token.split()[0] if token.split() else ""
        if label.rstrip().endswith("ns") and first.isdigit():
            n = int(first)
        elif label.rstrip().endswith("nbs") and first.isdigit():
            nb = int(first)
        elif label.rstrip().endswith("ps") and first.isdigit():
            p = int(first)
        elif label.rstrip().endswith("qs") and first.isdigit():
            q = int(first)
    if n is None or nb is None:
        raise ValueError("HPL.dat is missing Ns or NBs lines")
    return HplConfig(n=n, nb=nb, p=p or 1, q=q or 1)
