"""Subprocess worker: executes exactly one run, crash-isolated.

The supervisor never runs simulations in its own process — each run
executes here, launched as ``python -m repro.supervisor.worker --spec
spec.json``, so a segfault, SIGKILL, or runaway loop takes down only
this worker.  Communication is file-based (crash-safe): the worker
reads a spec, writes ``result.json`` on success or ``error.json`` on
failure, both atomically, and reports classification via exit code:

* 0 — success, ``result.json`` written;
* :data:`EXIT_PERMANENT` (3) — deterministic failure (bad params,
  unknown kind, an exception the simulation will reproduce on every
  attempt); retrying is pointless;
* :data:`EXIT_TRANSIENT` (4) — worth retrying: a :class:`SimTimeout`
  (the retry resumes from the last checkpoint and may progress) or an
  unreadable/corrupt checkpoint (the retry falls back to a fresh start);
* :data:`EXIT_PREEMPTED` (5) — the pool asked this worker to stop
  (SIGTERM during a drain): the run checkpointed at the next slice
  boundary and exited; not a failure, the supervisor requeues it
  without burning an attempt.

Anything else — a signal, an OOM kill, an interpreter abort — yields no
exit code from this table, and the supervisor classifies the bare crash
as transient.

Alongside the checkpoint cadence the worker writes ``heartbeat.json``
(pid, attempt, current *simulated* time) every slice; the pool's
liveness monitor uses it to tell a stuck worker (sim time frozen) from a
slow one (progressing past its deadline) — see
:mod:`repro.supervisor.heartbeat`.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import traceback

from repro.checkpoint.snapshot import SnapshotError, load_object
from repro.sim.engine import SimTimeout
from repro.supervisor.heartbeat import heartbeat_path, write_heartbeat
from repro.supervisor.manifest import (
    EXIT_PERMANENT,
    EXIT_PREEMPTED,
    EXIT_TRANSIENT,
    atomic_write_json,
)
from repro.supervisor.runs import RUN_KINDS, Preempted, RunContext

#: Set by the SIGTERM handler installed in :func:`main`; run kinds poll
#: it via ``ctx.should_preempt()`` at every slice boundary.
_PREEMPT_REQUESTED = False


def _on_sigterm(signum, frame) -> None:
    global _PREEMPT_REQUESTED
    _PREEMPT_REQUESTED = True


def _preempt_requested() -> bool:
    return _PREEMPT_REQUESTED


def _write_error(path: str, kind: str, exc: BaseException, **extra) -> None:
    payload = {
        "type": type(exc).__name__,
        "message": str(exc),
        "classification": kind,
        "traceback": traceback.format_exc(),
    }
    payload.update(extra)
    atomic_write_json(path, payload)


def run_spec(spec: dict) -> int:
    """Execute one run spec; returns the process exit code."""
    run_id = spec["run_id"]
    out_dir = spec["out_dir"]
    os.makedirs(out_dir, exist_ok=True)
    error_path = os.path.join(out_dir, "error.json")
    result_path = os.path.join(out_dir, "result.json")
    checkpoint_path = spec.get("checkpoint_path") or os.path.join(
        out_dir, "checkpoint.snap"
    )

    kind = spec["kind"]
    fn = RUN_KINDS.get(kind)
    if fn is None:
        _write_error(
            error_path,
            "permanent",
            ValueError(f"unknown run kind {kind!r}; known: {sorted(RUN_KINDS)}"),
        )
        return EXIT_PERMANENT

    restored = None
    resume_from = spec.get("resume_from")
    if resume_from:
        try:
            restored = load_object(resume_from)
        except (SnapshotError, OSError) as exc:
            # A torn or stale checkpoint is not fatal to the *run* —
            # the next attempt starts fresh.  Report transient so the
            # supervisor retries without the checkpoint.
            _write_error(error_path, "transient", exc, bad_checkpoint=resume_from)
            return EXIT_TRANSIENT

    attempt = int(spec.get("attempt", 1))
    # First heartbeat before any simulation: registers this attempt's
    # pid for the liveness monitor (sim time None = alive, no progress
    # to report yet).
    write_heartbeat(heartbeat_path(out_dir), os.getpid(), attempt, None)

    ctx = RunContext(
        run_id=run_id,
        attempt=attempt,
        checkpoint_path=checkpoint_path,
        checkpoint_every_s=float(spec.get("checkpoint_every_s", 0.1)),
        restored_payload=restored,
        heartbeat_path=heartbeat_path(out_dir),
        preempt=_preempt_requested,
    )

    try:
        result = fn(spec.get("params", {}), ctx)
    except Preempted:
        # The run checkpointed before raising; nothing else to record.
        return EXIT_PREEMPTED
    except SimTimeout as exc:
        _write_error(
            error_path,
            "transient",
            exc,
            stuck=exc.stuck_details(),
            checkpoint_path=exc.checkpoint_path,
        )
        return EXIT_TRANSIENT
    except Exception as exc:
        # The simulation is deterministic: a plain exception recurs on
        # every attempt.  Classify permanent so the supervisor stops
        # burning retries on it.
        _write_error(error_path, "permanent", exc)
        return EXIT_PERMANENT

    atomic_write_json(result_path, result)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", required=True, help="path to the run-spec JSON")
    args = parser.parse_args(argv)
    signal.signal(signal.SIGTERM, _on_sigterm)
    with open(args.spec) as fh:
        spec = json.load(fh)
    return run_spec(spec)


if __name__ == "__main__":
    sys.exit(main())
