"""Crash-isolated, resumable experiment supervisor.

Runs a sweep of simulation experiments as subprocess workers
(:mod:`repro.supervisor.worker`), one process per attempt, so no worker
failure — Python exception, :class:`~repro.sim.engine.SimTimeout`,
SIGKILL, OOM — can corrupt the supervisor or the other runs.  Per run it
enforces a wall-clock timeout, retries transient failures with
exponential backoff (resuming from the run's latest checkpoint), stops
immediately on permanent ones, and records every state transition in the
JSON :class:`~repro.supervisor.manifest.Manifest` so a killed sweep
resumes where it stopped: completed runs are skipped, in-flight runs
restart from their last checkpoint.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.supervisor.manifest import (
    DONE,
    EXIT_PERMANENT,
    EXIT_TRANSIENT,
    FAILED,
    PENDING,
    RUNNING,
    Manifest,
    RunRecord,
    atomic_write_json,
)


@dataclass
class RunSpec:
    """One run the caller wants executed."""

    run_id: str
    kind: str
    params: dict = field(default_factory=dict)


def _src_path() -> str:
    """Directory to put on the worker's PYTHONPATH (the ``src`` root)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class Supervisor:
    """Drives a sweep to completion; see the module docstring."""

    def __init__(
        self,
        out_dir: str,
        max_attempts: int = 3,
        backoff_s: float = 0.5,
        wall_timeout_s: Optional[float] = 300.0,
        checkpoint_every_s: float = 0.1,
        python: Optional[str] = None,
        log: Callable[[str], None] = print,
    ):
        self.out_dir = out_dir
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.wall_timeout_s = wall_timeout_s
        self.checkpoint_every_s = checkpoint_every_s
        self.python = python or sys.executable
        self.log = log
        self.manifest_path = os.path.join(out_dir, "manifest.json")

    # -- manifest lifecycle --------------------------------------------------

    def _open_manifest(self, runs: list[RunSpec], resume: bool) -> Manifest:
        if resume and os.path.exists(self.manifest_path):
            manifest = Manifest.load(self.manifest_path)
            known = set(manifest.runs)
            for spec in runs:
                if spec.run_id not in known:
                    manifest.add_run(
                        RunRecord(run_id=spec.run_id, kind=spec.kind, params=spec.params)
                    )
            return manifest
        if resume:
            self.log(
                f"[supervisor] no manifest at {self.manifest_path}; starting fresh"
            )
        manifest = Manifest(
            self.manifest_path,
            meta={
                "out_dir": self.out_dir,
                "max_attempts": self.max_attempts,
                "checkpoint_every_s": self.checkpoint_every_s,
            },
        )
        for spec in runs:
            manifest.add_run(
                RunRecord(run_id=spec.run_id, kind=spec.kind, params=spec.params)
            )
        return manifest

    # -- one attempt ---------------------------------------------------------

    def _launch(self, record: RunRecord, resume_from: Optional[str]) -> int:
        """Run one worker attempt; returns its exit code (-N for signal N)."""
        run_dir = os.path.join(self.out_dir, record.run_id)
        os.makedirs(run_dir, exist_ok=True)
        spec = {
            "run_id": record.run_id,
            "kind": record.kind,
            "params": record.params,
            "attempt": record.attempts,
            "out_dir": run_dir,
            "checkpoint_every_s": self.checkpoint_every_s,
            "resume_from": resume_from,
        }
        spec_path = os.path.join(run_dir, "spec.json")
        atomic_write_json(spec_path, spec)

        env = dict(os.environ)
        src = _src_path()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")

        proc = subprocess.Popen(
            [self.python, "-m", "repro.supervisor.worker", "--spec", spec_path],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            _, stderr = proc.communicate(timeout=self.wall_timeout_s)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()
            self.log(
                f"[supervisor] {record.run_id}: wall-clock timeout after "
                f"{self.wall_timeout_s}s, worker killed"
            )
            return -9
        if proc.returncode not in (0, EXIT_PERMANENT, EXIT_TRANSIENT) and stderr:
            tail = stderr.decode(errors="replace").strip().splitlines()[-3:]
            for line in tail:
                self.log(f"[supervisor] {record.run_id}: worker stderr: {line}")
        return proc.returncode

    @staticmethod
    def _read_error(run_dir: str) -> Optional[dict]:
        try:
            with open(os.path.join(run_dir, "error.json")) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    @staticmethod
    def _describe_stuck(stuck: list) -> str:
        parts = []
        for d in stuck or []:
            parts.append(
                f"{d.get('name')!r} on cpu {d.get('cpu')} "
                f"[{d.get('core_type') or 'off-cpu'}]"
            )
        return ", ".join(parts) if parts else "none reported"

    # -- the sweep loop ------------------------------------------------------

    def run(self, runs: list[RunSpec], resume: bool = False) -> Manifest:
        os.makedirs(self.out_dir, exist_ok=True)
        manifest = self._open_manifest(runs, resume)
        manifest.save()

        todo = manifest.pending_runs()
        skipped = len(manifest.runs) - len(todo)
        if skipped:
            self.log(f"[supervisor] resume: {skipped} run(s) already done, skipped")

        for record in todo:
            self._drive_run(manifest, record)

        counts = manifest.summary()
        self.log(f"[supervisor] sweep complete: {counts}")
        return manifest

    def _drive_run(self, manifest: Manifest, record: RunRecord) -> None:
        run_dir = os.path.join(self.out_dir, record.run_id)
        checkpoint = os.path.join(run_dir, "checkpoint.snap")
        if record.status == FAILED:
            # A failed run re-queued under --resume gets a fresh attempt
            # budget; its checkpoint (if any) still applies.
            record.attempts = 0

        while record.attempts < self.max_attempts:
            record.attempts += 1
            record.status = RUNNING
            resume_from = checkpoint if os.path.exists(checkpoint) else None
            record.checkpoint_path = resume_from
            manifest.save()

            origin = (
                f"resuming from {resume_from}" if resume_from else "fresh start"
            )
            self.log(
                f"[supervisor] {record.run_id}: attempt "
                f"{record.attempts}/{self.max_attempts} ({origin})"
            )
            code = self._launch(record, resume_from)

            if code == 0:
                record.status = DONE
                record.last_error = None
                record.result_path = os.path.join(run_dir, "result.json")
                if os.path.exists(checkpoint):
                    record.checkpoint_path = checkpoint
                manifest.save()
                self.log(f"[supervisor] {record.run_id}: done")
                return

            error = self._read_error(run_dir)
            if os.path.exists(checkpoint):
                record.checkpoint_path = checkpoint
            record.stuck = (error or {}).get("stuck", [])
            record.last_error = error or {
                "type": "WorkerCrash",
                "message": (
                    f"worker died with signal {-code}"
                    if code < 0
                    else f"worker exited {code} without writing error.json"
                ),
                "classification": "transient",
            }

            permanent = code == EXIT_PERMANENT
            label = "permanent" if permanent else "transient"
            ckpt_note = record.checkpoint_path or "no checkpoint taken"
            self.log(
                f"[supervisor] {record.run_id}: attempt {record.attempts} failed "
                f"({label}: {record.last_error.get('type')}: "
                f"{record.last_error.get('message')}); "
                f"last checkpoint: {ckpt_note}; "
                f"stuck: {self._describe_stuck(record.stuck)}"
            )

            if permanent:
                record.status = FAILED
                manifest.save()
                return

            if record.attempts < self.max_attempts:
                delay = self.backoff_s * (2 ** (record.attempts - 1))
                if delay > 0:
                    self.log(
                        f"[supervisor] {record.run_id}: retrying in {delay:.1f}s"
                    )
                    time.sleep(delay)
            manifest.save()

        record.status = FAILED
        manifest.save()
        self.log(
            f"[supervisor] {record.run_id}: giving up after "
            f"{record.attempts} attempts"
        )
