"""The fault-tolerant measurement service front door.

:class:`Supervisor` turns a list of :class:`RunSpec`s into finished,
bit-reproducible results, surviving every failure mode the harness has
been able to manufacture:

* **worker crashes** (exception, SIGKILL, OOM) — each run executes in a
  crash-isolated subprocess; transient failures retry from the latest
  checkpoint with deterministic backoff (seedable jitter, injectable
  clock/sleep — see :func:`~repro.supervisor.pool.backoff_delay`);
* **wedged workers** — heartbeats carry simulated time; no progress for
  ``stuck_after_s`` kills the worker's whole process group and
  *migrates* the run to a different pool slot;
* **supervisor death** — every job transition is fsync'd to an
  append-only journal (:mod:`repro.supervisor.journal`) *before* the
  supervisor acts on it, so SIGKILL-ing the supervisor mid-fleet and
  re-running with ``resume=True`` reconstructs the exact
  pending/in-flight/done sets and finishes with byte-identical results;
* **repeated work** — an optional deterministic result cache keyed by
  (spec digest, code version) serves resubmitted identical specs
  without launching a single worker;
* **shutdown** — ``request_drain()`` (SIGTERM in ``tools/sweep.py``)
  stops admission, lets in-flight workers checkpoint and exit, and
  leaves a journal a later ``--resume`` picks up cleanly.

Service-level observability flows through the shared
:class:`~repro.trace.tracer.MetricsRegistry` (queue depth, retries,
migrations, preemptions, cache hits, per-exit-code counts) and is
written to ``<out>/metrics.json`` next to the materialized
``manifest.json`` view.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.supervisor.cache import ResultCache
from repro.supervisor.journal import Journal
from repro.supervisor.manifest import (
    DONE,
    FAILED,
    PENDING,
    Manifest,
    RunRecord,
    atomic_write_json,
)
from repro.supervisor.pool import WorkerPool, default_worker_count
from repro.trace.tracer import MetricsRegistry


@dataclass
class RunSpec:
    """One run the caller wants executed."""

    run_id: str
    kind: str
    params: dict = field(default_factory=dict)


class Supervisor:
    """Drives a sweep to completion; see the module docstring."""

    def __init__(
        self,
        out_dir: str,
        max_attempts: int = 3,
        backoff_s: float = 0.5,
        wall_timeout_s: Optional[float] = 300.0,
        checkpoint_every_s: float = 0.1,
        python: Optional[str] = None,
        log: Callable[[str], None] = print,
        workers: Optional[int] = None,
        stuck_after_s: float = 30.0,
        poll_interval_s: float = 0.02,
        jitter_seed: Optional[int] = None,
        cache_dir: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.out_dir = out_dir
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.wall_timeout_s = wall_timeout_s
        self.checkpoint_every_s = checkpoint_every_s
        self.python = python or sys.executable
        self.log = log
        self.workers = workers if workers is not None else default_worker_count()
        self.stuck_after_s = stuck_after_s
        self.poll_interval_s = poll_interval_s
        self.jitter_seed = jitter_seed
        self.cache_dir = cache_dir
        self.clock = clock
        self.sleep = sleep
        self.manifest_path = os.path.join(out_dir, "manifest.json")
        self.journal_path = os.path.join(out_dir, "journal.jsonl")
        self.metrics_path = os.path.join(out_dir, "metrics.json")
        self.metrics = MetricsRegistry()
        self._pool: Optional[WorkerPool] = None

    # -- drain ---------------------------------------------------------------

    def request_drain(self) -> None:
        """Graceful shutdown: stop admitting runs, checkpoint in-flight
        workers, return from :meth:`run` with the rest still pending."""
        if self._pool is not None:
            self._pool.request_drain()

    @property
    def drained(self) -> bool:
        return self._pool is not None and self._pool.draining

    # -- durable state -------------------------------------------------------

    def _meta(self) -> dict:
        return {
            "out_dir": self.out_dir,
            "max_attempts": self.max_attempts,
            "checkpoint_every_s": self.checkpoint_every_s,
            "workers": self.workers,
        }

    def _open_state(
        self, runs: list[RunSpec], resume: bool, journal: Journal
    ) -> dict[str, RunRecord]:
        """Recover (journal replay, legacy-manifest import, or fresh) and
        reconcile with the submitted specs.  Leaves ``journal`` open for
        appending."""
        if (
            resume
            and os.path.exists(self.journal_path)
            and os.path.getsize(self.journal_path) == 0
        ):
            # Killed between creating the journal and fsyncing its
            # header: nothing was ever durably recorded, so a fresh
            # start is the correct (and only possible) resume.
            self.log(
                f"[supervisor] journal {self.journal_path} is empty "
                "(crash before the header was written); starting fresh"
            )
            records: dict[str, RunRecord] = {}
            journal.open_fresh(meta=self._meta())
        elif resume and os.path.exists(self.journal_path):
            state = Journal.replay(self.journal_path)
            if state.torn_tail:
                self.log(
                    "[supervisor] journal ended in a torn line "
                    "(crash debris); dropped it and resuming"
                )
            records = state.records
            journal.open_append(
                truncate_to=state.valid_bytes if state.torn_tail else None
            )
        elif resume and os.path.exists(self.manifest_path):
            # A pre-journal sweep directory: import the manifest into a
            # fresh journal and carry on under the new regime.
            manifest = Manifest.load(self.manifest_path)
            records = manifest.runs
            journal.open_fresh(meta=self._meta())
            for record in records.values():
                journal.append(self._add_event(record))
            self.log(
                f"[supervisor] imported legacy manifest "
                f"({len(records)} run(s)) into {self.journal_path}"
            )
        else:
            if resume:
                self.log(
                    f"[supervisor] no journal at {self.journal_path}; "
                    "starting fresh"
                )
            records = {}
            journal.open_fresh(meta=self._meta())

        known = set(records)
        for spec in runs:
            if spec.run_id in known:
                continue
            record = RunRecord(
                run_id=spec.run_id, kind=spec.kind, params=spec.params
            )
            records[spec.run_id] = record
            journal.append(self._add_event(record))

        if resume:
            # A failed run re-queued under --resume gets a fresh attempt
            # budget; its checkpoint (if any) still applies.
            for record in records.values():
                if record.status == FAILED:
                    record.status = PENDING
                    record.attempts = 0
                    record.last_error = None
                    journal.append(
                        {
                            "type": "requeue",
                            "run_id": record.run_id,
                            "attempts": 0,
                        }
                    )
        return records

    @staticmethod
    def _add_event(record: RunRecord) -> dict:
        event = {
            "type": "add",
            "run_id": record.run_id,
            "kind": record.kind,
            "params": record.params,
        }
        if record.status != PENDING or record.attempts:
            event.update(
                {
                    "status": record.status,
                    "attempts": record.attempts,
                    "result_path": record.result_path,
                    "checkpoint_path": record.checkpoint_path,
                    "cached": record.cached,
                }
            )
        return event

    # -- cache ---------------------------------------------------------------

    def _serve_from_cache(
        self, cache: ResultCache, record: RunRecord, journal: Journal
    ) -> bool:
        hit = cache.get(record.kind, record.params)
        if hit is None:
            return False
        run_dir = os.path.join(self.out_dir, record.run_id)
        os.makedirs(run_dir, exist_ok=True)
        result_path = os.path.join(run_dir, "result.json")
        atomic_write_json(result_path, hit)
        record.status = DONE
        record.result_path = result_path
        record.cached = True
        record.last_error = None
        journal.append(
            {
                "type": "done",
                "run_id": record.run_id,
                "attempt": record.attempts,
                "result_path": result_path,
                "cached": True,
            }
        )
        self.metrics.counter("fleet.cache_hit")
        self.log(f"[supervisor] {record.run_id}: served from result cache")
        return True

    def _make_cache_writer(
        self, cache: Optional[ResultCache]
    ) -> Optional[Callable[[RunRecord], None]]:
        if cache is None:
            return None

        def store(record: RunRecord) -> None:
            try:
                with open(record.result_path) as fh:  # type: ignore[arg-type]
                    result = json.load(fh)
            except (OSError, TypeError, ValueError):
                return
            cache.put(record.kind, record.params, result)

        return store

    # -- the sweep -----------------------------------------------------------

    def run(self, runs: list[RunSpec], resume: bool = False) -> Manifest:
        os.makedirs(self.out_dir, exist_ok=True)
        journal = Journal(self.journal_path)
        records = self._open_state(runs, resume, journal)

        manifest = Manifest(self.manifest_path, meta=self._meta())
        manifest.runs = records
        manifest.save()

        todo = [rec for rec in records.values() if rec.status != DONE]
        skipped = len(records) - len(todo)
        if skipped:
            self.log(
                f"[supervisor] resume: {skipped} run(s) already done, skipped"
            )

        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        launchable = []
        for record in todo:
            if cache is not None and self._serve_from_cache(
                cache, record, journal
            ):
                continue
            if record.attempts >= self.max_attempts:
                # Recovered mid-flight on its last attempt: the budget is
                # spent (matching the pre-pool retry accounting).
                record.status = FAILED
                journal.append(
                    {
                        "type": "failed",
                        "run_id": record.run_id,
                        "attempt": record.attempts,
                        "error": record.last_error,
                    }
                )
                self.log(
                    f"[supervisor] {record.run_id}: attempt budget already "
                    f"spent ({record.attempts}/{self.max_attempts})"
                )
                continue
            launchable.append(record)

        self._pool = WorkerPool(
            self.out_dir,
            journal,
            workers=self.workers,
            python=self.python,
            max_attempts=self.max_attempts,
            backoff_s=self.backoff_s,
            jitter_seed=self.jitter_seed,
            wall_timeout_s=self.wall_timeout_s,
            stuck_after_s=self.stuck_after_s,
            checkpoint_every_s=self.checkpoint_every_s,
            poll_interval_s=self.poll_interval_s,
            clock=self.clock,
            sleep=self.sleep,
            log=self.log,
            metrics=self.metrics,
            on_done=self._make_cache_writer(cache),
        )
        try:
            self._pool.run(launchable)
        finally:
            snapshot = self.metrics.as_dict()
            journal.append({"type": "metrics", "metrics": snapshot})
            journal.append(
                {"type": "drain" if self.drained else "complete",
                 "summary": manifest.summary()}
            )
            journal.close()
            manifest.save()
            atomic_write_json(self.metrics_path, snapshot)

        counts = manifest.summary()
        verb = "drained" if self.drained else "complete"
        self.log(f"[supervisor] sweep {verb}: {counts}")
        return manifest
