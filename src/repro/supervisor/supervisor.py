"""The one-shot front door of the measurement service.

:class:`Supervisor` is now a thin client of the same
:class:`~repro.supervisor.service.ServiceCore` that powers the
long-running daemon (:mod:`repro.supervisor.service`): ``run()`` opens
the core (journal recovery, orphan reaping, result cache), admits the
submitted specs through the durable
:class:`~repro.supervisor.queue.AdmissionQueue` — idempotent by spec
digest, one fsync per batch — steps the
:class:`~repro.supervisor.pool.WorkerPool` until idle, and seals the
journal.  Everything the PR 3–7 supervisor guaranteed still holds and
is still covered by the same tests:

* **worker crashes** — crash-isolated subprocess per run, checkpointed
  retries with deterministic backoff (seedable jitter, injectable
  clock/sleep);
* **wedged workers** — heartbeat liveness, process-group kills, slot
  migration;
* **supervisor death** — every transition journaled before acted on;
  SIGKILL + ``resume=True`` reconstructs the exact
  pending/in-flight/done sets and finishes byte-identically;
* **repeated work** — the deterministic result cache (now bounded, LRU)
  serves identical specs with zero launches;
* **shutdown** — ``request_drain()`` checkpoints in-flight workers and
  leaves a journal ``--resume`` picks up cleanly.

The difference is purely architectural: the sweep path and the daemon
path can no longer drift, because they are the same code.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.supervisor.manifest import Manifest
from repro.supervisor.queue import RunSpec
from repro.supervisor.service import ServiceCore

__all__ = ["RunSpec", "Supervisor"]


class Supervisor:
    """Drives a sweep to completion; see the module docstring."""

    def __init__(
        self,
        out_dir: str,
        max_attempts: int = 3,
        backoff_s: float = 0.5,
        wall_timeout_s: Optional[float] = 300.0,
        checkpoint_every_s: float = 0.1,
        python: Optional[str] = None,
        log: Callable[[str], None] = print,
        workers: Optional[int] = None,
        stuck_after_s: float = 30.0,
        poll_interval_s: float = 0.02,
        jitter_seed: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cache_max_entries: Optional[int] = None,
        cache_max_bytes: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.core = ServiceCore(
            out_dir,
            max_attempts=max_attempts,
            backoff_s=backoff_s,
            wall_timeout_s=wall_timeout_s,
            checkpoint_every_s=checkpoint_every_s,
            python=python,
            log=log,
            workers=workers,
            stuck_after_s=stuck_after_s,
            poll_interval_s=poll_interval_s,
            jitter_seed=jitter_seed,
            cache_dir=cache_dir,
            cache_max_entries=cache_max_entries,
            cache_max_bytes=cache_max_bytes,
            clock=clock,
            sleep=sleep,
        )
        self.out_dir = out_dir
        self.log = log

    # -- passthroughs (the public surface the CLI and tests rely on) ---------

    @property
    def journal_path(self) -> str:
        return self.core.journal_path

    @property
    def manifest_path(self) -> str:
        return self.core.manifest_path

    @property
    def metrics_path(self) -> str:
        return self.core.metrics_path

    @property
    def metrics(self):
        return self.core.metrics

    @property
    def workers(self) -> int:
        return self.core.workers

    def request_drain(self) -> None:
        """Graceful shutdown: stop admitting runs, checkpoint in-flight
        workers, return from :meth:`run` with the rest still pending."""
        self.core.request_drain()

    @property
    def drained(self) -> bool:
        return self.core.drained

    # -- the sweep -----------------------------------------------------------

    def run(self, runs: list[RunSpec], resume: bool = False) -> Manifest:
        """Execute ``runs`` to completion (or drain) and return the
        materialized manifest view."""
        self.core.open(resume=resume)
        try:
            self.core.submit(runs)
            self.core.run_until_idle()
        finally:
            manifest = self.core.close()
        counts = manifest.summary()
        verb = "drained" if self.drained else "complete"
        self.log(f"[supervisor] sweep {verb}: {counts}")
        return manifest
