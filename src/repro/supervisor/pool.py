"""The concurrent worker pool: N subprocess workers, liveness, migration.

This is the fleet engine under :class:`~repro.supervisor.supervisor.
Supervisor`.  It admits pending runs into up to ``workers`` slots, each
slot one ``python -m repro.supervisor.worker`` subprocess started in its
**own session** (so a kill always takes the whole process group — no
zombie children surviving a timeout).  The poll loop then watches every
in-flight job three ways:

* ``poll()`` — **dead** workers are reaped and classified by exit code
  exactly as the single-worker supervisor did;
* heartbeats — a worker whose **simulated** time stops advancing for
  ``stuck_after_s`` of wall time is **stuck**: killed (whole group) and
  *migrated* — requeued on a different slot, resuming from its last
  checkpoint with its attempt/backoff state carried over;
* the wall deadline — a worker that is progressing but past
  ``wall_timeout_s`` is **slow**: killed and retried from checkpoint.

Retries are scheduled, not slept: each failed attempt computes a
deterministic backoff (exponential base with seedable jitter, see
:func:`backoff_delay`) and re-enters the ready queue with a not-before
time on the injected ``clock``.  Tests inject a fake clock/sleep pair,
so no unit test ever calls ``time.sleep`` for real.

On ``request_drain()`` (wired to SIGTERM by ``tools/sweep.py``) the pool
stops admitting, SIGTERMs in-flight workers — they checkpoint and exit
:data:`~repro.supervisor.manifest.EXIT_PREEMPTED` — and returns with the
remaining runs still pending in the journal, ready for ``--resume``.
"""

from __future__ import annotations

import heapq
import json
import os
import random
import signal
import subprocess
from dataclasses import dataclass
from typing import Callable, Optional

from repro.supervisor.heartbeat import (
    SLOW,
    STUCK,
    heartbeat_path,
    read_heartbeat,
)
from repro.supervisor.journal import Journal
from repro.supervisor.manifest import (
    CANCELLED,
    DONE,
    EXIT_PERMANENT,
    EXIT_PREEMPTED,
    FAILED,
    PENDING,
    RUNNING,
    RunRecord,
    atomic_write_json,
)
from repro.trace.tracer import MetricsRegistry


def default_worker_count() -> int:
    """``os.cpu_count()``-derived pool size: leave one CPU for the
    supervisor, never exceed eight (worker startup is import-bound and
    the fleet stops scaling long before that on sweep workloads)."""
    cpus = os.cpu_count() or 1
    return max(1, min(8, cpus - 1))


def backoff_delay(
    base_s: float, attempt: int, run_id: str, jitter_seed: Optional[int]
) -> float:
    """Deterministic retry delay after ``attempt`` failed.

    Exponential base (``base_s * 2**(attempt-1)``, the PR 3 schedule)
    plus up to +25% jitter drawn from a :class:`random.Random` seeded by
    ``(jitter_seed, run_id, attempt)`` — so the schedule is a pure
    function of the sweep inputs, reproducible in tests, yet desynced
    across runs (no retry stampede when a whole fleet fails at once).
    ``jitter_seed=None`` disables jitter entirely.
    """
    delay = base_s * (2 ** (attempt - 1))
    if jitter_seed is None or delay <= 0:
        return delay
    rng = random.Random(f"{jitter_seed}:{run_id}:{attempt}")
    return delay * (1.0 + 0.25 * rng.random())


def _src_path() -> str:
    """Directory to put on the worker's PYTHONPATH (the ``src`` root)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@dataclass
class _Job:
    """One in-flight worker attempt."""

    record: RunRecord
    slot: int
    proc: subprocess.Popen
    run_dir: str
    started: float
    resume_from: Optional[str]
    #: Newest simulated time seen in a heartbeat for this attempt.
    last_sim_time: Optional[float] = None
    #: Pool-clock instant sim time last advanced (starts at launch).
    last_progress: float = 0.0
    #: A heartbeat for this attempt has been observed at least once.
    hb_seen: bool = False
    #: A SIGTERM was already sent (drain); don't repeat it.
    terminated: bool = False


class WorkerPool:
    """Runs a set of :class:`RunRecord`s to completion; see module doc."""

    def __init__(
        self,
        out_dir: str,
        journal: Journal,
        *,
        workers: int,
        python: str,
        max_attempts: int,
        backoff_s: float,
        jitter_seed: Optional[int],
        wall_timeout_s: Optional[float],
        stuck_after_s: float,
        checkpoint_every_s: float,
        poll_interval_s: float,
        clock: Callable[[], float],
        sleep: Callable[[float], None],
        log: Callable[[str], None],
        metrics: MetricsRegistry,
        on_done: Optional[Callable[[RunRecord], None]] = None,
        drain_grace_s: float = 10.0,
    ):
        self.out_dir = out_dir
        self.journal = journal
        self.workers = max(1, int(workers))
        self.python = python
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.jitter_seed = jitter_seed
        self.wall_timeout_s = wall_timeout_s
        self.stuck_after_s = stuck_after_s
        self.checkpoint_every_s = checkpoint_every_s
        self.poll_interval_s = poll_interval_s
        self.clock = clock
        self.sleep = sleep
        self.log = log
        self.metrics = metrics
        self.on_done = on_done
        self.drain_grace_s = drain_grace_s
        self._draining = False
        self._drain_unannounced = False
        self._drain_started: Optional[float] = None
        self._seq = 0
        #: Ready-queue heap entries: (not-before on self.clock, admission
        #: seq, record).  The seq keeps admission deterministic among
        #: simultaneously-ready runs and makes heap entries comparable.
        self._queue: list[tuple[float, int, RunRecord]] = []
        self._jobs: dict[int, _Job] = {}
        self._free_slots: list[int] = list(range(self.workers))

    # -- live state ----------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Distinct launchable runs waiting in the ready queue (stale
        heap entries from cancel/resubmit cycles are not counted)."""
        return len(
            {rec.run_id for _, _, rec in self._queue if rec.status == PENDING}
        )

    @property
    def in_flight(self) -> dict[str, int]:
        """``{run_id: pid}`` of currently-running workers."""
        return {
            job.record.run_id: job.proc.pid for job in self._jobs.values()
        }

    @property
    def busy(self) -> bool:
        """True while a :meth:`step` could still make progress: jobs in
        flight, or queued runs that a non-draining pool will launch."""
        return bool(self._jobs) or (
            self.queue_depth > 0 and not self._draining
        )

    # -- drain ---------------------------------------------------------------

    def request_drain(self) -> None:
        """Stop admitting; in-flight workers are asked to checkpoint and
        exit (the poll loop delivers the SIGTERMs).

        Async-signal-safe by design — the service's SIGTERM handler
        lands here, so this only sets flags.  The log line is emitted by
        the next :meth:`step` from the main loop."""
        if not self._draining:
            self._draining = True
            self._drain_unannounced = True

    @property
    def draining(self) -> bool:
        return self._draining

    # -- the fleet loop ------------------------------------------------------

    def enqueue(self, records: list[RunRecord]) -> None:
        """Admit runs into the ready queue (launchable immediately)."""
        now = self.clock()
        for record in records:
            heapq.heappush(self._queue, (now, self._seq, record))
            self._seq += 1

    def cancel(self, run_id: str) -> Optional[str]:
        """Cancel a queued or in-flight run.

        Queued runs are marked :data:`CANCELLED` and lazily skipped when
        they surface from the heap; in-flight runs have their worker
        group killed.  Returns ``"pending"`` / ``"running"`` for what
        was cancelled, or None if the run is not under pool control
        (already finished, or never enqueued)."""
        for slot, job in list(self._jobs.items()):
            if job.record.run_id == run_id:
                self._kill_group(job, signal.SIGKILL)
                job.proc.wait()
                del self._jobs[slot]
                self._free_slots.append(slot)
                job.record.status = CANCELLED
                job.record.last_pid = None
                self.metrics.counter("fleet.cancel", key="running")
                return "running"
        for _, _, record in self._queue:
            if record.run_id == run_id and record.status != CANCELLED:
                record.status = CANCELLED
                self.metrics.counter("fleet.cancel", key="pending")
                return "pending"
        return None

    def step(self) -> bool:
        """One scheduling round: admit ready runs into free slots, reap
        dead workers, enforce liveness, drive a drain.  Never sleeps —
        the caller owns pacing (and, in the daemon, interleaves socket
        traffic between steps).  Returns :attr:`busy`."""
        if self._drain_unannounced:
            self._drain_unannounced = False
            self.log("[fleet] drain requested: no new runs will start")
        now = self.clock()
        if not self._draining:
            while self._free_slots and self._queue and self._queue[0][0] <= now:
                _, _, record = heapq.heappop(self._queue)
                if record.status != PENDING:
                    # Cancelled while queued, or a stale entry from a
                    # cancel→resubmit cycle (the record was re-enqueued
                    # and its newer entry already launched): skip.
                    continue
                slot = self._pick_slot(self._free_slots, record)
                self._free_slots.remove(slot)
                self._jobs[slot] = self._launch(record, slot, now)
        self.metrics.gauge("fleet.queue_depth", value=float(self.queue_depth))
        self.metrics.gauge("fleet.in_flight", value=float(len(self._jobs)))

        for slot in sorted(self._jobs):
            job = self._jobs[slot]
            code = job.proc.poll()
            if code is not None:
                del self._jobs[slot]
                self._free_slots.append(slot)
                self._finish(job, code, now)
                continue
            verdict = self._liveness(job, now)
            if verdict is not None:
                self._kill_group(job, signal.SIGKILL)
                job.proc.wait()
                del self._jobs[slot]
                self._free_slots.append(slot)
                self._finish_killed(job, verdict, now)

        if self._draining and self._jobs:
            self._drive_drain(self._jobs, now)
        return self.busy

    def run(self, records: list[RunRecord]) -> None:
        """One-shot mode: enqueue and step until idle (or drained)."""
        self.enqueue(records)
        while self.step():
            self.sleep(self.poll_interval_s)
        self.metrics.gauge("fleet.queue_depth", value=float(self.queue_depth))
        self.metrics.gauge("fleet.in_flight", value=0.0)

    # -- admission -----------------------------------------------------------

    def _pick_slot(self, free_slots: list[int], record: RunRecord) -> int:
        """Prefer a slot the run has not just failed on (migration)."""
        free_slots.sort()
        for slot in free_slots:
            if slot != record.last_slot:
                return slot
        return free_slots[0]

    def _launch(self, record: RunRecord, slot: int, now: float) -> _Job:
        run_dir = os.path.join(self.out_dir, record.run_id)
        os.makedirs(run_dir, exist_ok=True)
        checkpoint = os.path.join(run_dir, "checkpoint.snap")
        resume_from = checkpoint if os.path.exists(checkpoint) else None

        record.attempts += 1
        record.status = RUNNING
        record.last_slot = slot
        record.checkpoint_path = resume_from

        # A stale heartbeat from the previous attempt must not feed the
        # liveness monitor; drop it before the new worker starts.
        try:
            os.unlink(heartbeat_path(run_dir))
        except OSError:
            pass

        spec = {
            "run_id": record.run_id,
            "kind": record.kind,
            "params": record.params,
            "attempt": record.attempts,
            "out_dir": run_dir,
            "checkpoint_every_s": self.checkpoint_every_s,
            "resume_from": resume_from,
        }
        spec_path = os.path.join(run_dir, "spec.json")
        atomic_write_json(spec_path, spec)

        env = dict(os.environ)
        src = _src_path()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")

        stderr_log = open(os.path.join(run_dir, "stderr.log"), "wb")
        try:
            proc = subprocess.Popen(
                [self.python, "-m", "repro.supervisor.worker", "--spec", spec_path],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=stderr_log,
                start_new_session=True,
            )
        finally:
            stderr_log.close()

        origin = f"resuming from {resume_from}" if resume_from else "fresh start"
        self.log(
            f"[fleet] {record.run_id}: attempt {record.attempts}/"
            f"{self.max_attempts} on slot {slot} ({origin})"
        )
        self.journal.append(
            {
                "type": "launch",
                "run_id": record.run_id,
                "attempt": record.attempts,
                "slot": slot,
                "resume_from": resume_from,
                "pid": proc.pid,
            }
        )
        self.metrics.counter("fleet.launch")
        record.last_pid = proc.pid
        return _Job(
            record=record,
            slot=slot,
            proc=proc,
            run_dir=run_dir,
            started=now,
            resume_from=resume_from,
            last_progress=now,
        )

    # -- liveness ------------------------------------------------------------

    def _liveness(self, job: _Job, now: float) -> Optional[str]:
        """STUCK/SLOW when the job must be killed, else None (live)."""
        hb = read_heartbeat(heartbeat_path(job.run_dir))
        if hb is not None and hb.get("attempt") == job.record.attempts:
            if not job.hb_seen:
                # First heartbeat of the attempt: startup (interpreter,
                # imports, model construction) is over — that is itself
                # progress, or a worker whose setup exceeds the stuck
                # window would be killed before its first sim step.
                job.hb_seen = True
                job.last_progress = now
            sim = hb.get("sim_time_s")
            if sim is not None and (
                job.last_sim_time is None or sim > job.last_sim_time
            ):
                job.last_sim_time = sim
                job.last_progress = now
        # Until that first heartbeat the worker is starting up, which is
        # arbitrarily slow under fleet load: give it triple rope.  A
        # worker *re-writing* heartbeats with frozen sim time gets no
        # credit — that is exactly the stuck signature.
        stuck_after = self.stuck_after_s * (1.0 if job.hb_seen else 3.0)
        if now - job.last_progress >= stuck_after:
            return STUCK
        if (
            self.wall_timeout_s is not None
            and now - job.started >= self.wall_timeout_s
        ):
            return SLOW
        return None

    def _kill_group(self, job: _Job, sig: int) -> None:
        """Signal the worker's whole process group (it leads its own
        session), so helpers it spawned die with it — no zombies."""
        try:
            os.killpg(job.proc.pid, sig)
        except (ProcessLookupError, PermissionError):
            try:
                job.proc.send_signal(sig)
            except ProcessLookupError:
                pass

    # -- exit handling -------------------------------------------------------

    @staticmethod
    def _read_error(run_dir: str) -> Optional[dict]:
        try:
            with open(os.path.join(run_dir, "error.json")) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def _stderr_tail(self, run_dir: str) -> list[str]:
        try:
            with open(os.path.join(run_dir, "stderr.log"), "rb") as fh:
                return (
                    fh.read().decode(errors="replace").strip().splitlines()[-3:]
                )
        except OSError:
            return []

    def _finish(self, job: _Job, code: int, now: float) -> None:
        record = job.record
        record.last_pid = None
        checkpoint = os.path.join(job.run_dir, "checkpoint.snap")
        if os.path.exists(checkpoint):
            record.checkpoint_path = checkpoint
        self.metrics.counter("fleet.exit", key=str(code))
        self.metrics.observe("fleet.attempt_wall_s", value=now - job.started)

        if code == 0:
            record.status = DONE
            record.last_error = None
            record.result_path = os.path.join(job.run_dir, "result.json")
            self.journal.append(
                {
                    "type": "done",
                    "run_id": record.run_id,
                    "attempt": record.attempts,
                    "result_path": record.result_path,
                    "cached": False,
                }
            )
            self.metrics.counter("fleet.done")
            self.log(f"[fleet] {record.run_id}: done")
            if self.on_done is not None:
                self.on_done(record)
            return

        if code == EXIT_PREEMPTED:
            # The worker checkpointed and exited on request: not a
            # failure, no attempt burned.
            record.attempts -= 1
            record.status = PENDING
            self.journal.append(
                {
                    "type": "preempted",
                    "run_id": record.run_id,
                    "attempt": record.attempts + 1,
                    "checkpoint_path": record.checkpoint_path,
                }
            )
            self.metrics.counter("fleet.preempt")
            self.log(
                f"[fleet] {record.run_id}: preempted "
                f"(checkpoint: {record.checkpoint_path or 'none'})"
            )
            if not self._draining:
                heapq.heappush(self._queue, (now, self._seq, record))
                self._seq += 1
            return

        error = self._read_error(job.run_dir)
        record.stuck = (error or {}).get("stuck", [])
        if error is None:
            for line in self._stderr_tail(job.run_dir):
                self.log(f"[fleet] {record.run_id}: worker stderr: {line}")
        record.last_error = error or {
            "type": "WorkerCrash",
            "message": (
                f"worker died with signal {-code}"
                if code < 0
                else f"worker exited {code} without writing error.json"
            ),
            "classification": "transient",
        }
        self.journal.append(
            {
                "type": "exit",
                "run_id": record.run_id,
                "attempt": record.attempts,
                "code": code,
                "liveness": "dead" if code < 0 else "live",
                "error": record.last_error,
                "checkpoint_path": record.checkpoint_path,
            }
        )

        permanent = code == EXIT_PERMANENT
        label = "permanent" if permanent else "transient"
        self.log(
            f"[fleet] {record.run_id}: attempt {record.attempts} failed "
            f"({label}: {record.last_error.get('type')}: "
            f"{record.last_error.get('message')}); "
            f"last checkpoint: {record.checkpoint_path or 'no checkpoint taken'}; "
            f"stuck: {self._describe_stuck(record.stuck)}"
        )
        if permanent:
            self._fail(record)
            return
        self._retry_or_fail(record, now, migrated=False)

    def _finish_killed(self, job: _Job, verdict: str, now: float) -> None:
        """A liveness kill: STUCK migrates, SLOW plain-retries."""
        record = job.record
        record.last_pid = None
        checkpoint = os.path.join(job.run_dir, "checkpoint.snap")
        if os.path.exists(checkpoint):
            record.checkpoint_path = checkpoint
        self.metrics.counter("fleet.liveness_kill", key=verdict)
        self.metrics.observe("fleet.attempt_wall_s", value=now - job.started)

        if verdict == STUCK:
            message = (
                f"no simulated-time progress for {self.stuck_after_s}s "
                f"(last sim time "
                f"{job.last_sim_time if job.last_sim_time is not None else 'never reported'}); "
                "worker group killed"
            )
            error_type = "StuckWorker"
        else:
            message = (
                f"wall-clock deadline {self.wall_timeout_s}s exceeded "
                f"while still progressing (sim time {job.last_sim_time}); "
                "worker group killed"
            )
            error_type = "WallTimeout"
        record.last_error = {
            "type": error_type,
            "message": message,
            "classification": "transient",
            "liveness": verdict,
        }
        self.journal.append(
            {
                "type": "exit",
                "run_id": record.run_id,
                "attempt": record.attempts,
                "code": -signal.SIGKILL,
                "liveness": verdict,
                "error": record.last_error,
                "checkpoint_path": record.checkpoint_path,
            }
        )
        self.log(f"[fleet] {record.run_id}: {verdict}: {message}")
        self._retry_or_fail(record, now, migrated=(verdict == STUCK))

    def _retry_or_fail(
        self, record: RunRecord, now: float, migrated: bool
    ) -> None:
        if record.attempts >= self.max_attempts:
            self._fail(record)
            self.log(
                f"[fleet] {record.run_id}: giving up after "
                f"{record.attempts} attempts"
            )
            return
        delay = backoff_delay(
            self.backoff_s, record.attempts, record.run_id, self.jitter_seed
        )
        if migrated:
            record.migrations += 1
            self.metrics.counter("fleet.migration")
            self.log(
                f"[fleet] {record.run_id}: migrating off slot "
                f"{record.last_slot} (retry in {delay:.2f}s from "
                f"{record.checkpoint_path or 'scratch'})"
            )
        elif delay > 0:
            self.log(f"[fleet] {record.run_id}: retrying in {delay:.2f}s")
        record.status = PENDING
        self.journal.append(
            {
                "type": "retry",
                "run_id": record.run_id,
                "next_attempt": record.attempts + 1,
                "delay_s": delay,
                "migrated": migrated,
                "from_slot": record.last_slot,
            }
        )
        self.metrics.counter("fleet.retry")
        if not self._draining:
            # Draining pools don't requeue: the retry stays journaled as
            # pending for --resume.
            heapq.heappush(self._queue, (now + delay, self._seq, record))
            self._seq += 1

    def _fail(self, record: RunRecord) -> None:
        record.status = FAILED
        self.journal.append(
            {
                "type": "failed",
                "run_id": record.run_id,
                "attempt": record.attempts,
                "error": record.last_error,
            }
        )
        self.metrics.counter("fleet.failed")

    # -- drain mechanics -----------------------------------------------------

    def _drive_drain(self, jobs: dict[int, _Job], now: float) -> None:
        if self._drain_started is None:
            self._drain_started = now
        past_grace = now - self._drain_started > self.drain_grace_s
        for job in jobs.values():
            if not job.terminated:
                self._kill_group(job, signal.SIGTERM)
                job.terminated = True
            elif past_grace:
                # A worker ignoring SIGTERM past the grace window gets
                # the hard kill; its exit is classified as a crash.
                self._kill_group(job, signal.SIGKILL)

    @staticmethod
    def _describe_stuck(stuck: list) -> str:
        parts = []
        for d in stuck or []:
            parts.append(
                f"{d.get('name')!r} on cpu {d.get('cpu')} "
                f"[{d.get('core_type') or 'off-cpu'}]"
            )
        return ", ".join(parts) if parts else "none reported"
