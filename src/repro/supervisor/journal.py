"""Append-only journal: the fleet's crash-safe source of truth.

The PR 3 supervisor rewrote ``manifest.json`` in place on every
transition; atomic replace made each write safe, but the *history* was
gone — a resumed sweep could only see the last snapshot.  The journal
supersedes it: every job transition is one JSON line appended to
``journal.jsonl`` and fsync'd before the supervisor acts on it, so a
SIGKILL at any instant loses at most a torn final line.  Replaying the
journal reconstructs the exact pending/in-flight/done sets; the old
manifest survives only as a human-readable materialized view written at
checkpoints and at exit.

Recovery rules (exercised by ``tests/test_supervisor_journal.py``):

* a torn (half-written) **last** line is expected crash debris and is
  dropped with a note;
* a torn line **followed by more events** means real corruption →
  :class:`JournalError`;
* a header version this code does not speak → :class:`JournalError`;
* an event naming a run that was never added → :class:`JournalError`
  (never a silent skip).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Optional

from repro.supervisor.manifest import DONE, FAILED, PENDING, RUNNING, RunRecord

JOURNAL_VERSION = 1

#: Event types the replay understands.  Anything else is corruption.
EVENT_TYPES = (
    "header",
    "add",
    "requeue",
    "launch",
    "exit",
    "retry",
    "done",
    "failed",
    "preempted",
    "drain",
    "complete",
    "metrics",
)


class JournalError(RuntimeError):
    """The journal cannot be trusted: wrong version, corruption mid-file,
    or events referencing runs that were never added."""


@dataclass
class JournalState:
    """What a replay reconstructs."""

    meta: dict = field(default_factory=dict)
    records: dict[str, RunRecord] = field(default_factory=dict)
    #: True when the final line was torn (dropped as crash debris).
    torn_tail: bool = False
    #: Number of events applied (excluding the header).
    events: int = 0
    #: Byte length of the intact prefix; pass to
    #: :meth:`Journal.open_append` so new events are written after the
    #: last good line, never after crash debris.
    valid_bytes: int = 0


class Journal:
    """Writer half: append events durably, one fsync per transition."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = None

    # -- lifecycle -----------------------------------------------------------

    def open_fresh(self, meta: Optional[dict] = None) -> None:
        """Truncate and write the version header."""
        os.makedirs(os.path.dirname(os.path.abspath(self.path)) or ".", exist_ok=True)
        self._fh = open(self.path, "w")
        self.append({"type": "header", "version": JOURNAL_VERSION, "meta": meta or {}})

    def open_append(self, truncate_to: Optional[int] = None) -> None:
        """Continue an existing journal (validate it via :func:`replay`
        first; the writer itself does not re-read).  ``truncate_to``
        (from :attr:`JournalState.valid_bytes`) chops a torn final line
        so the next append lands after the last *good* event."""
        if truncate_to is not None:
            with open(self.path, "rb+") as fh:
                fh.truncate(truncate_to)
        self._fh = open(self.path, "a")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- writing -------------------------------------------------------------

    def append(self, event: dict) -> None:
        """Durably append one event: write, flush, fsync.

        The fsync *before returning* is the crash-safety contract: once
        the supervisor acts on a transition, the journal already holds
        it, so replay can never see less than the supervisor did.
        """
        if self._fh is None:
            raise JournalError(f"journal {self.path} is not open")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- replay --------------------------------------------------------------

    @staticmethod
    def replay(path: str) -> JournalState:
        """Fold the journal back into per-run state.  See the module
        docstring for the torn-line/corruption rules."""
        with open(path, "rb") as fh:
            raw = fh.read()
        raw_lines = raw.split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()  # trailing newline, not a line
        if not raw_lines:
            raise JournalError(f"journal {path} is empty (no header)")

        events: list[dict] = []
        torn_tail = False
        valid_bytes = 0
        for i, line in enumerate(raw_lines):
            if not line.strip():
                valid_bytes += len(line) + 1
                continue
            try:
                events.append(json.loads(line))
            except (json.JSONDecodeError, UnicodeDecodeError):
                if i == len(raw_lines) - 1:
                    # Crash debris: the writer died mid-append.  The
                    # fsync contract means nothing after it was acted
                    # on, so dropping it is a clean resume.
                    torn_tail = True
                    break
                raise JournalError(
                    f"journal {path} is corrupt: undecodable line {i + 1} "
                    "is not the last line"
                ) from None
            valid_bytes += len(line) + 1
        valid_bytes = min(valid_bytes, len(raw))

        if not events:
            raise JournalError(f"journal {path} has no intact header line")
        header = events[0]
        if header.get("type") != "header":
            raise JournalError(f"journal {path} does not start with a header")
        version = header.get("version")
        if version != JOURNAL_VERSION:
            raise JournalError(
                f"journal {path} has version {version}, "
                f"this supervisor speaks version {JOURNAL_VERSION}"
            )

        state = JournalState(
            meta=header.get("meta", {}),
            torn_tail=torn_tail,
            valid_bytes=valid_bytes,
        )
        for event in events[1:]:
            Journal._apply(path, state, event)
            state.events += 1
        return state

    @staticmethod
    def _apply(path: str, state: JournalState, event: dict) -> None:
        etype = event.get("type")
        if etype not in EVENT_TYPES:
            raise JournalError(
                f"journal {path} has unknown event type {etype!r}"
            )
        if etype in ("drain", "complete", "metrics", "header"):
            return

        run_id = event.get("run_id")
        if etype == "add":
            if run_id in state.records:
                raise JournalError(
                    f"journal {path} adds run {run_id!r} twice"
                )
            state.records[run_id] = RunRecord(
                run_id=run_id,
                kind=event["kind"],
                params=event.get("params", {}),
                status=event.get("status", PENDING),
                attempts=int(event.get("attempts", 0)),
                result_path=event.get("result_path"),
                checkpoint_path=event.get("checkpoint_path"),
                cached=bool(event.get("cached", False)),
            )
            return

        record = state.records.get(run_id)
        if record is None:
            raise JournalError(
                f"journal {path} references unknown run {run_id!r} "
                f"in a {etype!r} event (never added)"
            )

        if etype == "requeue":
            record.status = PENDING
            record.attempts = int(event.get("attempts", 0))
        elif etype == "launch":
            record.status = RUNNING
            record.attempts = int(event["attempt"])
            record.last_slot = event.get("slot")
            record.checkpoint_path = event.get("resume_from")
        elif etype == "exit":
            record.last_error = event.get("error")
            record.stuck = (event.get("error") or {}).get("stuck", [])
            if event.get("checkpoint_path"):
                record.checkpoint_path = event["checkpoint_path"]
        elif etype == "retry":
            record.status = PENDING
            if event.get("migrated"):
                record.migrations += 1
        elif etype == "preempted":
            record.status = PENDING
            if "attempt" in event:
                # Preemption refunds the attempt (the pool decrements);
                # replay must agree or a resumed run would over-count.
                record.attempts = int(event["attempt"]) - 1
            if event.get("checkpoint_path"):
                record.checkpoint_path = event["checkpoint_path"]
        elif etype == "done":
            record.status = DONE
            record.result_path = event.get("result_path")
            record.cached = bool(event.get("cached", False))
            record.last_error = None
        elif etype == "failed":
            record.status = FAILED
            if event.get("error"):
                record.last_error = event["error"]
