"""Append-only journal: the fleet's crash-safe source of truth.

The PR 3 supervisor rewrote ``manifest.json`` in place on every
transition; atomic replace made each write safe, but the *history* was
gone — a resumed sweep could only see the last snapshot.  The journal
supersedes it: every job transition is one JSON line appended to
``journal.jsonl`` and fsync'd before the supervisor acts on it, so a
SIGKILL at any instant loses at most a torn final line.  Replaying the
journal reconstructs the exact pending/in-flight/done sets; the old
manifest survives only as a human-readable materialized view written at
checkpoints and at exit.

Two extensions serve the long-running measurement service:

* **batched appends** — :meth:`Journal.append_many` writes a whole
  admission batch with a *single* flush+fsync, which is what lets the
  service admit 10^4 queued specs without 10^4 fsyncs.  The durability
  contract is batch-granular: the service replies to a submit only
  after the batch fsync, so an acknowledged job is always replayable
  (an unacknowledged one may be lost — the client resubmits, and
  admission is idempotent).
* **compaction** — :meth:`Journal.compact` atomically rewrites the file
  from the materialized per-run state (full-fidelity ``add`` events),
  keeping the old journal as ``.bak``; a daemon that has processed
  millions of transitions boots from a journal proportional to the
  number of *runs*, not the number of *events*.

Recovery rules (exercised by ``tests/test_supervisor_journal.py``):

* a torn (half-written) **last** line is expected crash debris and is
  dropped with a note;
* a torn line **followed by more events** means real corruption →
  :class:`JournalError`;
* a header version this code does not speak → :class:`JournalError`;
* an event naming a run that was never added → :class:`JournalError`
  (never a silent skip).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import IO, Callable, Iterable, Optional

from repro.supervisor.manifest import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    RunRecord,
)

JOURNAL_VERSION = 1

#: Event types the replay understands.  Anything else is corruption.
EVENT_TYPES = (
    "header",
    "add",
    "requeue",
    "launch",
    "exit",
    "retry",
    "done",
    "failed",
    "cancel",
    "preempted",
    "drain",
    "complete",
    "metrics",
)


class JournalError(RuntimeError):
    """The journal cannot be trusted: wrong version, corruption mid-file,
    or events referencing runs that were never added."""


def add_event(record: RunRecord, full: bool = False) -> dict:
    """The ``add`` event (re)introducing ``record`` into a journal.

    With ``full=False`` only non-default state is embedded (the shape
    the live supervisor writes for fresh submissions).  ``full=True``
    embeds the whole materialized record — what compaction writes, so a
    replay of the compacted journal reconstructs attempts, errors,
    migrations and pids, not just statuses.
    """
    event = {
        "type": "add",
        "run_id": record.run_id,
        "kind": record.kind,
        "params": record.params,
    }
    if full or record.status != PENDING or record.attempts:
        event.update(
            {
                "status": record.status,
                "attempts": record.attempts,
                "result_path": record.result_path,
                "checkpoint_path": record.checkpoint_path,
                "cached": record.cached,
            }
        )
    if full:
        event.update(
            {
                "last_error": record.last_error,
                "stuck": record.stuck,
                "migrations": record.migrations,
                "last_slot": record.last_slot,
                "last_pid": record.last_pid,
            }
        )
    return event


@dataclass
class JournalState:
    """What a replay reconstructs."""

    meta: dict = field(default_factory=dict)
    records: dict[str, RunRecord] = field(default_factory=dict)
    #: True when the final line was torn (dropped as crash debris).
    torn_tail: bool = False
    #: Number of events applied (excluding the header).
    events: int = 0
    #: Byte length of the intact prefix; pass to
    #: :meth:`Journal.open_append` so new events are written after the
    #: last good line, never after crash debris.
    valid_bytes: int = 0


class Journal:
    """Writer half: append events durably, one fsync per transition
    (or per *batch* via :meth:`append_many`)."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = None
        #: Called with each event *after* it is durably on disk — the
        #: service's live-stream tee.  Observers must not raise.
        self.observers: list[Callable[[dict], None]] = []

    # -- lifecycle -----------------------------------------------------------

    def open_fresh(self, meta: Optional[dict] = None) -> None:
        """Truncate and write the version header."""
        os.makedirs(os.path.dirname(os.path.abspath(self.path)) or ".", exist_ok=True)
        self._fh = open(self.path, "w")
        self.append({"type": "header", "version": JOURNAL_VERSION, "meta": meta or {}})

    def open_append(self, truncate_to: Optional[int] = None) -> None:
        """Continue an existing journal (validate it via :func:`replay`
        first; the writer itself does not re-read).  ``truncate_to``
        (from :attr:`JournalState.valid_bytes`) chops a torn final line
        so the next append lands after the last *good* event."""
        if truncate_to is not None:
            with open(self.path, "rb+") as fh:
                fh.truncate(truncate_to)
        self._fh = open(self.path, "a")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # -- writing -------------------------------------------------------------

    def append(self, event: dict) -> None:
        """Durably append one event: write, flush, fsync.

        The fsync *before returning* is the crash-safety contract: once
        the supervisor acts on a transition, the journal already holds
        it, so replay can never see less than the supervisor did.
        """
        self.append_many((event,))

    def append_many(self, events: Iterable[dict]) -> int:
        """Durably append a batch of events with ONE flush+fsync.

        This is the amortized-admission path: the per-event cost is a
        buffered ``write``; the fsync happens once for the whole batch.
        Returns the number of events written.
        """
        if self._fh is None:
            raise JournalError(f"journal {self.path} is not open")
        written = []
        for event in events:
            self._fh.write(json.dumps(event, sort_keys=True) + "\n")
            written.append(event)
        if not written:
            return 0
        self._fh.flush()
        os.fsync(self._fh.fileno())
        for observer in self.observers:
            for event in written:
                observer(event)
        return len(written)

    # -- compaction ----------------------------------------------------------

    @staticmethod
    def compact(path: str, meta: Optional[dict] = None) -> JournalState:
        """Atomically rewrite the journal from its materialized state.

        The event history is folded into one full-fidelity ``add`` per
        run (deterministic order: sorted run id).  Crash-safe sequence:

        1. replay the current journal (refuses corrupt input);
        2. write ``<path>.tmp`` — header + adds — and fsync it;
        3. hardlink the current journal to ``<path>.bak`` (the old file
           stays reachable at *both* names);
        4. atomically rename the tmp over the journal and fsync the
           directory, at which point the ``.bak`` is the only copy of
           the old history.

        A SIGKILL anywhere leaves either the old journal at ``path``
        (steps 1–3) or the compacted one (step 4 landed) — never
        neither, never a mix.  The ``.bak`` from the most recent
        compaction is kept for forensics.  Returns the replayed state
        the compacted journal encodes.
        """
        state = Journal.replay(path)
        tmp = path + ".tmp"
        writer = Journal(tmp)
        writer.open_fresh(meta=meta if meta is not None else state.meta)
        writer.append_many(
            add_event(state.records[rid], full=True)
            for rid in sorted(state.records)
        )
        writer.close()

        bak = path + ".bak"
        try:
            os.unlink(bak)
        except OSError:
            pass
        os.link(path, bak)
        os.replace(tmp, path)
        dir_fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

        compacted = JournalState(meta=state.meta, records=state.records)
        compacted.events = len(state.records)
        compacted.valid_bytes = os.path.getsize(path)
        return compacted

    # -- replay --------------------------------------------------------------

    @staticmethod
    def replay(path: str) -> JournalState:
        """Fold the journal back into per-run state.  See the module
        docstring for the torn-line/corruption rules."""
        with open(path, "rb") as fh:
            raw = fh.read()
        raw_lines = raw.split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()  # trailing newline, not a line
        if not raw_lines:
            raise JournalError(f"journal {path} is empty (no header)")

        events: list[dict] = []
        torn_tail = False
        valid_bytes = 0
        for i, line in enumerate(raw_lines):
            if not line.strip():
                valid_bytes += len(line) + 1
                continue
            try:
                events.append(json.loads(line))
            except (json.JSONDecodeError, UnicodeDecodeError):
                if i == len(raw_lines) - 1:
                    # Crash debris: the writer died mid-append.  The
                    # fsync contract means nothing after it was acted
                    # on, so dropping it is a clean resume.
                    torn_tail = True
                    break
                raise JournalError(
                    f"journal {path} is corrupt: undecodable line {i + 1} "
                    "is not the last line"
                ) from None
            valid_bytes += len(line) + 1
        valid_bytes = min(valid_bytes, len(raw))

        if not events:
            raise JournalError(f"journal {path} has no intact header line")
        header = events[0]
        if header.get("type") != "header":
            raise JournalError(f"journal {path} does not start with a header")
        version = header.get("version")
        if version != JOURNAL_VERSION:
            raise JournalError(
                f"journal {path} has version {version}, "
                f"this supervisor speaks version {JOURNAL_VERSION}"
            )

        state = JournalState(
            meta=header.get("meta", {}),
            torn_tail=torn_tail,
            valid_bytes=valid_bytes,
        )
        for event in events[1:]:
            Journal._apply(path, state, event)
            state.events += 1
        return state

    @staticmethod
    def _apply(path: str, state: JournalState, event: dict) -> None:
        etype = event.get("type")
        if etype not in EVENT_TYPES:
            raise JournalError(
                f"journal {path} has unknown event type {etype!r}"
            )
        if etype in ("drain", "complete", "metrics", "header"):
            return

        run_id = event.get("run_id")
        if etype == "add":
            if run_id in state.records:
                raise JournalError(
                    f"journal {path} adds run {run_id!r} twice"
                )
            state.records[run_id] = RunRecord(
                run_id=run_id,
                kind=event["kind"],
                params=event.get("params", {}),
                status=event.get("status", PENDING),
                attempts=int(event.get("attempts", 0)),
                result_path=event.get("result_path"),
                checkpoint_path=event.get("checkpoint_path"),
                cached=bool(event.get("cached", False)),
                last_error=event.get("last_error"),
                stuck=event.get("stuck", []),
                migrations=int(event.get("migrations", 0)),
                last_slot=event.get("last_slot"),
                last_pid=event.get("last_pid"),
            )
            return

        record = state.records.get(run_id)
        if record is None:
            raise JournalError(
                f"journal {path} references unknown run {run_id!r} "
                f"in a {etype!r} event (never added)"
            )

        if etype == "requeue":
            record.status = PENDING
            record.attempts = int(event.get("attempts", 0))
            record.last_pid = None
        elif etype == "launch":
            record.status = RUNNING
            record.attempts = int(event["attempt"])
            record.last_slot = event.get("slot")
            record.last_pid = event.get("pid")
            record.checkpoint_path = event.get("resume_from")
        elif etype == "exit":
            record.last_error = event.get("error")
            record.stuck = (event.get("error") or {}).get("stuck", [])
            record.last_pid = None
            if event.get("checkpoint_path"):
                record.checkpoint_path = event["checkpoint_path"]
        elif etype == "retry":
            record.status = PENDING
            if event.get("migrated"):
                record.migrations += 1
        elif etype == "preempted":
            record.status = PENDING
            record.last_pid = None
            if "attempt" in event:
                # Preemption refunds the attempt (the pool decrements);
                # replay must agree or a resumed run would over-count.
                record.attempts = int(event["attempt"]) - 1
            if event.get("checkpoint_path"):
                record.checkpoint_path = event["checkpoint_path"]
        elif etype == "done":
            record.status = DONE
            record.result_path = event.get("result_path")
            record.cached = bool(event.get("cached", False))
            record.last_error = None
            record.last_pid = None
        elif etype == "cancel":
            record.status = CANCELLED
            record.last_pid = None
        elif etype == "failed":
            record.status = FAILED
            record.last_pid = None
            if event.get("error"):
                record.last_error = event["error"]
