"""Client side of the measurement service's unix-socket protocol.

:class:`ServiceClient` speaks the JSON-lines wire protocol documented
in :mod:`repro.supervisor.service`: one connection per request/response
(the daemon is single-threaded; holding connections open buys nothing),
plus a dedicated long-lived connection for :meth:`ServiceClient.stream`.

:class:`RetryPolicy` is the deterministic client-side retry helper the
protocol is designed around: a submit whose ack was lost (daemon
SIGKILLed mid-reply) is indistinguishable from one that was never sent,
and admission is idempotent by spec digest — so the correct client
behavior on *any* connection error is to wait and resubmit.  The
backoff schedule reuses the fleet's own
:func:`~repro.supervisor.pool.backoff_delay` (exponential + seeded
jitter) and takes an injectable clock/sleep so tests drive it on a fake
clock with zero real waiting.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Callable, Iterator, Optional

from repro.supervisor.pool import backoff_delay
from repro.supervisor.queue import RunSpec


class ServiceError(RuntimeError):
    """The daemon replied ``ok: false`` (a protocol-level refusal, not a
    transport failure — retrying the identical request will not help)."""


#: Transport failures worth retrying: the daemon is not up yet, died, or
#: the socket is stale.  Everything else propagates.
RETRYABLE = (ConnectionError, FileNotFoundError, socket.timeout, TimeoutError)


class RetryPolicy:
    """Deterministic retry schedule for client operations.

    ``attempts`` bounds the tries; ``base_s`` seeds the exponential
    backoff; ``deadline_s`` (optional) caps total elapsed time on the
    injected clock regardless of attempts left.  The jitter is seeded per
    ``(jitter_seed, label, attempt)`` so a fleet of clients hammering a
    restarting daemon desynchronizes without losing reproducibility.
    """

    def __init__(
        self,
        attempts: int = 5,
        base_s: float = 0.2,
        jitter_seed: Optional[int] = 0,
        deadline_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.attempts = max(1, int(attempts))
        self.base_s = base_s
        self.jitter_seed = jitter_seed
        self.deadline_s = deadline_s
        self.clock = clock
        self.sleep = sleep

    def delays(self, label: str = "client") -> list[float]:
        """The full backoff schedule (between-attempt waits)."""
        return [
            backoff_delay(self.base_s, attempt, label, self.jitter_seed)
            for attempt in range(1, self.attempts)
        ]

    def call(self, fn: Callable[[], dict], label: str = "client") -> dict:
        """Run ``fn`` under this policy; retries only transport errors.

        Raises the final transport error when attempts (or the deadline)
        run out — never swallows it into a fake reply.
        """
        start = self.clock()
        last: Optional[BaseException] = None
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except RETRYABLE as exc:
                last = exc
                if attempt >= self.attempts:
                    break
                delay = backoff_delay(
                    self.base_s, attempt, label, self.jitter_seed
                )
                if (
                    self.deadline_s is not None
                    and self.clock() - start + delay > self.deadline_s
                ):
                    break
                self.sleep(delay)
        raise last  # type: ignore[misc]


class ServiceClient:
    """Talks to a :class:`~repro.supervisor.service.MeasurementService`."""

    def __init__(
        self,
        socket_path: str,
        timeout_s: float = 10.0,
        retry: Optional[RetryPolicy] = None,
    ):
        self.socket_path = socket_path
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self._next_id = 0

    # -- transport -----------------------------------------------------------

    def _connect(self) -> socket.socket:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(self.timeout_s)
        conn.connect(self.socket_path)
        return conn

    @staticmethod
    def _read_line(conn: socket.socket, buffer: bytearray) -> dict:
        while b"\n" not in buffer:
            chunk = conn.recv(1 << 16)
            if not chunk:
                raise ConnectionError("service closed the connection")
            buffer.extend(chunk)
        line, _, rest = bytes(buffer).partition(b"\n")
        buffer[:] = rest
        return json.loads(line)

    def _roundtrip(self, request: dict, label: str) -> dict:
        # Tag every request with a client-local correlation id; the
        # daemon echoes it (plus the op) on every direct reply, errors
        # included.  A retried attempt reuses the id — it is the same
        # logical request, just retransmitted.
        self._next_id += 1
        request = dict(request, id=self._next_id)

        def once() -> dict:
            conn = self._connect()
            try:
                conn.sendall((json.dumps(request) + "\n").encode())
                reply = self._read_line(conn, bytearray())
            finally:
                conn.close()
            reply_id = reply.get("id")
            if reply_id is not None and reply_id != request["id"]:
                raise ServiceError(
                    f"correlation mismatch: sent id {request['id']}, "
                    f"reply carries id {reply_id!r}"
                )
            if not reply.get("ok"):
                raise ServiceError(reply.get("error", "service refused"))
            return reply

        return self.retry.call(once, label=label)

    # -- operations ----------------------------------------------------------

    def ping(self) -> dict:
        return self._roundtrip({"op": "ping"}, "ping")

    def submit(self, specs: list[RunSpec]) -> list[dict]:
        """Admit a batch; returns per-spec disposition dicts.

        Safe to call again after *any* transport error: admission is
        idempotent, so the worst case is a DUPLICATE verdict."""
        reply = self._roundtrip(
            {"op": "submit", "specs": [s.to_json() for s in specs]}, "submit"
        )
        return reply["results"]

    def poll(self, run_ids: Optional[list[str]] = None) -> list[dict]:
        reply = self._roundtrip(
            {"op": "poll", "run_ids": run_ids or []}, "poll"
        )
        return reply["jobs"]

    def status(self) -> dict:
        return self._roundtrip({"op": "status"}, "status")["status"]

    def cancel(self, run_id: str) -> dict:
        return self._roundtrip({"op": "cancel", "run_id": run_id}, "cancel")

    def drain(self) -> dict:
        return self._roundtrip({"op": "drain"}, "drain")

    def shutdown(self) -> dict:
        return self._roundtrip({"op": "shutdown"}, "shutdown")

    def wait(
        self,
        run_ids: list[str],
        poll_every_s: float = 0.2,
        deadline_s: Optional[float] = None,
    ) -> list[dict]:
        """Poll until every run id reaches a settled state (done, failed,
        cancelled, unknown).  Returns the final job dicts."""
        settled = ("done", "failed", "cancelled", "unknown")
        clock = self.retry.clock
        start = clock()
        while True:
            jobs = self.poll(run_ids)
            if all(job["status"] in settled for job in jobs):
                return jobs
            if deadline_s is not None and clock() - start > deadline_s:
                raise TimeoutError(
                    f"runs not settled after {deadline_s}s: "
                    + ", ".join(
                        f"{j['run_id']}={j['status']}"
                        for j in jobs
                        if j["status"] not in settled
                    )
                )
            self.retry.sleep(poll_every_s)

    def stream(self, run_id: str) -> Iterator[dict]:
        """Yield the run's journal events (backlog, then live) until the
        daemon sends EOF — a dedicated connection, not retried (a broken
        stream surfaces as ConnectionError; callers re-stream for the
        full backlog)."""
        conn = self._connect()
        try:
            conn.settimeout(None)
            conn.sendall(
                (json.dumps({"op": "stream", "run_id": run_id}) + "\n").encode()
            )
            buffer = bytearray()
            while True:
                reply = self._read_line(conn, buffer)
                if not reply.get("ok"):
                    raise ServiceError(reply.get("error", "stream refused"))
                if reply.get("eof"):
                    return
                yield reply["event"]
        finally:
            conn.close()
