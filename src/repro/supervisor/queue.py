"""Durable admission: idempotent, bounded, batch-journaled.

Every job enters the service through :class:`AdmissionQueue.admit`,
which gives the measurement service its three admission guarantees:

* **idempotent by spec digest** — the canonical digest of ``(kind,
  params)`` (see :func:`repro.supervisor.cache.spec_digest`) indexes
  every known run.  Resubmitting a spec that is already done,
  in flight, or queued returns the *existing* job id with zero new
  work; resubmitting a failed or cancelled spec requeues it with a
  fresh attempt budget.  A client that never saw its submit ack (the
  daemon was SIGKILLed mid-reply) can therefore always just resubmit.
* **bounded with explicit backpressure** — ``max_pending`` caps the
  not-yet-running backlog; specs over the cap are *rejected with a
  reason*, never silently dropped and never queued into unbounded
  memory.  The caller (service protocol / CLI) relays the rejection to
  the submitter, who retries later (:class:`~repro.supervisor.client.
  RetryPolicy`).
* **amortized durability** — one admission batch appends all of its
  journal events through a single :meth:`~repro.supervisor.journal.
  Journal.append_many` (one fsync per *batch*, not per job), which is
  what makes 10^4-spec batched admission sustainable.  The fsync lands
  before the batch is enqueued or acknowledged, so an acked job is
  always recoverable by replay.

A cache hit at admission is journaled ``add`` + ``done`` in the same
batch and never reaches the worker pool — zero launches, exactly like
the PR 7 resubmission path, but now batched.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.supervisor.cache import ResultCache, spec_digest
from repro.supervisor.journal import Journal, add_event
from repro.supervisor.manifest import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RunRecord,
    atomic_write_json,
)
from repro.trace.tracer import MetricsRegistry

#: Admission dispositions (the ``disposition`` field of every reply).
ADMITTED = "admitted"        #: new job, queued for execution
CACHED = "cached"            #: new job, served from the result cache
DUPLICATE = "duplicate"      #: spec already known (done / running / queued)
REQUEUED = "requeued"        #: failed/cancelled spec resubmitted, fresh budget
REJECTED = "rejected"        #: backpressure or id conflict — NOT admitted


@dataclass
class RunSpec:
    """One run the caller wants executed.

    ``run_id`` may be empty: admission derives a stable id from the
    spec digest (``<kind>-<digest12>``), so anonymous submissions of
    the same spec always converge on the same job.
    """

    run_id: str
    kind: str
    params: dict = field(default_factory=dict)

    @classmethod
    def from_json(cls, data: dict) -> "RunSpec":
        return cls(
            run_id=data.get("run_id") or "",
            kind=data["kind"],
            params=data.get("params", {}),
        )

    def to_json(self) -> dict:
        return {"run_id": self.run_id, "kind": self.kind, "params": self.params}


@dataclass
class Admission:
    """The per-spec admission verdict returned to the submitter."""

    run_id: str
    disposition: str
    status: str
    reason: Optional[str] = None

    def to_json(self) -> dict:
        out = {
            "run_id": self.run_id,
            "disposition": self.disposition,
            "status": self.status,
        }
        if self.reason:
            out["reason"] = self.reason
        return out


class AdmissionQueue:
    """The service's admission control; see the module docstring.

    Owns the digest index over ``records`` (the shared materialized
    run-state dict) and the journal-write half of admission.  It does
    *not* own scheduling: admitted records are handed back for the pool
    to enqueue.
    """

    def __init__(
        self,
        out_dir: str,
        journal: Journal,
        records: dict[str, RunRecord],
        metrics: MetricsRegistry,
        log: Callable[[str], None],
        max_pending: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        backlog: Optional[Callable[[], int]] = None,
    ):
        self.out_dir = out_dir
        self.journal = journal
        self.records = records
        self.metrics = metrics
        self.log = log
        self.max_pending = max_pending
        self.cache = cache
        #: Live not-yet-running backlog (the pool's ready-queue depth);
        #: admission adds its own in-batch count on top.
        self.backlog = backlog or (lambda: 0)
        self._by_digest: dict[str, str] = {}
        for record in records.values():
            self._by_digest[spec_digest(record.kind, record.params)] = (
                record.run_id
            )

    # -- index maintenance ---------------------------------------------------

    def index(self, record: RunRecord) -> None:
        """Register an externally-recovered record (journal replay)."""
        self._by_digest[spec_digest(record.kind, record.params)] = record.run_id

    # -- admission -----------------------------------------------------------

    def admit(self, specs: list[RunSpec]) -> tuple[list[Admission], list[RunRecord]]:
        """Admit a batch; returns (verdicts, records to enqueue).

        All journal events for the batch are appended with one fsync
        *before* returning, so everything acked here is durable.  The
        returned enqueue list holds newly-admitted and requeued records
        the caller must hand to the pool (after this method returns —
        journal-before-act).
        """
        verdicts: list[Admission] = []
        to_enqueue: list[RunRecord] = []
        events: list[dict] = []
        headroom = None
        if self.max_pending is not None:
            headroom = max(0, self.max_pending - self.backlog())

        for spec in specs:
            digest = spec_digest(spec.kind, spec.params)
            run_id = spec.run_id or f"{spec.kind}-{digest[:12]}"

            existing = self.records.get(run_id)
            if existing is not None:
                if spec_digest(existing.kind, existing.params) != digest:
                    verdicts.append(
                        Admission(
                            run_id,
                            REJECTED,
                            existing.status,
                            reason=(
                                f"run id {run_id!r} already names a "
                                "different spec"
                            ),
                        )
                    )
                    self.metrics.counter("fleet.admission_rejected", key="conflict")
                    continue
            elif digest in self._by_digest:
                # Same spec under another id: idempotency wins, the
                # submitter gets the id that already owns the work.
                run_id = self._by_digest[digest]
                existing = self.records[run_id]

            if existing is not None:
                if existing.status in (FAILED, CANCELLED):
                    existing.status = PENDING
                    existing.attempts = 0
                    existing.last_error = None
                    events.append(
                        {"type": "requeue", "run_id": run_id, "attempts": 0}
                    )
                    to_enqueue.append(existing)
                    verdicts.append(Admission(run_id, REQUEUED, PENDING))
                    self.metrics.counter("fleet.admission_requeue")
                else:
                    # done / running / pending: nothing to do, job id
                    # answers polls. Zero launches, zero journal bytes.
                    verdicts.append(
                        Admission(run_id, DUPLICATE, existing.status)
                    )
                    self.metrics.counter("fleet.admission_dedup")
                continue

            if headroom is not None and headroom <= 0:
                verdicts.append(
                    Admission(
                        run_id,
                        REJECTED,
                        "rejected",
                        reason=(
                            f"queue full ({self.max_pending} pending); "
                            "retry after the backlog drains"
                        ),
                    )
                )
                self.metrics.counter("fleet.admission_rejected", key="full")
                continue

            record = RunRecord(run_id=run_id, kind=spec.kind, params=spec.params)
            self.records[run_id] = record
            self._by_digest[digest] = run_id
            events.append(add_event(record))

            hit = self.cache.get(spec.kind, spec.params) if self.cache else None
            if hit is not None:
                result_path = self._write_cached_result(record, hit)
                events.append(
                    {
                        "type": "done",
                        "run_id": run_id,
                        "attempt": 0,
                        "result_path": result_path,
                        "cached": True,
                    }
                )
                verdicts.append(Admission(run_id, CACHED, DONE))
                self.metrics.counter("fleet.cache_hit")
            else:
                if headroom is not None:
                    headroom -= 1
                to_enqueue.append(record)
                verdicts.append(Admission(run_id, ADMITTED, PENDING))
            self.metrics.counter("fleet.admission_total")

        # ONE fsync for the whole batch — the amortized-durability point.
        self.journal.append_many(events)
        self.metrics.counter("fleet.admission_batch")
        self.metrics.observe("fleet.admission_batch_size", value=float(len(specs)))
        return verdicts, to_enqueue

    def _write_cached_result(self, record: RunRecord, hit: dict) -> str:
        run_dir = os.path.join(self.out_dir, record.run_id)
        os.makedirs(run_dir, exist_ok=True)
        result_path = os.path.join(run_dir, "result.json")
        atomic_write_json(result_path, hit)
        record.status = DONE
        record.result_path = result_path
        record.cached = True
        record.last_error = None
        return result_path
