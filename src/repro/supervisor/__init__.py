"""Crash-isolated, resumable experiment supervision.

See :mod:`repro.supervisor.supervisor` for the orchestrator,
:mod:`repro.supervisor.worker` for the per-run subprocess entry, and
:mod:`repro.supervisor.manifest` for the durable sweep state.
"""

from repro.supervisor.manifest import (
    DONE,
    EXIT_PERMANENT,
    EXIT_TRANSIENT,
    FAILED,
    PENDING,
    RUNNING,
    Manifest,
    RunRecord,
)
from repro.supervisor.runs import RUN_KINDS, RunContext
from repro.supervisor.supervisor import RunSpec, Supervisor

__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "RUNNING",
    "Manifest",
    "RunRecord",
    "RUN_KINDS",
    "RunContext",
    "RunSpec",
    "Supervisor",
    "EXIT_PERMANENT",
    "EXIT_TRANSIENT",
]
