"""The fault-tolerant measurement service.

See :mod:`repro.supervisor.supervisor` for the service front door,
:mod:`repro.supervisor.pool` for the concurrent worker pool (liveness,
migration, drain), :mod:`repro.supervisor.journal` for the crash-safe
append-only journal, :mod:`repro.supervisor.cache` for the deterministic
result cache, :mod:`repro.supervisor.worker` for the per-run subprocess
entry, and :mod:`repro.supervisor.manifest` for the materialized sweep
view.
"""

from repro.supervisor.cache import ResultCache, code_version, spec_digest
from repro.supervisor.client import RetryPolicy, ServiceClient, ServiceError
from repro.supervisor.heartbeat import (
    DEAD,
    LIVE,
    SLOW,
    STUCK,
    heartbeat_path,
    read_heartbeat,
    write_heartbeat,
)
from repro.supervisor.journal import Journal, JournalError, JournalState
from repro.supervisor.manifest import (
    CANCELLED,
    DONE,
    EXIT_PERMANENT,
    EXIT_PREEMPTED,
    EXIT_TRANSIENT,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL,
    Manifest,
    RunRecord,
)
from repro.supervisor.pool import WorkerPool, backoff_delay, default_worker_count
from repro.supervisor.queue import (
    ADMITTED,
    CACHED,
    DUPLICATE,
    REJECTED,
    REQUEUED,
    AdmissionQueue,
    RunSpec,
)
from repro.supervisor.runs import RUN_KINDS, Preempted, RunContext
from repro.supervisor.service import (
    MeasurementService,
    ServiceCore,
    socket_path_for,
)
from repro.supervisor.supervisor import Supervisor

__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "RUNNING",
    "CANCELLED",
    "TERMINAL",
    "DEAD",
    "LIVE",
    "SLOW",
    "STUCK",
    "ADMITTED",
    "CACHED",
    "DUPLICATE",
    "REQUEUED",
    "REJECTED",
    "AdmissionQueue",
    "Manifest",
    "RunRecord",
    "RUN_KINDS",
    "RunContext",
    "RunSpec",
    "Supervisor",
    "ServiceCore",
    "MeasurementService",
    "ServiceClient",
    "ServiceError",
    "RetryPolicy",
    "WorkerPool",
    "Journal",
    "JournalError",
    "JournalState",
    "Preempted",
    "ResultCache",
    "backoff_delay",
    "code_version",
    "default_worker_count",
    "socket_path_for",
    "spec_digest",
    "heartbeat_path",
    "read_heartbeat",
    "write_heartbeat",
    "EXIT_PERMANENT",
    "EXIT_PREEMPTED",
    "EXIT_TRANSIENT",
]
