"""The sweep run-manifest: one JSON file that makes a sweep resumable.

The manifest is the supervisor's durable source of truth.  Every state
transition (attempt started, run finished, retry scheduled, failure
classified) is written through :meth:`Manifest.save` — an atomic
tmp-and-replace, so a SIGKILL at any moment leaves either the old or the
new manifest on disk, never a torn one.  ``tools/sweep.py --resume``
reloads it, skips runs already ``done``, and restarts the rest from
their latest recorded checkpoint.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Optional

MANIFEST_VERSION = 1

#: Run lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
#: Cancelled through the service API before completing; never launched
#: again (unlike FAILED, which --resume requeues with a fresh budget).
CANCELLED = "cancelled"

#: States a sweep will not execute (work on them is finished for good).
TERMINAL = (DONE, CANCELLED)

#: Worker exit codes (the supervisor/worker protocol; any other nonzero
#: exit or death-by-signal is a crash, classified transient).
EXIT_PERMANENT = 3
EXIT_TRANSIENT = 4
#: The worker checkpointed and exited on request (SIGTERM drain /
#: preemption): not a failure, the run goes back to pending with its
#: checkpoint and does not burn an attempt.
EXIT_PREEMPTED = 5


def atomic_write_json(path: str, payload: dict) -> None:
    """Write JSON durably: tmp file + fsync + rename into place."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".manifest-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class RunRecord:
    """Durable state of one run in the sweep."""

    run_id: str
    kind: str
    params: dict
    status: str = PENDING
    attempts: int = 0
    result_path: Optional[str] = None
    checkpoint_path: Optional[str] = None
    last_error: Optional[dict] = None
    #: Stuck-thread details from the last SimTimeout (cpu + core type).
    stuck: list = field(default_factory=list)
    #: True when the result came from the deterministic result cache.
    cached: bool = False
    #: Times this run was killed as stuck/dead and moved to another slot.
    migrations: int = 0
    #: Pool slot of the latest attempt (migrations avoid re-using it).
    last_slot: Optional[int] = None
    #: Worker pid of the latest launch, cleared when the attempt ends.
    #: After a journal replay, a RUNNING record's last_pid names the
    #: (possibly orphaned) worker process group a rebooting service
    #: must reap before relaunching.
    last_pid: Optional[int] = None

    def to_json(self) -> dict:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "params": self.params,
            "status": self.status,
            "attempts": self.attempts,
            "result_path": self.result_path,
            "checkpoint_path": self.checkpoint_path,
            "last_error": self.last_error,
            "stuck": self.stuck,
            "cached": self.cached,
            "migrations": self.migrations,
            "last_slot": self.last_slot,
            "last_pid": self.last_pid,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RunRecord":
        return cls(
            run_id=data["run_id"],
            kind=data["kind"],
            params=data.get("params", {}),
            status=data.get("status", PENDING),
            attempts=int(data.get("attempts", 0)),
            result_path=data.get("result_path"),
            checkpoint_path=data.get("checkpoint_path"),
            last_error=data.get("last_error"),
            stuck=data.get("stuck", []),
            cached=bool(data.get("cached", False)),
            migrations=int(data.get("migrations", 0)),
            last_slot=data.get("last_slot"),
            last_pid=data.get("last_pid"),
        )


class Manifest:
    """All runs of one sweep plus sweep-level metadata."""

    def __init__(self, path: str, meta: Optional[dict] = None):
        self.path = path
        self.meta = dict(meta or {})
        self.runs: dict[str, RunRecord] = {}

    # -- persistence ---------------------------------------------------------

    def save(self) -> None:
        atomic_write_json(
            self.path,
            {
                "version": MANIFEST_VERSION,
                "meta": self.meta,
                "runs": {rid: rec.to_json() for rid, rec in self.runs.items()},
            },
        )

    @classmethod
    def load(cls, path: str) -> "Manifest":
        try:
            with open(path) as fh:
                data = json.load(fh)
        except json.JSONDecodeError as exc:
            # Atomic replace means this should be impossible for a
            # manifest *this* code wrote; say so rather than crash with
            # a bare decode error (truncated copies, manual edits).
            raise ValueError(
                f"manifest {path} is corrupt (not valid JSON: {exc}); "
                "it was not written by this supervisor's atomic writer — "
                "restore it or start the sweep fresh"
            ) from exc
        if not isinstance(data, dict):
            raise ValueError(f"manifest {path} is corrupt (not a JSON object)")
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"manifest {path} has version {version}, "
                f"this supervisor speaks version {MANIFEST_VERSION}"
            )
        manifest = cls(path, meta=data.get("meta", {}))
        for rid, rec in data.get("runs", {}).items():
            manifest.runs[rid] = RunRecord.from_json(rec)
        return manifest

    # -- run bookkeeping -----------------------------------------------------

    def add_run(self, record: RunRecord) -> None:
        if record.run_id in self.runs:
            raise ValueError(f"duplicate run id {record.run_id!r}")
        self.runs[record.run_id] = record

    def pending_runs(self) -> list[RunRecord]:
        """Runs a (re)started sweep still has to execute.

        A run found in state ``running`` was in flight when the previous
        supervisor died — it is resumed, not skipped: its checkpoint (if
        any) is recorded and its result was never written.  Cancelled
        runs are terminal: never re-executed.
        """
        return [
            rec for rec in self.runs.values() if rec.status not in TERMINAL
        ]

    def summary(self) -> dict:
        counts: dict[str, int] = {}
        for rec in self.runs.values():
            counts[rec.status] = counts.get(rec.status, 0) + 1
        return counts
