"""The long-running measurement daemon and its shared service core.

Two layers:

:class:`ServiceCore`
    The socket-free heart of the measurement service: journal +
    :class:`~repro.supervisor.queue.AdmissionQueue` + step-driven
    :class:`~repro.supervisor.pool.WorkerPool` + result cache +
    metrics.  *Both* entry points are thin clients of this core — the
    one-shot ``Supervisor.run()`` opens it, admits one batch and steps
    until idle; the daemon keeps it open and interleaves admission,
    stepping and queries indefinitely.

:class:`MeasurementService`
    The daemon: a single-threaded ``selectors`` loop serving a JSON-
    lines protocol over a local unix socket.  Ops: ``submit`` (single
    or batched, idempotent), ``poll``, ``stream`` (follow a job's
    journal events live), ``cancel``, ``drain``, ``status``,
    ``shutdown``, ``ping``.

Crash safety is admission-deep: every transition is journaled before
the core acts on it, admission batches are fsync'd before they are
acknowledged or enqueued, and boot replays the journal to rebuild the
queue and in-flight set — then **reaps orphaned worker process
groups** (journal ``launch`` events carry pids; a RUNNING record after
replay names a worker a dead daemon left behind) before requeuing
their runs.  SIGKILLing the daemon at any instant therefore loses
nothing and double-runs nothing: acked jobs replay, unacked jobs are
resubmitted idempotently.

Boot also compacts an oversized journal (``compact_threshold_bytes``)
so a long-lived daemon's recovery time is proportional to the number
of runs, not the lifetime event count.

Wire protocol (one JSON object per line, UTF-8):

========  ======================================  ===========================
op        request fields                          reply
========  ======================================  ===========================
ping      —                                       ``{ok, pid, out_dir}``
submit    ``specs=[{run_id?,kind,params}]``       ``{ok, results=[{run_id,
                                                  disposition, status,
                                                  reason?}]}``
poll      ``run_ids=[...]`` (empty → all)         ``{ok, jobs=[...]}``
stream    ``run_id``                              event lines ``{ok,event}``,
                                                  then ``{ok, eof, status}``
cancel    ``run_id``                              ``{ok, disposition}``
drain     —                                       ``{ok}`` (drain proceeds)
status    —                                       ``{ok, status={...}}``
shutdown  —                                       ``{ok}`` then drain + exit
========  ======================================  ===========================

Errors are ``{ok: false, error: "..."}``; a rejected spec inside an
otherwise-successful submit is *not* an error — it is a per-spec
disposition, so one bad spec cannot mask the admission of the rest.
"""

from __future__ import annotations

import json
import os
import selectors
import signal
import socket
import sys
import time
from typing import Callable, Optional

from repro.supervisor.cache import ResultCache
from repro.supervisor.journal import Journal, add_event
from repro.supervisor.manifest import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL,
    Manifest,
    RunRecord,
    atomic_write_json,
)
from repro.supervisor.pool import WorkerPool, default_worker_count
from repro.supervisor.queue import AdmissionQueue, RunSpec
from repro.trace.tracer import MetricsRegistry

#: Test-only chaos hook: when this env var is set, the core SIGKILLs
#: itself right after an admission batch is journaled but before it is
#: enqueued or acknowledged — the worst-timed mid-admission crash.
KILL_AFTER_ADMIT_ENV = "REPRO_SERVICE_KILL_AFTER_ADMIT"

SOCKET_FILENAME = "service.sock"


def socket_path_for(out_dir: str) -> str:
    return os.path.join(out_dir, SOCKET_FILENAME)


class ServiceCore:
    """Socket-free service core; see the module docstring."""

    def __init__(
        self,
        out_dir: str,
        *,
        max_attempts: int = 3,
        backoff_s: float = 0.5,
        wall_timeout_s: Optional[float] = 300.0,
        checkpoint_every_s: float = 0.1,
        python: Optional[str] = None,
        log: Callable[[str], None] = print,
        workers: Optional[int] = None,
        stuck_after_s: float = 30.0,
        poll_interval_s: float = 0.02,
        jitter_seed: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cache_max_entries: Optional[int] = None,
        cache_max_bytes: Optional[int] = None,
        max_pending: Optional[int] = None,
        compact_threshold_bytes: Optional[int] = 8 * 1024 * 1024,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.out_dir = out_dir
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.wall_timeout_s = wall_timeout_s
        self.checkpoint_every_s = checkpoint_every_s
        self.python = python or sys.executable
        self.log = log
        self.workers = workers if workers is not None else default_worker_count()
        self.stuck_after_s = stuck_after_s
        self.poll_interval_s = poll_interval_s
        self.jitter_seed = jitter_seed
        self.cache_dir = cache_dir
        self.cache_max_entries = cache_max_entries
        self.cache_max_bytes = cache_max_bytes
        self.max_pending = max_pending
        self.compact_threshold_bytes = compact_threshold_bytes
        self.clock = clock
        self.sleep = sleep
        self.manifest_path = os.path.join(out_dir, "manifest.json")
        self.journal_path = os.path.join(out_dir, "journal.jsonl")
        self.metrics_path = os.path.join(out_dir, "metrics.json")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.journal = Journal(self.journal_path)
        self.records: dict[str, RunRecord] = {}
        self.pool: Optional[WorkerPool] = None
        self.admission: Optional[AdmissionQueue] = None
        self.cache: Optional[ResultCache] = None
        self._opened = False
        self._closed = False
        #: Orphan worker pids reaped during the last :meth:`open`.
        self.orphans_reaped = 0

    # -- lifecycle -----------------------------------------------------------

    def _meta(self) -> dict:
        return {
            "out_dir": self.out_dir,
            "max_attempts": self.max_attempts,
            "checkpoint_every_s": self.checkpoint_every_s,
            "workers": self.workers,
        }

    def open(self, resume: bool = False, requeue_failed: Optional[bool] = None) -> None:
        """Recover durable state and stand the pool up.

        ``resume=True`` replays an existing journal (compacting first
        past the size threshold), reaps orphaned worker groups, and
        re-enqueues every non-terminal run.  ``requeue_failed``
        (default: same as ``resume``) additionally gives failed runs a
        fresh attempt budget, matching ``sweep.py --resume``.
        """
        if self._opened:
            raise RuntimeError("ServiceCore.open() called twice")
        self._opened = True
        if requeue_failed is None:
            requeue_failed = resume
        os.makedirs(self.out_dir, exist_ok=True)

        if (
            resume
            and self.compact_threshold_bytes is not None
            and os.path.exists(self.journal_path)
            and os.path.getsize(self.journal_path) > self.compact_threshold_bytes
        ):
            before = os.path.getsize(self.journal_path)
            state = Journal.compact(self.journal_path, meta=self._meta())
            self.metrics.counter("fleet.journal_compact")
            self.log(
                f"[service] compacted journal {before} -> "
                f"{state.valid_bytes} bytes ({len(state.records)} run(s))"
            )

        self.records = self._recover(resume)

        self.cache = (
            ResultCache(
                self.cache_dir,
                max_entries=self.cache_max_entries,
                max_bytes=self.cache_max_bytes,
                on_evict=lambda n: self.metrics.counter(
                    "fleet.cache_evict", inc=float(n)
                ),
            )
            if self.cache_dir
            else None
        )
        self.pool = WorkerPool(
            self.out_dir,
            self.journal,
            workers=self.workers,
            python=self.python,
            max_attempts=self.max_attempts,
            backoff_s=self.backoff_s,
            jitter_seed=self.jitter_seed,
            wall_timeout_s=self.wall_timeout_s,
            stuck_after_s=self.stuck_after_s,
            checkpoint_every_s=self.checkpoint_every_s,
            poll_interval_s=self.poll_interval_s,
            clock=self.clock,
            sleep=self.sleep,
            log=self.log,
            metrics=self.metrics,
            on_done=self._store_in_cache,
        )
        self.admission = AdmissionQueue(
            self.out_dir,
            self.journal,
            self.records,
            self.metrics,
            self.log,
            max_pending=self.max_pending,
            cache=self.cache,
            backlog=lambda: self.pool.queue_depth,
        )

        self.orphans_reaped = self._reap_orphans()

        done = sum(1 for r in self.records.values() if r.status == DONE)
        if resume and done:
            self.log(f"[supervisor] resume: {done} run(s) already done, skipped")
        if requeue_failed:
            requeues = []
            for record in self.records.values():
                if record.status == FAILED:
                    record.status = PENDING
                    record.attempts = 0
                    record.last_error = None
                    requeues.append(
                        {"type": "requeue", "run_id": record.run_id, "attempts": 0}
                    )
            self.journal.append_many(requeues)

        recovered = [
            rec for rec in self.records.values() if rec.status not in TERMINAL
        ]
        self._dispatch(recovered)

        # Materialize the view once recovery settled.
        self.manifest = Manifest(self.manifest_path, meta=self._meta())
        self.manifest.runs = self.records
        self.manifest.save()

    def _recover(self, resume: bool) -> dict[str, RunRecord]:
        """Journal replay / legacy-manifest import / fresh start.
        Leaves the journal open for appending."""
        if (
            resume
            and os.path.exists(self.journal_path)
            and os.path.getsize(self.journal_path) == 0
        ):
            # Killed between creating the journal and fsyncing its
            # header: nothing was ever durably recorded, so a fresh
            # start is the correct (and only possible) resume.
            self.log(
                f"[supervisor] journal {self.journal_path} is empty "
                "(crash before the header was written); starting fresh"
            )
            self.journal.open_fresh(meta=self._meta())
            return {}
        if resume and os.path.exists(self.journal_path):
            state = Journal.replay(self.journal_path)
            if state.torn_tail:
                self.log(
                    "[supervisor] journal ended in a torn line "
                    "(crash debris); dropped it and resuming"
                )
            self.journal.open_append(
                truncate_to=state.valid_bytes if state.torn_tail else None
            )
            return state.records
        if resume and os.path.exists(self.manifest_path):
            # A pre-journal sweep directory: import the manifest into a
            # fresh journal and carry on under the new regime.
            manifest = Manifest.load(self.manifest_path)
            records = manifest.runs
            self.journal.open_fresh(meta=self._meta())
            self.journal.append_many(
                add_event(record, full=True) for record in records.values()
            )
            self.log(
                f"[supervisor] imported legacy manifest "
                f"({len(records)} run(s)) into {self.journal_path}"
            )
            return records
        if resume:
            self.log(
                f"[supervisor] no journal at {self.journal_path}; "
                "starting fresh"
            )
        self.journal.open_fresh(meta=self._meta())
        return {}

    def _reap_orphans(self) -> int:
        """SIGKILL worker process groups a dead daemon left running.

        After replay, a RUNNING record's ``last_pid`` names a worker
        that may still be alive (workers lead their own sessions, so
        they survive their supervisor).  Until it is dead it holds the
        run directory — heartbeats, checkpoints — so it must be gone
        before the run is relaunched."""
        reaped = 0
        for record in self.records.values():
            if record.status != RUNNING or not record.last_pid:
                continue
            for kill in (os.killpg, os.kill):
                try:
                    kill(record.last_pid, signal.SIGKILL)
                    reaped += 1
                    break
                except (ProcessLookupError, PermissionError, OSError):
                    continue
        if reaped:
            self.metrics.counter("fleet.orphan_reaped", inc=float(reaped))
            self.log(f"[service] reaped {reaped} orphaned worker group(s)")
        return reaped

    def _dispatch(self, records: list[RunRecord]) -> None:
        """Recovered (non-terminal) records re-enter execution: cache
        hits are served, spent attempt budgets fail, the rest queue."""
        launchable = []
        for record in records:
            if self.cache is not None and self._serve_from_cache(record):
                continue
            if record.attempts >= self.max_attempts:
                # Recovered mid-flight on its last attempt: the budget
                # is spent (matching the pre-pool retry accounting).
                record.status = FAILED
                self.journal.append(
                    {
                        "type": "failed",
                        "run_id": record.run_id,
                        "attempt": record.attempts,
                        "error": record.last_error,
                    }
                )
                self.log(
                    f"[supervisor] {record.run_id}: attempt budget already "
                    f"spent ({record.attempts}/{self.max_attempts})"
                )
                continue
            record.status = PENDING
            launchable.append(record)
        self.pool.enqueue(launchable)

    # -- cache ---------------------------------------------------------------

    def _serve_from_cache(self, record: RunRecord) -> bool:
        hit = self.cache.get(record.kind, record.params)
        if hit is None:
            return False
        run_dir = os.path.join(self.out_dir, record.run_id)
        os.makedirs(run_dir, exist_ok=True)
        result_path = os.path.join(run_dir, "result.json")
        atomic_write_json(result_path, hit)
        record.status = DONE
        record.result_path = result_path
        record.cached = True
        record.last_error = None
        self.journal.append(
            {
                "type": "done",
                "run_id": record.run_id,
                "attempt": record.attempts,
                "result_path": result_path,
                "cached": True,
            }
        )
        self.metrics.counter("fleet.cache_hit")
        self.log(f"[supervisor] {record.run_id}: served from result cache")
        return True

    def _store_in_cache(self, record: RunRecord) -> None:
        if self.cache is None:
            return
        try:
            with open(record.result_path) as fh:  # type: ignore[arg-type]
                result = json.load(fh)
        except (OSError, TypeError, ValueError):
            return
        self.cache.put(record.kind, record.params, result)

    # -- the job API ---------------------------------------------------------

    def submit(self, specs: list[RunSpec]) -> list[dict]:
        """Admit a batch; returns one disposition dict per spec.

        Durability before acknowledgement: the admission batch is
        journaled (one fsync) before records reach the pool and before
        this method returns."""
        verdicts, to_enqueue = self.admission.admit(specs)
        if os.environ.get(KILL_AFTER_ADMIT_ENV):
            # Chaos hook (tests only): die at the worst instant — batch
            # durable, nothing enqueued, nothing acknowledged.
            os.kill(os.getpid(), signal.SIGKILL)
        self.pool.enqueue(to_enqueue)
        return [v.to_json() for v in verdicts]

    def job_status(self, run_ids: Optional[list[str]] = None) -> list[dict]:
        ids = run_ids if run_ids else sorted(self.records)
        out = []
        for rid in ids:
            record = self.records.get(rid)
            if record is None:
                out.append({"run_id": rid, "status": "unknown"})
                continue
            out.append(
                {
                    "run_id": rid,
                    "status": record.status,
                    "attempts": record.attempts,
                    "cached": record.cached,
                    "migrations": record.migrations,
                    "result_path": record.result_path,
                    "error": record.last_error,
                }
            )
        return out

    def cancel(self, run_id: str) -> dict:
        record = self.records.get(run_id)
        if record is None:
            return {"run_id": run_id, "disposition": "unknown"}
        if record.status in (DONE, CANCELLED, FAILED):
            return {
                "run_id": run_id,
                "disposition": "no-op",
                "status": record.status,
            }
        # Journal-before-act: the cancel is durable before the worker
        # dies, so a crash mid-cancel can only over-deliver the kill.
        self.journal.append({"type": "cancel", "run_id": run_id})
        where = self.pool.cancel(run_id)
        record.status = CANCELLED
        record.last_pid = None
        return {
            "run_id": run_id,
            "disposition": f"cancelled-{where or 'pending'}",
            "status": CANCELLED,
        }

    def request_drain(self) -> None:
        if self.pool is not None:
            self.pool.request_drain()

    @property
    def drained(self) -> bool:
        return self.pool is not None and self.pool.draining

    @property
    def busy(self) -> bool:
        return self.pool is not None and self.pool.busy

    def step(self) -> bool:
        """One pool scheduling round; returns whether work remains."""
        return self.pool.step()

    def run_until_idle(self) -> None:
        while self.step():
            self.sleep(self.poll_interval_s)

    def status(self) -> dict:
        counts: dict[str, int] = {}
        for record in self.records.values():
            counts[record.status] = counts.get(record.status, 0) + 1
        return {
            "out_dir": self.out_dir,
            "runs": len(self.records),
            "counts": counts,
            "queue_depth": self.pool.queue_depth if self.pool else 0,
            "in_flight": self.pool.in_flight if self.pool else {},
            "draining": self.drained,
            "workers": self.workers,
            "max_pending": self.max_pending,
        }

    # -- shutdown ------------------------------------------------------------

    def close(self) -> Manifest:
        """Seal the journal (metrics + drain/complete), materialize the
        manifest view and metrics snapshot.  Idempotent."""
        if self._closed:
            return self.manifest
        self._closed = True
        snapshot = self.metrics.as_dict()
        summary = self.manifest.summary()
        self.journal.append({"type": "metrics", "metrics": snapshot})
        self.journal.append(
            {"type": "drain" if self.drained else "complete", "summary": summary}
        )
        self.journal.close()
        self.manifest.save()
        atomic_write_json(self.metrics_path, snapshot)
        return self.manifest


class _Client:
    """One accepted daemon connection (request/response or stream)."""

    def __init__(self, conn: socket.socket):
        self.conn = conn
        self.buffer = b""
        #: Run id this connection streams, or None for request/response.
        self.stream_run_id: Optional[str] = None


class MeasurementService:
    """The unix-socket daemon around a :class:`ServiceCore`."""

    def __init__(
        self,
        core: ServiceCore,
        socket_path: Optional[str] = None,
        log: Callable[[str], None] = print,
        idle_interval_s: float = 0.2,
    ):
        self.core = core
        self.socket_path = socket_path or socket_path_for(core.out_dir)
        self.log = log
        self.idle_interval_s = idle_interval_s
        self._shutdown = False
        self._listener: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._streams: list[tuple[_Client, str]] = []

    # -- socket plumbing -----------------------------------------------------

    def _bind(self) -> None:
        path = self.socket_path
        if os.path.exists(path):
            # A stale socket from a SIGKILLed daemon refuses connects;
            # a live daemon accepts them.  Never bulldoze a live one.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.settimeout(0.5)
                probe.connect(path)
            except OSError:
                os.unlink(path)
            else:
                raise RuntimeError(
                    f"another service is already listening on {path}"
                )
            finally:
                probe.close()
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)

    def _on_journal_event(self, event: dict) -> None:
        """Journal observer: fan events out to matching streams."""
        rid = event.get("run_id")
        if rid is None:
            return
        for client, run_id in list(self._streams):
            if run_id != rid:
                continue
            if not self._send(client, {"ok": True, "event": event}):
                continue
            if event.get("type") in ("done", "failed", "cancel"):
                self._end_stream(client, event["type"])

    def _send(self, client: _Client, payload: dict) -> bool:
        """Best-effort send; drops the client on failure.  Returns
        False when the client is gone."""
        try:
            client.conn.sendall((json.dumps(payload) + "\n").encode())
            return True
        except OSError:
            self._drop(client)
            return False

    def _drop(self, client: _Client) -> None:
        self._streams = [(c, r) for c, r in self._streams if c is not client]
        try:
            self._selector.unregister(client.conn)
        except (KeyError, ValueError):
            pass
        try:
            client.conn.close()
        except OSError:
            pass

    def _end_stream(self, client: _Client, final: str) -> None:
        self._send(client, {"ok": True, "eof": True, "final": final})
        self._drop(client)

    # -- request dispatch ----------------------------------------------------

    def _reply(self, client: _Client, request: dict, payload: dict) -> bool:
        """Direct reply to one request, echoing its correlation fields.

        Every reply — error replies *especially* — carries the request's
        ``op`` and ``id`` back, so a client can match the refusal to
        what it sent instead of guessing from connection framing."""
        out: dict = {"op": request.get("op"), "id": request.get("id")}
        out.update(payload)
        return self._send(client, out)

    def _handle_request(self, client: _Client, request: dict) -> None:
        op = request.get("op")
        core = self.core
        if op == "ping":
            self._reply(
                client,
                request,
                {"ok": True, "pid": os.getpid(), "out_dir": core.out_dir},
            )
        elif op == "submit":
            if core.drained:
                self._reply(
                    client,
                    request,
                    {"ok": False, "error": "draining: not admitting new runs"},
                )
                return
            try:
                specs = [
                    RunSpec.from_json(s) for s in request.get("specs", [])
                ]
            except (KeyError, TypeError, AttributeError) as exc:
                self._reply(
                    client,
                    request,
                    {"ok": False, "error": f"malformed spec: {exc}"},
                )
                return
            results = core.submit(specs)
            self._reply(client, request, {"ok": True, "results": results})
        elif op == "poll":
            self._reply(
                client,
                request,
                {"ok": True, "jobs": core.job_status(request.get("run_ids"))},
            )
        elif op == "status":
            self._reply(client, request, {"ok": True, "status": core.status()})
        elif op == "cancel":
            rid = request.get("run_id")
            if not rid:
                self._reply(
                    client,
                    request,
                    {"ok": False, "error": "cancel needs run_id"},
                )
                return
            self._reply(client, request, {"ok": True, **core.cancel(rid)})
        elif op == "stream":
            rid = request.get("run_id")
            record = core.records.get(rid)
            if record is None:
                self._reply(
                    client,
                    request,
                    {"ok": False, "error": f"unknown run {rid!r}"},
                )
                return
            # Backlog first (tolerant tail read), then live events.
            for event in self._journal_backlog(rid):
                if not self._send(client, {"ok": True, "event": event}):
                    return
            if record.status in TERMINAL or record.status == FAILED:
                self._end_stream(client, record.status)
            else:
                client.stream_run_id = rid
                self._streams.append((client, rid))
        elif op == "drain":
            core.request_drain()
            self._reply(client, request, {"ok": True, "draining": True})
        elif op == "shutdown":
            self._shutdown = True
            core.request_drain()
            self._reply(client, request, {"ok": True, "shutting_down": True})
        else:
            self._reply(
                client, request, {"ok": False, "error": f"unknown op {op!r}"}
            )

    def _journal_backlog(self, run_id: str) -> list[dict]:
        events = []
        try:
            with open(self.core.journal_path, "rb") as fh:
                for line in fh.read().split(b"\n"):
                    if not line.strip():
                        continue
                    try:
                        event = json.loads(line)
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        break  # torn tail: we are mid-append
                    if event.get("run_id") == run_id:
                        events.append(event)
        except OSError:
            pass
        return events

    def _service_client(self, client: _Client) -> None:
        try:
            chunk = client.conn.recv(1 << 20)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(client)
            return
        if not chunk:
            self._drop(client)
            return
        client.buffer += chunk
        while b"\n" in client.buffer:
            line, client.buffer = client.buffer.split(b"\n", 1)
            if not line.strip():
                continue
            try:
                request = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                # The request never parsed, so there is no id to echo —
                # _reply sends explicit null correlation fields, which
                # clients treat as "uncorrelatable" rather than a
                # mismatch.
                self._reply(
                    client, {}, {"ok": False, "error": "malformed JSON line"}
                )
                continue
            self._handle_request(client, request)

    # -- the daemon loop -----------------------------------------------------

    def serve(self, handle_signals: bool = True) -> None:
        """Run until ``shutdown`` (op or SIGTERM) drains the fleet.

        The core must already be :meth:`ServiceCore.open`\\ ed.  One
        thread, one loop: socket readiness and pool stepping are
        interleaved, so a submit can land while workers run and a
        stream sees events the instant they are journaled."""
        self._bind()
        self.core.journal.observers.append(self._on_journal_event)
        if handle_signals:
            signal.signal(signal.SIGTERM, self._on_sigterm)
            signal.signal(signal.SIGINT, self._on_sigterm)
        self.log(
            f"[service] listening on {self.socket_path} "
            f"(pid {os.getpid()}, {self.core.workers} worker slot(s))"
        )
        try:
            while not (self._shutdown and not self.core.busy):
                timeout = (
                    self.core.poll_interval_s
                    if self.core.busy
                    else self.idle_interval_s
                )
                for key, _ in self._selector.select(timeout):
                    if key.data is None:
                        self._accept()
                    else:
                        self._service_client(key.data)
                self.core.step()
        finally:
            self._teardown()

    def _accept(self) -> None:
        try:
            conn, _ = self._listener.accept()
        except OSError:
            return
        conn.setblocking(True)
        conn.settimeout(10.0)
        client = _Client(conn)
        self._selector.register(conn, selectors.EVENT_READ, client)

    def _on_sigterm(self, signum, frame) -> None:
        # Runs between two arbitrary bytecodes of the serve loop: only
        # flag-sets and one os.write are allowed here.  request_drain is
        # (deliberately) a flag-set all the way down; the human-readable
        # drain announcement comes from the next pool.step().
        self._shutdown = True
        self.core.request_drain()
        os.write(2, b"[service] SIGTERM: draining and shutting down\n")

    def _teardown(self) -> None:
        for key in list(self._selector.get_map().values()):
            if isinstance(key.data, _Client):
                self._drop(key.data)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._selector.close()
        try:
            self.core.journal.observers.remove(self._on_journal_event)
        except ValueError:
            pass
        self.log("[service] stopped")
