"""Deterministic result cache: identical specs are free.

Every run kind is deterministic in simulation time — the same ``(kind,
params)`` against the same code produces a bit-identical ``result.json``
(that determinism is what the resume-equivalence CI gate proves).  So a
result can be reused whenever both inputs match:

* the **spec digest** — SHA-256 over the canonical JSON of ``{"kind",
  "params"}`` (``sort_keys``, no whitespace), so dict ordering and
  formatting cannot split the key space;
* the **code version** — SHA-256 over the sources of the ``repro``
  package (sorted relative path + content), so any code change — even a
  model constant — invalidates the whole cache rather than serving
  results the current code would not reproduce.

A hit copies the cached result into the run directory without launching
a worker; the journal records it as ``done`` with ``cached: true`` and
the pool's launch counter stays untouched — which is how the acceptance
test proves "zero subprocess launches" on resubmission.

The cache is **bounded**: ``max_entries`` / ``max_bytes`` cap growth
with LRU eviction (recency = entry file mtime, refreshed on every hit,
so the policy survives across processes sharing the directory).  Each
eviction fires ``on_evict`` — the service counts them as
``fleet.cache_evict``.  Unbounded (both limits ``None``) remains the
default for one-shot sweeps.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable, Optional

from repro.supervisor.manifest import atomic_write_json

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the ``repro`` package sources (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                h.update(rel.encode())
                h.update(b"\0")
                with open(os.path.join(dirpath, name), "rb") as fh:
                    h.update(fh.read())
                h.update(b"\0")
        _CODE_VERSION = h.hexdigest()
    return _CODE_VERSION


def spec_digest(kind: str, params: dict) -> str:
    """Canonical digest of one run spec (independent of run_id/attempt)."""
    blob = json.dumps(
        {"kind": kind, "params": params}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Content-addressed store of finished results under ``root``.

    Entries are keyed ``sha256(spec_digest + code_version)`` and written
    atomically, so concurrent supervisors sharing a cache directory can
    only ever race to write identical bytes.
    """

    def __init__(
        self,
        root: str,
        version: Optional[str] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        on_evict: Optional[Callable[[int], None]] = None,
    ):
        self.root = root
        self.version = version or code_version()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.on_evict = on_evict
        #: Entries this instance has evicted (monotone; also reported
        #: through ``on_evict`` for the metrics registry).
        self.evictions = 0

    def key(self, kind: str, params: dict) -> str:
        h = hashlib.sha256()
        h.update(spec_digest(kind, params).encode())
        h.update(b":")
        h.update(self.version.encode())
        return h.hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, kind: str, params: dict) -> Optional[dict]:
        """The cached result payload, or None on miss/corruption."""
        path = self._path(self.key(kind, params))
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError, ValueError):
            return None
        if entry.get("code_version") != self.version:
            return None
        try:
            # LRU recency: a hit makes the entry the newest.
            os.utime(path)
        except OSError:
            pass
        return entry.get("result")

    def put(self, kind: str, params: dict, result: dict) -> str:
        """Store one result; returns the entry path.

        When bounded, eviction runs after the write, so the entry just
        stored is the newest and survives (unless it alone exceeds
        ``max_bytes``, in which case the cache honestly holds nothing).
        """
        path = self._path(self.key(kind, params))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_json(
            path,
            {
                "kind": kind,
                "params": params,
                "spec_digest": spec_digest(kind, params),
                "code_version": self.version,
                "result": result,
            },
        )
        if self.max_entries is not None or self.max_bytes is not None:
            self._evict()
        return path

    # -- bounding ------------------------------------------------------------

    def _entries(self) -> list[tuple[float, int, str]]:
        """All entry files as ``(mtime, size, path)``, oldest first."""
        entries = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return []
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            try:
                names = os.listdir(shard_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                entries.append((st.st_mtime, st.st_size, path))
        entries.sort()
        return entries

    def _evict(self) -> int:
        """Drop oldest entries until within both limits; returns count."""
        entries = self._entries()
        total_bytes = sum(size for _, size, _ in entries)
        evicted = 0
        while entries and (
            (self.max_entries is not None and len(entries) > self.max_entries)
            or (self.max_bytes is not None and total_bytes > self.max_bytes)
        ):
            _, size, path = entries.pop(0)
            try:
                os.unlink(path)
            except OSError:
                continue
            total_bytes -= size
            evicted += 1
        if evicted:
            self.evictions += evicted
            if self.on_evict is not None:
                self.on_evict(evicted)
        return evicted
