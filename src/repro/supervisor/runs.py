"""The run contract: what a supervisor worker actually executes.

A *run kind* is a function ``kind(params, ctx) -> dict``:

* ``params`` — the JSON-safe parameter dict from the sweep manifest;
* ``ctx`` — a :class:`RunContext` giving it attempt number, a restored
  checkpoint payload (when resuming), and periodic checkpointing;
* the return value is the run's JSON-safe result, written to
  ``result.json`` by the worker.

Kinds must be *deterministic in simulation time*: given the same params
and the same (or no) checkpoint, they produce bit-identical results.
That is what makes kill-and-resume equivalence testable — the resumed
sweep's results must match an uninterrupted sweep byte for byte.

The checkpoint payload convention is a plain dict (``{"system": ...,
"handle": ...}``) saved with :func:`repro.checkpoint.save_object`; each
kind owns its payload shape.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from typing import Callable, Optional

from repro.checkpoint.snapshot import save_object
from repro.hpl.dat import HplConfig
from repro.hpl.runner import finish_hpl, start_hpl
from repro.supervisor.heartbeat import write_heartbeat
from repro.system import System


class Preempted(Exception):
    """Raised by a run kind after checkpointing in response to a drain
    request; the worker turns it into ``EXIT_PREEMPTED``."""


class RunContext:
    """Worker-side services handed to a run kind."""

    def __init__(
        self,
        run_id: str,
        attempt: int,
        checkpoint_path: str,
        checkpoint_every_s: float = 0.1,
        restored_payload: Optional[dict] = None,
        heartbeat_path: Optional[str] = None,
        preempt: Optional[Callable[[], bool]] = None,
    ):
        self.run_id = run_id
        self.attempt = attempt
        #: Where checkpoints go (one rolling file, atomically replaced).
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every_s = checkpoint_every_s
        #: The payload loaded from the latest checkpoint when resuming,
        #: else None (fresh start).
        self.restored_payload = restored_payload
        #: Where heartbeats go (None disables them, e.g. in-process tests).
        self.heartbeat_path = heartbeat_path
        self._preempt = preempt or (lambda: False)
        self._last_checkpoint_sim_s: Optional[float] = None

    def heartbeat(self, system: System) -> None:
        """Tell the pool this attempt is alive and how far the *simulated*
        clock has come — the signal that separates stuck from slow."""
        if self.heartbeat_path is not None:
            write_heartbeat(
                self.heartbeat_path,
                os.getpid(),
                self.attempt,
                system.machine.now_s,
            )

    def should_preempt(self) -> bool:
        """True once the pool asked this worker to checkpoint and stop."""
        return self._preempt()

    def checkpoint_and_preempt(self, system: System, payload: dict) -> None:
        self.checkpoint(system, payload)
        raise Preempted(f"{self.run_id}: preempted at sim {system.machine.now_s}s")

    def maybe_checkpoint(self, system: System, payload: dict) -> bool:
        """Checkpoint if at least ``checkpoint_every_s`` of *simulated*
        time passed since the last one.  Cadence in sim time keeps the
        checkpoint schedule deterministic across hosts."""
        now = system.machine.now_s
        if (
            self._last_checkpoint_sim_s is not None
            and now - self._last_checkpoint_sim_s < self.checkpoint_every_s
        ):
            return False
        self.checkpoint(system, payload)
        return True

    def checkpoint(self, system: System, payload: dict) -> None:
        save_object(
            payload,
            self.checkpoint_path,
            meta={
                "kind": "supervisor-run",
                "run_id": self.run_id,
                "attempt": self.attempt,
                "sim_time_s": system.machine.now_s,
            },
        )
        # SimTimeout diagnostics report the newest checkpoint.
        system.machine.last_checkpoint_path = self.checkpoint_path
        self._last_checkpoint_sim_s = system.machine.now_s


def hpl_run(params: dict, ctx: RunContext) -> dict:
    """One HPL sweep point, advanced in slices with checkpoints between.

    Params: ``machine`` (preset name), ``n``, ``nb``, ``variant``,
    optional ``dt_s``, ``seed``, ``slice_s``, ``max_sim_s``, and the
    fault-injection knobs of :func:`_maybe_crash` (used by the
    ``flaky-hpl`` kind).
    """
    slice_s = float(params.get("slice_s", 0.05))
    max_sim_s = float(params.get("max_sim_s", 36_000.0))

    if ctx.restored_payload is not None:
        system = ctx.restored_payload["system"]
        handle = ctx.restored_payload["handle"]
    else:
        system = System(
            params.get("machine", "raptor-lake-i7-13700"),
            dt_s=float(params.get("dt_s", 0.01)),
            seed=int(params.get("seed", 0)),
            fastpath=bool(params.get("fastpath", True)),
        )
        handle = start_hpl(
            system,
            HplConfig(n=int(params["n"]), nb=int(params.get("nb", 128))),
            variant=params.get("variant", "openblas"),
        )

    machine = system.machine
    payload = {"system": system, "handle": handle}
    done = lambda: handle.done
    while not handle.done:
        if machine.now_s - handle.t0 > max_sim_s:
            # One strict tick raises the enriched SimTimeout (stuck
            # threads + core types + last checkpoint path).
            machine.run_until(done, max_s=machine.clock.dt_s, strict=True)
            break
        machine.run_until(done, max_s=slice_s)
        if not handle.done:
            ctx.heartbeat(system)
            if ctx.should_preempt():
                ctx.checkpoint_and_preempt(system, payload)
            ctx.maybe_checkpoint(system, payload)
            _maybe_stall(params, ctx, system, machine.now_s - handle.t0)
            _maybe_crash(params, ctx, machine.now_s - handle.t0)

    result = finish_hpl(system, handle)
    return {
        "kind": "hpl",
        "machine": system.spec.name,
        "variant": result.variant,
        "n": result.config.n,
        "nb": result.config.nb,
        "cpus": result.cpus,
        "gflops": result.gflops,
        "wall_s": result.wall_s,
        "energy_j": result.energy_j,
        "avg_power_w": result.avg_power_w,
        "spin_time_s": result.spin_time_s,
        "instructions": result.instructions,
        "llc_references": result.llc_references,
        "llc_misses": result.llc_misses,
        "fp_ops": result.fp_ops,
        "runtime_s": result.runtime_s,
        "state_digest": system.state_digest(),
    }


def _maybe_crash(params: dict, ctx: RunContext, elapsed_sim_s: float) -> None:
    """Deterministic self-crash for supervisor tests and CI.

    ``crash_at_s`` names a *simulated* time; ``crash_on_attempts`` the
    attempt numbers that die there.  The process SIGKILLs itself — the
    hardest crash there is: no atexit, no flushing, exactly what the
    supervisor must survive.  Keyed to sim time so every host crashes at
    the same point of the computation.
    """
    crash_at = params.get("crash_at_s")
    if crash_at is None:
        return
    attempts = params.get("crash_on_attempts", [1])
    if ctx.attempt in attempts and elapsed_sim_s >= float(crash_at):
        os.kill(os.getpid(), signal.SIGKILL)


def _maybe_stall(
    params: dict, ctx: RunContext, system: System, elapsed_sim_s: float
) -> None:
    """Deterministic wedge for liveness/migration tests and CI.

    ``stall_at_s`` names a *simulated* time; ``stall_on_attempts`` the
    attempt numbers that wedge there.  The worker stays alive and keeps
    heartbeating, but simulated time stops advancing — exactly the
    signature the pool's stuck detector must catch and migrate.  Keyed
    to sim time (and placed after the checkpoint cadence check) so the
    migrated retry resumes from a checkpoint at or before the stall
    point and converges on the bit-identical calm-run result.
    """
    stall_at = params.get("stall_at_s")
    if stall_at is None:
        return
    attempts = params.get("stall_on_attempts", [1])
    if ctx.attempt in attempts and elapsed_sim_s >= float(stall_at):
        while True:  # alive, heartbeating, zero sim progress — stuck
            ctx.heartbeat(system)
            time.sleep(0.02)


def flaky_hpl_run(params: dict, ctx: RunContext) -> dict:
    """An HPL run that SIGKILLs itself mid-run on its first attempt.

    Exists so tests and CI can exercise crash-isolation and resume
    deterministically; identical to ``hpl`` except the params are
    expected to carry ``crash_at_s``.
    """
    return hpl_run(params, ctx)


def failing_run(params: dict, ctx: RunContext) -> dict:
    """A run that always raises — exercises permanent-failure handling."""
    raise ValueError(params.get("message", "this run always fails"))


def spawner_run(params: dict, ctx: RunContext) -> dict:
    """A run that spawns a helper child, then wedges without heartbeats.

    The zombie-window regression fixture: the pool must kill the whole
    worker *process group* on a liveness/timeout kill, so the helper
    (its pid published in ``child.json``) dies too — no orphan survives
    the timeout.
    """
    run_dir = os.path.dirname(ctx.checkpoint_path)
    # The helper must share the worker's process group — escaping it is
    # exactly the orphan scenario the group-kill test closes over.
    child = subprocess.Popen(  # repro-lint: disable=FORK-SAFETY
        [sys.executable, "-c", "import time; time.sleep(600)"]
    )
    with open(os.path.join(run_dir, "child.json"), "w") as fh:
        json.dump({"pid": child.pid}, fh)
    while True:  # never heartbeats: dead air until the pool kills us
        time.sleep(float(params.get("spin_sleep_s", 0.02)))


RUN_KINDS: dict[str, Callable[[dict, RunContext], dict]] = {
    "hpl": hpl_run,
    "flaky-hpl": flaky_hpl_run,
    "failing": failing_run,
    "spawner": spawner_run,
}
