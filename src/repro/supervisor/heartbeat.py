"""Worker heartbeats: how the pool tells *stuck* from *slow* from *dead*.

Each worker attempt writes ``heartbeat.json`` into its run directory on
the same cadence as its checkpoint checks (once per simulation slice):
its pid, attempt number, and — critically — the current **simulated**
time.  The pool's liveness monitor folds that into three verdicts:

* **dead** — the process is gone (``poll()`` returned); no heartbeat
  needed to see it.
* **stuck** — the process is alive but simulated time has not advanced
  for ``stuck_after_s`` of wall time: a wedged run (infinite spin, lost
  wakeup) that will never finish.  Killed and *migrated* to another
  worker slot from its last checkpoint.
* **slow** — simulated time is advancing but the attempt blew past its
  wall-clock deadline: the run is healthy but too big for the budget.
  Killed and retried (the retry resumes from the latest checkpoint, so
  the paid-for progress is kept).

Heartbeats are advisory (atomic replace, no fsync): losing one delays a
verdict by a poll interval, it never corrupts state.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

#: Liveness verdicts recorded in the journal and metrics.
LIVE = "live"
STUCK = "stuck"
SLOW = "slow"
DEAD = "dead"

HEARTBEAT_FILENAME = "heartbeat.json"


def heartbeat_path(run_dir: str) -> str:
    return os.path.join(run_dir, HEARTBEAT_FILENAME)


def write_heartbeat(
    path: str, pid: int, attempt: int, sim_time_s: Optional[float]
) -> None:
    """Atomically replace the heartbeat file (no fsync — advisory)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".hb-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(
                {"pid": pid, "attempt": attempt, "sim_time_s": sim_time_s}, fh
            )
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_heartbeat(path: str) -> Optional[dict]:
    """Read a heartbeat; missing or torn files read as ``None``."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError, ValueError):
        return None
