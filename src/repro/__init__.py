"""Reproduction of "Performance Measurement on Heterogeneous Processors
with PAPI" (Cunningham & Weaver, SC 2024 workshops).

Because the paper's evaluation is hardware-gated (real PMUs, RAPL MSRs,
thermal sensors, Intel MKL binaries), everything it runs on is rebuilt as
a simulated substrate (see DESIGN.md for the substitution map):

* :class:`repro.System` -- a booted simulated machine: heterogeneous CPU
  model, kernel scheduler, perf_event subsystem, /sys and /proc trees;
* :class:`repro.Papi` -- the PAPI library with the paper's hybrid
  (multi-PMU EventSet) support, plus the legacy PAPI 7.1 behaviour for
  comparison;
* :mod:`repro.hpl` -- the HPL benchmark model with the homogeneity-naive
  (OpenBLAS) and hybrid-aware (Intel MKL) work-distribution variants;
* :mod:`repro.experiments` -- one module per paper table/figure.

Quick start::

    from repro import System, Papi

    system = System("raptor-lake-i7-13700")
    papi = Papi(system, mode="hybrid")
    print(papi.get_hardware_info())
"""

from repro.system import System
from repro.papi import Papi, PapiError, detect_core_types
from repro.hw.machines import MACHINE_PRESETS

__version__ = "1.0.0"

__all__ = [
    "System",
    "Papi",
    "PapiError",
    "detect_core_types",
    "MACHINE_PRESETS",
    "__version__",
]
