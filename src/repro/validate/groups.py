"""LIKWID-style derived-metric groups.

Raw counters are rarely what a performance engineer wants; LIKWID's
insight (Treibig et al.) is to curate *metric groups* — named formulas
over a declared set of required inputs.  Each group here:

* declares what it needs (counters by architectural name, run context
  like runtime or energy, trace-derived series);
* reports ``missing`` when a required input is absent — never a silent
  zero;
* degrades *explicitly* when an input counter is unvalidated, validated
  worse than ``proportional`` (see :mod:`repro.validate.harness`), or
  was multiplexed — the value is still computed, but carries its caveats.

Inputs arrive in a :class:`MeasurementBundle`, which callers fill from
whatever they have (PAPI values, thread runtimes, sampler traces); the
scorecard's :meth:`~repro.validate.harness.Scorecard.accuracy_by_event`
output plugs directly into ``accuracy``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

QUALITY_OK = "ok"
QUALITY_DEGRADED = "degraded"
QUALITY_MISSING = "missing"

#: Accuracy classes a counter may carry without degrading the group.
_TRUSTED_ACCURACY = ("exact", "proportional")


@dataclass
class MeasurementBundle:
    """Everything a metric group may consume, in SI-ish units.

    ``counters`` is keyed by architectural event name (lowercase, e.g.
    ``"instructions"``); ``accuracy`` and ``mux_scale`` are keyed the
    same way.  A missing ``accuracy`` entry means *unvalidated* — groups
    degrade on it, which is the point: trust must be earned per event.
    """

    counters: dict[str, float] = field(default_factory=dict)
    runtime_s: Optional[float] = None
    energy_j: Optional[float] = None
    #: counter name -> accuracy class from a validation scorecard.
    accuracy: dict[str, str] = field(default_factory=dict)
    #: counter name -> running/enabled fraction (1.0 = dedicated).
    mux_scale: dict[str, float] = field(default_factory=dict)
    #: cluster label -> sampled frequencies (MHz), for residency.
    freq_mhz: dict[str, list[float]] = field(default_factory=dict)
    #: PMU name -> instructions counted there (hybrid attribution).
    instructions_by_pmu: dict[str, float] = field(default_factory=dict)
    #: PAPI op name -> syscalls it issued (overhead accounting).
    syscalls: dict[str, float] = field(default_factory=dict)
    #: perf event groups backing the EventSet.
    groups: Optional[int] = None


@dataclass
class MetricValue:
    """One evaluated group: value + explicit quality."""

    group: str
    unit: str
    value: Optional[float]
    per_key: dict[str, float]
    quality: str
    reasons: list[str]

    @property
    def ok(self) -> bool:
        return self.quality == QUALITY_OK


@dataclass(frozen=True)
class MetricGroup:
    """A named derived metric with declared requirements.

    ``requires`` entries are either ``"counter:<name>"`` (a key of
    ``bundle.counters``) or a bundle attribute name whose value must be
    non-empty/non-None.
    """

    name: str
    description: str
    unit: str
    requires: tuple[str, ...]
    _compute: Callable[[MeasurementBundle], tuple[Optional[float], dict[str, float], list[str]]]

    def evaluate(self, bundle: MeasurementBundle) -> MetricValue:
        missing = [req for req in self.requires if not _available(bundle, req)]
        if missing:
            return MetricValue(
                group=self.name,
                unit=self.unit,
                value=None,
                per_key={},
                quality=QUALITY_MISSING,
                reasons=[f"missing input {req}" for req in missing],
            )
        reasons = []
        for req in self.requires:
            if not req.startswith("counter:"):
                continue
            name = req.split(":", 1)[1]
            acc = bundle.accuracy.get(name)
            if acc is None:
                reasons.append(f"counter {name!r} is unvalidated")
            elif acc not in _TRUSTED_ACCURACY:
                reasons.append(f"counter {name!r} validated {acc!r}")
            scale = bundle.mux_scale.get(name, 1.0)
            if scale < 0.999:
                reasons.append(
                    f"counter {name!r} was multiplexed "
                    f"(running/enabled = {scale:.3f})"
                )
        value, per_key, compute_reasons = self._compute(bundle)
        reasons += compute_reasons
        if value is not None and not math.isfinite(value):
            value = None
            reasons.append("non-finite result")
        quality = QUALITY_OK if not reasons else QUALITY_DEGRADED
        if value is None and not per_key:
            quality = QUALITY_MISSING
        return MetricValue(
            group=self.name,
            unit=self.unit,
            value=value,
            per_key=per_key,
            quality=quality,
            reasons=reasons,
        )


def _available(bundle: MeasurementBundle, req: str) -> bool:
    if req.startswith("counter:"):
        name = req.split(":", 1)[1]
        value = bundle.counters.get(name)
        return value is not None and math.isfinite(value)
    value = getattr(bundle, req)
    if value is None:
        return False
    if isinstance(value, (dict, list)):
        return len(value) > 0
    return True


# -- group formulas --------------------------------------------------------


def _ipc(b: MeasurementBundle):
    cycles = b.counters["cycles"]
    if cycles <= 0:
        return None, {}, ["cycles == 0"]
    return b.counters["instructions"] / cycles, {}, []


def _gflops(b: MeasurementBundle):
    if b.runtime_s <= 0:
        return None, {}, ["runtime_s == 0"]
    return b.counters["fp_ops"] / b.runtime_s / 1e9, {}, []


def _energy_per_flop(b: MeasurementBundle):
    flops = b.counters["fp_ops"]
    if flops <= 0:
        return None, {}, ["fp_ops == 0"]
    return b.energy_j / flops * 1e9, {}, []


def _freq_residency(b: MeasurementBundle):
    """Mean frequency and top-bin residency per cluster, from samples."""
    per_key: dict[str, float] = {}
    for label in sorted(b.freq_mhz):
        samples = b.freq_mhz[label]
        if not samples:
            continue
        peak = max(samples)
        per_key[f"{label}.mean_mhz"] = sum(samples) / len(samples)
        per_key[f"{label}.peak_residency"] = (
            sum(1 for s in samples if s >= 0.98 * peak) / len(samples)
        )
    if not per_key:
        return None, {}, ["no frequency samples"]
    return None, per_key, []


def _mux_quality(b: MeasurementBundle):
    """Worst running/enabled fraction across multiplexed counters."""
    per_key = {name: b.mux_scale[name] for name in sorted(b.mux_scale)}
    worst = min(per_key.values())
    reasons = []
    if worst < 0.999:
        reasons.append(f"worst counter ran {worst:.1%} of enabled time")
    return worst, per_key, reasons


def _instr_share(b: MeasurementBundle):
    """Total instructions and each PMU's share of them (hybrid split)."""
    total = sum(b.instructions_by_pmu.values())
    if any(not math.isfinite(v) for v in b.instructions_by_pmu.values()):
        return None, {}, ["non-finite per-PMU instruction count"]
    per_key = {
        pmu: (b.instructions_by_pmu[pmu] / total if total > 0 else 0.0)
        for pmu in sorted(b.instructions_by_pmu)
    }
    return total, per_key, []


def _papi_op_cost(b: MeasurementBundle):
    """Syscalls per perf event group for each PAPI operation."""
    if b.groups <= 0:
        return None, {}, ["no event groups"]
    per_key = {
        f"{op}.syscalls_per_group": b.syscalls[op] / b.groups
        for op in sorted(b.syscalls)
    }
    return float(sum(b.syscalls.values())), per_key, []


GROUPS: dict[str, MetricGroup] = {
    g.name: g
    for g in (
        MetricGroup(
            name="ipc",
            description="Retired instructions per core cycle",
            unit="instr/cycle",
            requires=("counter:instructions", "counter:cycles"),
            _compute=_ipc,
        ),
        MetricGroup(
            name="gflops",
            description="Floating-point throughput",
            unit="Gflop/s",
            requires=("counter:fp_ops", "runtime_s"),
            _compute=_gflops,
        ),
        MetricGroup(
            name="energy_per_flop",
            description="Package energy per floating-point operation",
            unit="nJ/flop",
            requires=("counter:fp_ops", "energy_j"),
            _compute=_energy_per_flop,
        ),
        MetricGroup(
            name="freq_residency",
            description="Mean frequency and peak-bin residency per cluster",
            unit="MHz",
            requires=("freq_mhz",),
            _compute=_freq_residency,
        ),
        MetricGroup(
            name="mux_quality",
            description="Multiplexing quality (running/enabled fractions)",
            unit="fraction",
            requires=("mux_scale",),
            _compute=_mux_quality,
        ),
        MetricGroup(
            name="instr_share",
            description="Instruction attribution across hybrid PMUs",
            unit="instructions",
            requires=("instructions_by_pmu",),
            _compute=_instr_share,
        ),
        MetricGroup(
            name="papi_op_cost",
            description="PAPI call overhead per perf event group",
            unit="syscalls",
            requires=("syscalls", "groups"),
            _compute=_papi_op_cost,
        ),
    )
}


def evaluate(name: str, bundle: MeasurementBundle) -> MetricValue:
    """Evaluate one group by name (KeyError for unknown groups)."""
    return GROUPS[name].evaluate(bundle)


def evaluate_all(bundle: MeasurementBundle) -> dict[str, MetricValue]:
    """Evaluate every registered group against ``bundle``."""
    return {name: group.evaluate(bundle) for name, group in GROUPS.items()}
