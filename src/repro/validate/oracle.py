"""The ground-truth oracle: analytic event expectations per run.

The engine accounts architectural events by integrating
:func:`repro.sim.workload.arch_event_rates` over retired instructions;
the oracle integrates the *same* function analytically.  Measured and
expected counts are therefore two integrals of one rate function — any
divergence is a property of the measurement stack (counter width,
multiplexing, PMU routing), never of the workload model.

Two event families are time-based rather than instruction-based and are
patched from per-run ground truth:

* ``REF_CYCLES`` ticks at the TSC rate while the thread runs, so the
  expectation is ``tsc_ghz * 1e9 * runtime_s`` with the runtime taken
  from the thread's own per-PMU accounting;
* RAPL energy is the machine's unwrapped ``energy_j`` ledger, converted
  to the kernel's 2^-32 J perf units by the harness.
"""

from __future__ import annotations

import numpy as np

from repro.hw.coretype import ArchEvent, CoreType
from repro.sim.workload import ComputePhase, PhaseRates

#: Rates chosen so *every* architectural event slot is exercised:
#: flops, both cache levels, branches and (via ipc < core ipc) stall
#: cycles are all nonzero on every core type.
_FLOPS_PER_INSTR = 2.0
_LLC_REFS_PER_INSTR = 0.01
_LLC_MISS_RATE = 0.2
_L2_REFS_PER_INSTR = 0.04
_L2_MISS_RATE = 0.25
_BRANCHES_PER_INSTR = 0.1
_BRANCH_MISS_RATE = 0.02
#: Effective IPC as a fraction of the core's base IPC; < 1 so the
#: STALLED_CYCLES expectation is strictly positive by construction.
_IPC_FRACTION = 0.8


def validation_rates(ct: CoreType) -> PhaseRates:
    """The validation workload's execution rates on ``ct``."""
    return PhaseRates(
        ipc=_IPC_FRACTION * ct.ipc,
        flops_per_instr=_FLOPS_PER_INSTR,
        llc_refs_per_instr=_LLC_REFS_PER_INSTR,
        llc_miss_rate=_LLC_MISS_RATE,
        l2_refs_per_instr=_L2_REFS_PER_INSTR,
        l2_miss_rate=_L2_MISS_RATE,
        branches_per_instr=_BRANCHES_PER_INSTR,
        branch_miss_rate=_BRANCH_MISS_RATE,
    )


def validation_phase(instructions: float) -> ComputePhase:
    """One validation-workload phase retiring ``instructions``."""
    return ComputePhase(instructions, validation_rates, label="validate")


def expected_vector(
    ct: CoreType,
    instructions: float,
    runtime_s: float,
    tsc_ghz: float,
) -> np.ndarray:
    """Expected architectural event counts for one validation thread.

    ``runtime_s`` is the thread's accumulated runtime on ``ct``'s PMU
    (``thread.runtime_s[ct.pmu_name]``) — ground truth for the
    time-based ``REF_CYCLES`` slot.
    """
    phase = validation_phase(instructions)
    vec = phase.expected_counts(ct)
    vec[ArchEvent.REF_CYCLES] = tsc_ghz * 1e9 * runtime_s
    return vec
