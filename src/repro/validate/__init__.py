"""Ground-truth event validation and derived-metric groups.

The simulator *knows* its ground truth — every instruction, flop, joule
and migration is analytic — so unlike real PAPI we can score every
native event against its expected count (Röhl et al.'s validation
methodology) and publish the result as a machine-readable scorecard.
On top of the validated counters, :mod:`repro.validate.groups` provides
LIKWID-style curated metric groups (IPC, Gflop/s, energy/flop, ...)
that declare their required inputs and degrade explicitly when an
event is unvalidated or multiplexed.
"""

from repro.validate.groups import (
    GROUPS,
    MeasurementBundle,
    MetricGroup,
    MetricValue,
    evaluate,
    evaluate_all,
)
from repro.validate.harness import (
    Accuracy,
    EventScore,
    Scorecard,
    classify,
    run_validation,
    selftest_detected,
)
from repro.validate.oracle import (
    expected_vector,
    validation_phase,
    validation_rates,
)

__all__ = [
    "Accuracy",
    "EventScore",
    "GROUPS",
    "MeasurementBundle",
    "MetricGroup",
    "MetricValue",
    "Scorecard",
    "classify",
    "evaluate",
    "evaluate_all",
    "expected_vector",
    "run_validation",
    "selftest_detected",
    "validation_phase",
    "validation_rates",
]
