"""The validation harness: measured vs expected, per PMU, per event.

For one machine preset the harness runs a workload x event matrix
through the full System/PAPI stack:

* one pinned validation thread per core type, each with a per-thread
  EventSet holding a batch of that PMU's native events (batched to the
  core's general-purpose counter budget so nothing multiplexes);
* uncore LLC and RAPL energy events piggybacking on the first thread's
  EventSet (they cost no core counters);
* one deliberately *multiplexed* EventSet run — every event of the
  biggest core's PMU at once, long enough for many rotation periods —
  scored separately, since scaled estimates can only be proportional.

Each event's measured counts at two run scales are compared against the
:mod:`repro.validate.oracle` expectations and classified Röhl-style:

``exact``
    every sample within counter quantization (2 counts) or 1e-9 relative;
``proportional``
    a stable scale factor within 5 % of 1 (spread <= 2 %);
``noisy``
    all samples within 25 % but unstable;
``broken``
    anything else, including NaN reads.

Setting ``REPRO_VALIDATE_SELFTEST=1`` seeds a deliberate kernel decode
bug (branch-miss configs count CYCLES instead) that a correct harness
*must* report as ``broken`` — a mutation test of the validator itself.
"""

from __future__ import annotations

import enum
import json
import math
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.hw.coretype import ArchEvent, CoreType
from repro.hw.eventcodes import CODES_BY_PFM_PMU
from repro.kernel.perf.pmu import RAPL_PERF_UNIT_J
from repro.kernel.perf.subsystem import MUX_ROTATION_PERIOD_S
from repro.papi.library import Papi
from repro.pfmlib.library import PfmError, Pfmlib
from repro.sim.task import Program, SimThread
from repro.system import System
from repro.validate.oracle import expected_vector, validation_phase

#: Env flag arming the deliberate counter bug (validator mutation test).
SELFTEST_ENV = "REPRO_VALIDATE_SELFTEST"

#: Counter-quantization tolerance: read_value() truncates to an integer
#: and clamps at 2^48-1, so an exact counter may differ by up to ~2.
EXACT_ATOL = 2.0
EXACT_RTOL = 1e-9
PROPORTIONAL_TOL = 0.05
PROPORTIONAL_SPREAD = 0.02
NOISY_TOL = 0.25

#: Default run scales (instructions per validation thread).  Two scales
#: let proportionality (a *stable* scale factor) be distinguished from
#: noise.
DEFAULT_SCALES = (1.5e6, 4.5e6)

#: Rotation periods the multiplexed run must span (per-thread runtime).
_MUX_ROTATIONS = 60

#: RAPL perf config -> machine ground-truth energy domain.
_RAPL_DOMAINS = {0x02: "package", 0x01: "cores", 0x03: "dram"}


class Accuracy(str, enum.Enum):
    """Röhl-style per-event accuracy classes."""

    EXACT = "exact"
    PROPORTIONAL = "proportional"
    NOISY = "noisy"
    BROKEN = "broken"


def classify(expected: list[float], measured: list[float]) -> Accuracy:
    """Assign an accuracy class to paired expected/measured samples."""
    pairs = list(zip(expected, measured))
    if not pairs:
        raise ValueError("classify needs at least one sample")
    if any(not math.isfinite(m) for _, m in pairs):
        return Accuracy.BROKEN

    def exact(e: float, m: float) -> bool:
        if abs(m - e) <= EXACT_ATOL:
            return True
        return e != 0.0 and abs(m - e) / abs(e) <= EXACT_RTOL

    if all(exact(e, m) for e, m in pairs):
        return Accuracy.EXACT
    ratios = []
    for e, m in pairs:
        if abs(e) <= EXACT_ATOL:
            if abs(m) > EXACT_ATOL:
                # Expected ~nothing, measured something: miscounting.
                return Accuracy.BROKEN
            continue
        ratios.append(m / e)
    if not ratios:
        return Accuracy.EXACT
    if all(abs(r - 1.0) <= PROPORTIONAL_TOL for r in ratios) and (
        max(ratios) - min(ratios) <= PROPORTIONAL_SPREAD
    ):
        return Accuracy.PROPORTIONAL
    if all(abs(r - 1.0) <= NOISY_TOL for r in ratios):
        return Accuracy.NOISY
    return Accuracy.BROKEN


@dataclass
class EventScore:
    """One scorecard row: a native event on one PMU of one machine."""

    machine: str
    pmu: str                      # Linux PMU name (cpu_core, power, ...)
    event: str                    # pfm fullname (adl_glc::INST_RETIRED:ANY)
    arch_event: Optional[str]     # ArchEvent name, None for RAPL
    core_type: Optional[str]      # owning core type, None for package PMUs
    multiplexed: bool
    expected: list[float]
    measured: list[float]
    accuracy: Accuracy

    @property
    def key(self) -> tuple:
        """Engine-independent identity (the cross-engine parity key)."""
        return (self.machine, self.pmu, self.event, self.multiplexed)

    def to_dict(self) -> dict:
        return {
            "machine": self.machine,
            "pmu": self.pmu,
            "event": self.event,
            "arch_event": self.arch_event,
            "core_type": self.core_type,
            "multiplexed": self.multiplexed,
            "expected": [None if not math.isfinite(v) else v for v in self.expected],
            "measured": [None if not math.isfinite(v) else v for v in self.measured],
            "accuracy": self.accuracy.value,
        }


@dataclass
class Scorecard:
    """The machine-readable validation result for one machine."""

    machine: str
    engine: str
    seed: int
    scales: list[float]
    rows: list[EventScore] = field(default_factory=list)

    def class_map(self) -> dict[tuple, str]:
        """Event identity -> accuracy class, engine excluded from keys."""
        return {row.key: row.accuracy.value for row in self.rows}

    def accuracy_by_event(self) -> dict[str, str]:
        """pfm event fullname -> accuracy (dedicated-counter rows only)."""
        return {
            row.event: row.accuracy.value
            for row in self.rows
            if not row.multiplexed
        }

    def counts(self) -> dict[str, int]:
        out = {acc.value: 0 for acc in Accuracy}
        for row in self.rows:
            out[row.accuracy.value] += 1
        return out

    def broken(self) -> list[EventScore]:
        return [r for r in self.rows if r.accuracy is Accuracy.BROKEN]

    def to_dict(self) -> dict:
        return {
            "machine": self.machine,
            "engine": self.engine,
            "seed": self.seed,
            "scales": self.scales,
            "counts": self.counts(),
            "rows": [row.to_dict() for row in self.rows],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def selftest_detected(card: Scorecard) -> bool:
    """Whether the seeded decode bug shows up: every branch-miss row
    (the corrupted events) classified ``broken``."""
    rows = [
        r
        for r in card.rows
        if r.arch_event == ArchEvent.BRANCH_MISSES.name and not r.multiplexed
    ]
    return bool(rows) and all(r.accuracy is Accuracy.BROKEN for r in rows)


# -- event matrix ----------------------------------------------------------


@dataclass
class _PmuPlan:
    """The events to validate on one core type's PMU, pre-batched."""

    core_type: CoreType
    linux_pmu: str
    events: list[tuple[str, int]]            # (pfm fullname, config)
    batches: list[list[tuple[str, int]]]


def _core_plans(system: System, pfm: Pfmlib) -> list[_PmuPlan]:
    """Enumerate every kernel-countable native event per core PMU.

    Event identity (config -> architectural meaning) comes from the
    vendor tables (:data:`CODES_BY_PFM_PMU`), *not* from the kernel's
    decode — the kernel is the unit under test (and the selftest's
    deliberate bug corrupts exactly that decode).
    """
    plans = []
    for ct in system.topology.core_types:
        try:
            table = pfm.pmu_by_name(ct.pfm_pmu)
        except PfmError:
            continue
        decode = system.perf.registry.by_name[ct.pmu_name].decode
        seen: set[int] = set()
        events: list[tuple[str, int]] = []
        for event in table.events.values():
            for umask in event.umasks:
                config = event.code(umask)
                # Umask aliases (INST_RETIRED:ANY / :ANY_P) encode the
                # same counter; validate each config once.
                if config in seen or config not in decode:
                    continue
                seen.add(config)
                events.append((f"{table.name}::{event.name}:{umask}", config))
        cap = max(1, ct.n_gp_counters)
        batches = [events[i : i + cap] for i in range(0, len(events), cap)]
        plans.append(_PmuPlan(ct, ct.pmu_name, events, batches))
    return plans


def _package_events(pfm: Pfmlib, table_name: str) -> list[tuple[str, int]]:
    try:
        table = pfm.pmu_by_name(table_name)
    except PfmError:
        return []
    return [
        (f"{table.name}::{event.name}:{umask}", event.code(umask))
        for event in table.events.values()
        for umask in event.umasks
    ]


def _corrupt_branch_miss_decode(system: System) -> None:
    """The seeded counter bug: every core PMU's branch-miss config
    decodes to CYCLES, so the hardware counts the wrong event."""
    for ct in system.topology.core_types:
        decode = system.perf.registry.by_name[ct.pmu_name].decode
        bad = [c for c, arch in decode.items() if arch is ArchEvent.BRANCH_MISSES]
        for config in bad:
            decode[config] = ArchEvent.CYCLES


def _selftest_armed() -> bool:
    return os.environ.get(SELFTEST_ENV, "") not in ("", "0")


# -- single runs -----------------------------------------------------------

FaultPlanFn = Callable[[System], object]


def _build_system(
    machine: str,
    engine: Optional[str],
    seed: int,
    dt_s: float,
    fault_plan_fn: Optional[FaultPlanFn],
) -> tuple[System, Papi]:
    system = System(machine, dt_s=dt_s, seed=seed, engine=engine)
    if _selftest_armed():
        _corrupt_branch_miss_decode(system)
    if fault_plan_fn is not None:
        # The injector registers itself on the machine's tick hooks.
        system.inject_faults(fault_plan_fn(system))
    papi = Papi(system, mode="hybrid")
    return system, papi


def _rapl_snapshot(system: System) -> dict[str, float]:
    rapl = system.machine.rapl
    return {
        "package": rapl.package.energy_j,
        "cores": rapl.cores.energy_j,
        "dram": rapl.dram.energy_j,
    }


def _run_matrix_once(
    machine: str,
    engine: Optional[str],
    seed: int,
    scale: float,
    batch_index: int,
    dt_s: float,
    fault_plan_fn: Optional[FaultPlanFn],
) -> tuple[dict[tuple[str, str], tuple], int]:
    """One measurement run: every core type, one event batch each.

    Returns ``{(linux_pmu, fullname): (expected, measured, arch_name,
    core_type_name)}`` plus the total number of batches.
    """
    system, papi = _build_system(machine, engine, seed, dt_s, fault_plan_fn)
    machine_obj = system.machine
    topo = system.topology
    plans = _core_plans(system, papi.pfm)
    n_batches = max(len(p.batches) for p in plans)

    threads: dict[str, SimThread] = {}
    for plan in plans:
        cpu = topo.cpus_of_type(plan.core_type.name)[0]
        thread = SimThread(
            f"validate-{plan.core_type.name}",
            Program([validation_phase(scale)]),
            affinity={cpu},
        )
        machine_obj.spawn(thread)
        threads[plan.core_type.name] = thread

    uncore_decode = system.perf.registry.by_name["uncore_llc"].decode
    uncore_events = _package_events(papi.pfm, "uncore_llc")
    rapl_events = (
        _package_events(papi.pfm, "rapl") if system.spec.has_rapl else []
    )

    # (esid, plan, [(linux_pmu, fullname, arch_or_None, domain_or_None)])
    setups = []
    for i, plan in enumerate(plans):
        batch = plan.batches[batch_index] if batch_index < len(plan.batches) else []
        codes = CODES_BY_PFM_PMU[plan.core_type.pfm_pmu]
        specs = [
            (plan.linux_pmu, name, codes[config], None)
            for name, config in batch
        ]
        if i == 0 and batch_index == 0:
            specs += [
                ("uncore_llc", name, uncore_decode[config], None)
                for name, config in uncore_events
            ]
            specs += [
                ("power", name, None, _RAPL_DOMAINS[config])
                for name, config in rapl_events
            ]
        if not specs:
            continue
        esid = papi.create_eventset()
        papi.attach(esid, threads[plan.core_type.name])
        for _, name, _, _ in specs:
            papi.add_event(esid, name)
        setups.append((esid, plan, specs))

    energy_before = _rapl_snapshot(system)
    for esid, _, _ in setups:
        papi.start(esid)
    machine_obj.run_until_done(list(threads.values()), max_s=600.0, strict=True)
    values = {esid: papi.stop(esid) for esid, _, _ in setups}
    energy_after = _rapl_snapshot(system)
    for esid, _, _ in setups:
        papi.destroy_eventset(esid)

    expect_vecs = {}
    for plan in plans:
        thread = threads[plan.core_type.name]
        expect_vecs[plan.core_type.name] = expected_vector(
            plan.core_type,
            scale,
            runtime_s=thread.runtime_s.get(plan.linux_pmu, 0.0),
            tsc_ghz=machine_obj.tsc_ghz,
        )

    results: dict[tuple[str, str], tuple] = {}
    for esid, plan, specs in setups:
        for (pmu, name, arch, domain), measured in zip(specs, values[esid]):
            if domain is not None:
                delta_j = energy_after[domain] - energy_before[domain]
                expected = delta_j / RAPL_PERF_UNIT_J
                ct_name = None
            elif pmu == "uncore_llc":
                # The uncore PMU counts every core in the package.
                expected = sum(v[arch] for v in expect_vecs.values())
                ct_name = None
            else:
                expected = expect_vecs[plan.core_type.name][arch]
                ct_name = plan.core_type.name
            arch_name = arch.name if arch is not None else None
            results[(pmu, name)] = (
                float(expected),
                float(measured),
                arch_name,
                ct_name,
            )
    return results, n_batches


def _mux_instructions(ct: CoreType) -> float:
    """Enough work for ~:data:`_MUX_ROTATIONS` rotation periods even at
    the core's maximum frequency (lower clocks only add rotations)."""
    ips = 0.8 * ct.ipc * ct.max_freq_mhz * 1e6
    return float(round(_MUX_ROTATIONS * MUX_ROTATION_PERIOD_S * ips))


def _run_mux_once(
    machine: str,
    engine: Optional[str],
    seed: int,
    dt_s: float,
) -> dict[tuple[str, str], tuple]:
    """One multiplexed run: all events of the biggest core's PMU at once."""
    system, papi = _build_system(machine, engine, seed, dt_s, None)
    machine_obj = system.machine
    topo = system.topology
    plans = _core_plans(system, papi.pfm)
    plan = max(
        plans, key=lambda p: p.core_type.capacity * p.core_type.max_freq_mhz
    )
    ct = plan.core_type
    scale = _mux_instructions(ct)
    cpu = topo.cpus_of_type(ct.name)[0]
    thread = SimThread(
        f"validate-mux-{ct.name}",
        Program([validation_phase(scale)]),
        affinity={cpu},
    )
    machine_obj.spawn(thread)

    esid = papi.create_eventset()
    papi.attach(esid, thread)
    papi.set_multiplex(esid)
    # Two copies of every event: twice the groups guarantees the PMU's
    # counter budget overflows, so rotation genuinely engages — and each
    # event gets two independently scheduled samples to classify.
    for name, _ in plan.events:
        papi.add_event(esid, name)
        papi.add_event(esid, name)
    papi.start(esid)
    machine_obj.run_until_done([thread], max_s=600.0, strict=True)
    values = papi.stop(esid)
    papi.destroy_eventset(esid)

    vec = expected_vector(
        ct,
        scale,
        runtime_s=thread.runtime_s.get(plan.linux_pmu, 0.0),
        tsc_ghz=machine_obj.tsc_ghz,
    )
    codes = CODES_BY_PFM_PMU[ct.pfm_pmu]
    results: dict[tuple[str, str], tuple] = {}
    for i, (name, config) in enumerate(plan.events):
        arch = codes[config]
        expected = float(vec[arch])
        samples = [float(values[2 * i]), float(values[2 * i + 1])]
        results[(plan.linux_pmu, name)] = (
            [expected, expected],
            samples,
            arch.name,
            ct.name,
        )
    return results


# -- the scorecard ---------------------------------------------------------


def run_validation(
    machine: str = "raptor-lake-i7-13700",
    engine: Optional[str] = None,
    seed: int = 0,
    scales: tuple[float, ...] = DEFAULT_SCALES,
    dt_s: float = 1e-4,
    include_mux: bool = True,
    fault_plan_fn: Optional[FaultPlanFn] = None,
) -> Scorecard:
    """Validate every native event on ``machine`` and build a scorecard.

    ``fault_plan_fn``, when given, is called with each freshly built
    :class:`System` and must return a :class:`repro.faults.plan.FaultPlan`
    to inject (the fault-stability property tests use this).  The
    multiplexed run never takes faults — its rows quantify rotation
    quality, not fault tolerance.
    """
    per_scale: list[dict[tuple[str, str], tuple]] = []
    for scale in scales:
        merged: dict[tuple[str, str], tuple] = {}
        batch_index = 0
        n_batches = 1
        while batch_index < n_batches:
            results, n_batches = _run_matrix_once(
                machine, engine, seed, scale, batch_index, dt_s, fault_plan_fn
            )
            merged.update(results)
            batch_index += 1
        per_scale.append(merged)

    card = Scorecard(
        machine=machine,
        engine=engine or "auto",
        seed=seed,
        scales=list(scales),
    )
    for key, (_, _, arch_name, ct_name) in per_scale[0].items():
        expected = [per_scale[i][key][0] for i in range(len(scales))]
        measured = [per_scale[i][key][1] for i in range(len(scales))]
        pmu, name = key
        card.rows.append(
            EventScore(
                machine=machine,
                pmu=pmu,
                event=name,
                arch_event=arch_name,
                core_type=ct_name,
                multiplexed=False,
                expected=expected,
                measured=measured,
                accuracy=classify(expected, measured),
            )
        )

    if include_mux:
        mux = _run_mux_once(machine, engine, seed, dt_s)
        for (pmu, name), (exp, meas, arch_name, ct_name) in mux.items():
            card.rows.append(
                EventScore(
                    machine=machine,
                    pmu=pmu,
                    event=name,
                    arch_event=arch_name,
                    core_type=ct_name,
                    multiplexed=True,
                    expected=exp,
                    measured=meas,
                    accuracy=classify(exp, meas),
                )
            )
    return card
