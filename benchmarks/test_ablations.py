"""Ablations over the design choices DESIGN.md calls out.

Not paper artifacts, but sensitivity studies that justify the model:

* work-stealing (look-ahead) fraction — the single knob separating the
  two HPL builds' scheduling behaviour;
* RAPL PL1 window length — what sets Figure 2's spike duration;
* multiplexing pressure — estimate quality as events exceed counters;
* scheduler-noise rate — what drives the §IV-F P/E split.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.common import raptor_core_sets, raptor_system, render_table
from repro.experiments.hybrid_eventset import run_hybrid_test
from repro.hpl import HplConfig, run_hpl
from repro.hpl.variants import HplVariant, OPENBLAS_PROFILE, VARIANTS
from repro.hw.machines import raptor_lake_i7_13700
from repro.monitor import Sampler
from repro.system import System


def test_ablation_dynamic_fraction(benchmark):
    """All-core Gflop/s vs the dynamically scheduled share of each update.

    At 0 the openblas profile is fully barrier-limited by the E-core
    stragglers; at 1.0 it behaves like the Intel scheduler.  The
    calibrated 0.16 reproduces Table II's 290 Gflop/s cell.
    """
    config = HplConfig(n=23040, nb=192)

    def sweep():
        rows = []
        for frac in (0.0, 0.16, 0.5, 1.0):
            VARIANTS["_ablation"] = HplVariant(
                name="_ablation",
                display="ablation",
                profile=OPENBLAS_PROFILE,
                dynamic_fraction=frac,
            )
            try:
                system = raptor_system(dt_s=0.02)
                cpus = raptor_core_sets(system)["P and E"]
                r = run_hpl(system, config, variant="_ablation", cpus=cpus)
                rows.append((frac, r.gflops))
            finally:
                del VARIANTS["_ablation"]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — dynamic work fraction vs all-core Gflop/s (openblas profile)",
        render_table(
            ["dynamic fraction", "Gflop/s"],
            [[f"{f:.2f}", f"{g:8.2f}"] for f, g in rows],
        ),
    )
    gflops = [g for _, g in rows]
    assert gflops == sorted(gflops), "more dynamic scheduling must not hurt"
    assert gflops[-1] / gflops[0] > 1.3  # stragglers genuinely dominate at 0


def test_ablation_rapl_pl1_window(benchmark):
    """Figure 2's spike lasts roughly one PL1 averaging window."""

    def sweep():
        rows = []
        # Windows short enough that the spike ends within the run.
        for window_s in (3.5, 7.0, 14.0):
            spec = raptor_lake_i7_13700()
            spec.rapl_pl1_window_s = window_s
            system = System(spec, dt_s=0.02)
            sampler = Sampler(system, period_s=0.5)
            sampler.start()
            cpus = raptor_core_sets(system)["P and E"]
            run_hpl(system, HplConfig(n=23040, nb=192), variant="intel", cpus=cpus)
            trace = sampler.stop()
            # Spike duration: time until power first falls below 100 W
            # after having exceeded it.
            spike_end = None
            seen_high = False
            for t, p in zip(trace.times_s, trace.package_w):
                if p > 100.0:
                    seen_high = True
                elif seen_high and p < 100.0:
                    spike_end = t
                    break
            rows.append((window_s, spike_end))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — RAPL PL1 window vs initial power-spike duration",
        render_table(
            ["PL1 window (s)", "spike ends at (s)"],
            [[f"{w:.0f}", f"{t:.1f}" if t else "n/a"] for w, t in rows],
        ),
    )
    durations = [t for _, t in rows]
    assert all(t is not None for t in durations)
    assert durations[0] < durations[1] < durations[2]


def test_ablation_multiplex_pressure(benchmark):
    """Scaled-estimate quality as the event count exceeds the counters."""
    from repro.papi import Papi
    from repro.sim.task import Program, SimThread
    from repro.sim.workload import ComputePhase, PhaseRates, constant_rates

    RATES = constant_rates(PhaseRates(ipc=2.0))

    def sweep():
        rows = []
        for n_events in (4, 12, 16, 24):
            system = System("raptor-lake-i7-13700", dt_s=1e-4)
            papi = Papi(system)
            p_cpu = system.topology.cpus_of_type("P-core")[0]
            t = system.machine.spawn(
                SimThread("w", Program([ComputePhase(5e8, RATES)]), affinity={p_cpu})
            )
            es = papi.create_eventset()
            papi.attach(es, t)
            papi.set_multiplex(es)
            for _ in range(n_events):
                papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
            papi.start(es)
            system.machine.run_until_done([t], max_s=10)
            values = papi.stop(es)
            papi.destroy_eventset(es)
            worst = max(abs(v - 5e8) / 5e8 for v in values)
            rows.append((n_events, worst))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — multiplexing pressure vs worst scaled-estimate error",
        render_table(
            ["events (12 counters)", "worst relative error"],
            [[str(n), f"{e:.3%}"] for n, e in rows],
        ),
    )
    by_n = dict(rows)
    assert by_n[4] < 0.001           # fits in counters: exact
    assert by_n[24] < 0.35           # heavy multiplexing: still usable


def test_ablation_scheduler_noise(benchmark):
    """The §IV-F E-core share responds to background-interference rate."""

    def sweep():
        rows = []
        for jitter in (0.0, 0.02, 0.05, 0.15):
            # run_hybrid_test wires migrate and rebalance jitter together
            # for unpinned runs; replicate its machinery at chosen rates.
            from repro.experiments import hybrid_eventset as he

            old = he.run_hybrid_test
            r = _run_with_jitter(jitter)
            e_share = r.average(1) / r.avg_total if r.avg_total else 0.0
            rows.append((jitter, e_share))
        return rows

    def _run_with_jitter(jitter):
        from repro.experiments.hybrid_eventset import (
            HybridTestResult,
            run_hybrid_test,
        )
        import repro.experiments.hybrid_eventset as he
        import repro.system as rs

        original = rs.System

        class Patched(rs.System):
            def __init__(self, *a, **kw):
                if kw.get("migrate_jitter"):
                    kw["migrate_jitter"] = jitter
                    kw["rebalance_jitter"] = jitter
                super().__init__(*a, **kw)

        he.System = Patched
        try:
            return run_hybrid_test(mode="hybrid", reps=60)
        finally:
            he.System = original

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — scheduler interference rate vs E-core instruction share",
        render_table(
            ["jitter / tick", "E-core share"],
            [[f"{j:.2f}", f"{s:.1%}"] for j, s in rows],
        ),
    )
    by_j = dict(rows)
    assert by_j[0.0] == 0.0          # no noise: never leaves the P-core
    assert by_j[0.15] > by_j[0.02]   # more noise, more E residency


def test_ablation_guided_scheduling(benchmark):
    """The counter-guided placement study (extension experiment)."""
    from repro.workloads.guided import render as render_study, run_guided_study

    result = benchmark.pedantic(
        lambda: run_guided_study(per_profile=8), rounds=1, iterations=1
    )
    emit("Extension — counter-guided core selection", render_study(result))
    assert result.speedup("inverted") > 1.15
    assert result.speedup("naive") > 1.05
    energies = {p: o.energy_j for p, o in result.outcomes.items()}
    assert energies["guided"] == min(energies.values())
