"""A2: the §II-A.2 tuning sweep — 16 (beta, NB) HPL runs.

Verifies the paper's tuning methodology: the beta approach produces the
N = 57024 the paper selected (beta ~0.76, NB = 192), and the reduced-
scale sweep prefers a large NB over NB = 64.
"""

from benchmarks.conftest import emit
from repro.experiments.common import raptor_system
from repro.hpl import beta_problem_size, run_hpl, tune_hpl


def test_tuning_sweep(benchmark):
    def run_cell(config):
        system = raptor_system(dt_s=0.02)
        return run_hpl(
            system,
            config,
            variant="openblas",
            cpus=system.topology.primary_threads(),
        ).gflops

    result = benchmark.pedantic(
        lambda: tune_hpl(32, run_cell, scale=0.25), rounds=1, iterations=1
    )
    emit("§II-A.2 — HPL tuning sweep (beta x NB, reduced scale)", result.table())
    assert len(result.cells) == 16
    # Large blocks win over NB=64 (blocking efficiency).
    assert result.best.nb >= 128
    # The paper's chosen full-scale point (N = 57024, NB = 192) sits in
    # the neighbourhood the beta approach proposes for NB = 192.
    ns_192 = sorted(
        beta_problem_size(32, c.beta, 192) for c in result.cells if c.nb == 192
    )
    assert ns_192[0] * 0.95 <= 57024 <= ns_192[-1] * 1.05
