"""F3: regenerate Figure 3 — ARM big.LITTLE thermal throttling."""

from benchmarks.conftest import emit
from repro.experiments import fig3_arm_throttle


def test_fig3_frequency_scaling_behavior(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: fig3_arm_throttle.run_fig3(full_scale=full_scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 3 — Frequency scaling behavior on the ARM64 big.LITTLE system",
        fig3_arm_throttle.render(result),
    )
    holds = fig3_arm_throttle.shape_holds(result)
    assert all(holds.values()), holds
    # Big cores ramp to max then throttle within tens of seconds.
    assert result.big_start_mhz["big x2"] > 1700
    assert result.time_to_throttle_s["big x2"] < 30.0
    # In the all-core run most computation lands on the LITTLE cluster.
    assert result.little_sustained_mhz["all x6"] > 1000
    assert result.big_sustained_mhz["all x6"] < 700
