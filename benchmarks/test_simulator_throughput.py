"""Microbenchmarks of the simulator itself.

Not paper artifacts — these track the substrate's own performance so
full-scale reproductions stay affordable (the guides' rule: measure
before optimizing).  Reported in host time by pytest-benchmark.
"""

from repro.hpl import HplConfig, run_hpl
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.5))


def test_engine_tick_throughput(benchmark):
    """Cost of one fully loaded tick (16 running threads, all hooks)."""
    system = System("raptor-lake-i7-13700", dt_s=0.001)
    for cpu in system.topology.primary_threads():
        system.machine.spawn(
            SimThread(f"w{cpu}", Program([ComputePhase(1e12, RATES)]), affinity={cpu})
        )
    system.machine.run_ticks(5)  # warm placement
    benchmark(system.machine.tick)


def test_perf_account_hook_overhead(benchmark):
    """Tick cost with 32 thread-bound perf events attached."""
    from repro.kernel.perf import PerfEventAttr
    from repro.kernel.perf.subsystem import PerfIoctl

    system = System("raptor-lake-i7-13700", dt_s=0.001)
    threads = [
        system.machine.spawn(
            SimThread(f"w{cpu}", Program([ComputePhase(1e12, RATES)]), affinity={cpu})
        )
        for cpu in system.topology.primary_threads()
    ]
    for t in threads:
        for pmu in ("cpu_core", "cpu_atom"):
            ptype = system.perf.registry.by_name[pmu].type
            # Events deliberately stay open: the benchmark measures the
            # per-tick accounting cost while counters are attached.
            fd = system.perf.perf_event_open(  # repro-lint: disable=PAPI-FD-LEAK
                PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
            )
            system.perf.ioctl(fd, PerfIoctl.ENABLE)
    system.machine.run_ticks(5)
    benchmark(system.machine.tick)


def test_hpl_simulation_rate(benchmark):
    """Wall time to simulate one small full HPL run (16 threads)."""

    def run():
        system = System("raptor-lake-i7-13700", dt_s=0.01)
        return run_hpl(
            system,
            HplConfig(n=4608, nb=192),
            variant="intel",
            cpus=system.topology.primary_threads(),
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.gflops > 0
