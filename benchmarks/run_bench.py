#!/usr/bin/env python
"""Simulator performance tracker.

Times the three substrate microbenchmarks (engine tick throughput,
perf-account hook overhead, small-HPL simulation rate) on every engine
(``ticks``, ``macro``, ``events``) and writes ``BENCH_simulator.json``
at the repo root so future PRs can track the perf trajectory::

    PYTHONPATH=src python benchmarks/run_bench.py

Each timing is the **median** of ``--rounds`` measured rounds after
``--warmup`` discarded rounds: the first rounds of a fresh process pay
for allocator warmup, code-object caching and branch training, and a
mean over them produced nonsense like *negative* trace overhead in
earlier baselines.  Within a benchmark the engine variants are timed in
**interleaved** rounds (ticks, macro, events, traced, repeat) so slow
host drift — thermal/turbo state, background load — cancels out of the
cross-engine ratios instead of biasing whichever variant ran last.

Each benchmark also reports a ``traced_s`` column (event engine with
full tracing on) so the cost of observation is tracked alongside.

Two deterministic CI guards:

``--check-trace-overhead``
    The *simulated* completion time of the small HPL run (a pure
    function of the machine and seed, immune to host noise) must stay
    within 2% of the ``hpl_sim_time_s`` recorded in
    ``BENCH_simulator.json``, and tracing must not move it at all.

``--check-regression``
    Re-times ``hpl_simulation_rate`` on the event engine and fails if
    the speedup vs. the frozen seed baseline drops below the
    ``floors["hpl_speedup_vs_seed"]`` recorded in
    ``BENCH_simulator.json`` (with head-room slack for host noise, see
    ``FLOOR_SLACK``).  This is the gate that keeps engine regressions
    like the PR 2–5 fastpath erosion from landing silently.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.hpl import HplConfig, run_hpl  # noqa: E402
from repro.kernel.perf import PerfEventAttr  # noqa: E402
from repro.kernel.perf.subsystem import PerfIoctl  # noqa: E402
from repro.sim.task import Program, SimThread  # noqa: E402
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates  # noqa: E402
from repro.system import System  # noqa: E402

RATES = constant_rates(
    PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.5)
)
MACHINE = "raptor-lake-i7-13700"

#: The engine matrix, slowest first.  "ticks" is the plain single-tick
#: loop, "macro" the record/replay fast path, "events" the event-driven
#: core.
ENGINES = ("ticks", "macro", "events")

#: A measured speedup may sit this fraction below the recorded floor
#: before --check-regression fails: the floor is set from a quiet-host
#: median and CI runners are noisier.
FLOOR_SLACK = 0.25


def _median_of(fn, rounds: int, warmup: int) -> float:
    """Median of ``rounds`` calls to ``fn`` after ``warmup`` discarded
    calls (first-round allocator/caching costs would skew a mean)."""
    for _ in range(warmup):
        fn()
    return statistics.median(fn() for _ in range(rounds))


def _loaded_system(engine: str, with_events: bool, trace: bool = False) -> System:
    system = System(MACHINE, dt_s=0.001, engine=engine, trace=trace)
    threads = [
        system.machine.spawn(
            SimThread(f"w{cpu}", Program([ComputePhase(1e12, RATES)]), affinity={cpu})
        )
        for cpu in system.topology.primary_threads()
    ]
    if with_events:
        for t in threads:
            for pmu in ("cpu_core", "cpu_atom"):
                ptype = system.perf.registry.by_name[pmu].type
                # Events deliberately stay open: the benchmark measures
                # steady-state tick cost *with* live counters attached.
                fd = system.perf.perf_event_open(  # repro-lint: disable=PAPI-FD-LEAK
                    PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
                )
                system.perf.ioctl(fd, PerfIoctl.ENABLE)
    system.machine.run_ticks(5)  # warm placement
    return system


def tick_rounds(engine: str, with_events: bool, trace: bool = False):
    """One-round closure: cost of one fully loaded ``run_ticks`` tick."""
    system = _loaded_system(engine, with_events, trace=trace)
    batch = 50

    def one_round() -> float:
        t0 = time.perf_counter()
        system.machine.run_ticks(batch)
        return (time.perf_counter() - t0) / batch

    return one_round


def hpl_rounds(engine: str, trace: bool = False):
    """One-round closure: wall time of one small full HPL run."""

    def one_round() -> float:
        system = System(MACHINE, dt_s=0.01, engine=engine, trace=trace)
        t0 = time.perf_counter()
        result = run_hpl(
            system,
            HplConfig(n=4608, nb=192),
            variant="intel",
            cpus=system.topology.primary_threads(),
        )
        elapsed = time.perf_counter() - t0
        assert result.gflops > 0
        return elapsed

    return one_round


def hpl_sim_time(trace: bool) -> float:
    """*Simulated* completion time of the small HPL run — deterministic,
    so usable as a bit-stable regression reference."""
    system = System(MACHINE, dt_s=0.01, trace=trace)
    run_hpl(
        system,
        HplConfig(n=4608, nb=192),
        variant="intel",
        cpus=system.topology.primary_threads(),
    )
    return system.machine.now_s


#: name -> factory(engine, trace) -> zero-arg one-round closure.
BENCHES = {
    "engine_tick_throughput": lambda eng, tr=False: tick_rounds(eng, False, tr),
    "perf_account_hook_overhead": lambda eng, tr=False: tick_rounds(eng, True, tr),
    "hpl_simulation_rate": lambda eng, tr=False: hpl_rounds(eng, tr),
}


def run_bench(factory, rounds: int, warmup: int) -> dict[str, float]:
    """Interleaved per-variant medians for one benchmark.

    Variants are warmed once each, then timed round-robin so host drift
    hits every variant equally within a round.
    """
    variants = {eng: factory(eng) for eng in ENGINES}
    variants["traced"] = factory("events", True)
    for fn in variants.values():
        for _ in range(warmup):
            fn()
    samples: dict[str, list[float]] = {k: [] for k in variants}
    for _ in range(rounds):
        for k, fn in variants.items():
            samples[k].append(fn())
    return {k: statistics.median(v) for k, v in samples.items()}

#: pytest-benchmark means measured on the pre-fast-path engine (commit
#: 77ce6b6), for trajectory tracking.  ``engine="ticks"`` today is *not*
#: the seed engine: the vectorized accounting kernel and the bulk
#: chunk-claim are shared by every engine, so the plain loop also got
#: faster.
SEED_BASELINE_S = {
    "engine_tick_throughput": 391e-6,
    "perf_account_hook_overhead": 508e-6,
    "hpl_simulation_rate": 123.3e-3,
}


#: Worker-pool sizes the fleet benchmark sweeps.
FLEET_SIZES = (1, 2, 4)


def fleet_bench(baseline_path: Path, rounds: int, warmup: int) -> int:
    """Fleet throughput: jobs/s of a 16-job sweep at pool sizes 1/2/4.

    Each round runs the 16-job ``fleet``-preset sweep through the real
    :class:`~repro.supervisor.Supervisor` (subprocess workers, journal,
    heartbeats — the full service path) into a throwaway directory, and
    times the whole sweep.  Results are merged into the ``fleet``
    section of ``BENCH_simulator.json`` without touching the engine
    numbers.  Fails if the 4-worker pool is not faster than the
    single-worker pool — the concurrency must actually buy throughput.
    """
    import shutil
    import tempfile

    from repro.supervisor import RunSpec, Supervisor

    jobs = [
        RunSpec(
            f"hpl-{variant}-n{n}",
            "hpl",
            {"machine": MACHINE, "n": n, "nb": 128, "variant": variant,
             "slice_s": 0.02},
        )
        for variant in ("openblas", "intel")
        for n in (800, 900, 1000, 1100, 1200, 1300, 1400, 1500)
    ]
    scratch = tempfile.mkdtemp(prefix="fleet-bench-")
    counter = [0]

    def one_sweep(workers: int) -> float:
        counter[0] += 1
        out = Path(scratch) / f"sweep-{counter[0]}"
        sup = Supervisor(
            str(out),
            backoff_s=0.0,
            checkpoint_every_s=0.04,
            workers=workers,
            log=lambda m: None,
        )
        t0 = time.perf_counter()
        manifest = sup.run(list(jobs))
        elapsed = time.perf_counter() - t0
        assert all(rec.status == "done" for rec in manifest.runs.values())
        shutil.rmtree(out, ignore_errors=True)
        return elapsed

    try:
        walls = {
            n: _median_of(lambda: one_sweep(n), rounds, warmup)
            for n in FLEET_SIZES
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    section = {
        "jobs": len(jobs),
        "rounds": rounds,
        "warmup": warmup,
        # The pool's wins are host-dependent: on a single-CPU host the
        # speedup is only startup/IO overlap; on multicore it is real
        # parallel compute.  Record the host so numbers compare fairly.
        "host_cpus": os.cpu_count(),
        "workers": {
            str(n): {
                "wall_s": walls[n],
                "jobs_per_s": len(jobs) / walls[n],
                "speedup_vs_1": walls[1] / walls[n],
            }
            for n in FLEET_SIZES
        },
    }
    for n in FLEET_SIZES:
        w = section["workers"][str(n)]
        print(
            f"fleet N={n}: {w['wall_s']:7.3f} s  "
            f"{w['jobs_per_s']:6.2f} jobs/s  "
            f"{w['speedup_vs_1']:5.2f}x vs N=1"
        )

    # Merge into the tracked baseline without clobbering engine numbers.
    payload = json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
    payload["fleet"] = section
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"updated fleet section of {baseline_path}")

    if walls[4] >= walls[1]:
        print(
            "FAIL: the 4-worker fleet is not faster than a single worker — "
            "pool concurrency is buying nothing; check for serialization "
            "in the poll loop or journal fsync path"
        )
        return 1
    print("OK: 4-worker fleet beats single-worker throughput")
    return 0


def check_trace_overhead(baseline_path: Path, tolerance: float = 0.02) -> int:
    """Deterministic guard: trace-off HPL *sim* time within ``tolerance``
    of the recorded baseline, and tracing must not move sim time at all."""
    baseline = json.loads(baseline_path.read_text()).get("hpl_sim_time_s")
    if baseline is None:
        print(f"{baseline_path} has no hpl_sim_time_s; regenerate the baseline")
        return 1
    off = hpl_sim_time(trace=False)
    on = hpl_sim_time(trace=True)
    drift = abs(off - baseline) / baseline
    print(
        f"hpl sim time: baseline {baseline:.6f}s  trace-off {off:.6f}s "
        f"(drift {drift * 100:.3f}%)  trace-on {on:.6f}s"
    )
    ok = True
    if drift > tolerance:
        print(f"FAIL: trace-off sim time drifted more than {tolerance * 100:.0f}%")
        ok = False
    if on != off:
        print("FAIL: tracing changed the simulated completion time")
        ok = False
    return 0 if ok else 1


def check_regression(baseline_path: Path, rounds: int, warmup: int) -> int:
    """Bench gate: the event engine's HPL speedup vs the frozen seed must
    not fall below the floor recorded in the baseline (minus slack)."""
    floors = json.loads(baseline_path.read_text()).get("floors")
    if not floors or "hpl_speedup_vs_seed" not in floors:
        print(
            f"{baseline_path} has no floors.hpl_speedup_vs_seed; "
            "regenerate the baseline"
        )
        return 1
    floor = floors["hpl_speedup_vs_seed"]
    gate = floor * (1.0 - FLOOR_SLACK)
    wall = _median_of(hpl_rounds("events"), rounds, warmup)
    speedup = SEED_BASELINE_S["hpl_simulation_rate"] / wall
    print(
        f"hpl_simulation_rate[events]: {wall * 1e3:.3f} ms  "
        f"= {speedup:.1f}x vs seed  (floor {floor:.1f}x, "
        f"gate {gate:.1f}x after {FLOOR_SLACK * 100:.0f}% noise slack)"
    )
    if speedup < gate:
        print(
            "FAIL: event-engine HPL speedup fell below the recorded floor — "
            "an engine hot-path regression landed; profile with "
            "tools/profile.py and either fix it or justify a new floor"
        )
        return 1
    print("OK: speedup holds the recorded floor")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--rounds", type=int, default=9)
    parser.add_argument(
        "--warmup",
        type=int,
        default=3,
        help="discarded warmup rounds before the measured ones",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single-round CI smoke run; timings are not representative",
    )
    parser.add_argument(
        "--check-trace-overhead",
        action="store_true",
        help="compare HPL simulated time against BENCH_simulator.json "
        "(deterministic; fails on >2%% drift or any trace-on divergence)",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="fail if the event engine's HPL speedup vs seed drops below "
        "the floor recorded in BENCH_simulator.json",
    )
    parser.add_argument(
        "--fleet",
        action="store_true",
        help="measure fleet sweep throughput (jobs/s) at pool sizes "
        "1/2/4 and record it in BENCH_simulator.json; fails unless "
        "N=4 beats N=1",
    )
    args = parser.parse_args(argv)
    baseline = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
    if args.check_trace_overhead:
        return check_trace_overhead(baseline)
    if args.smoke:
        args.rounds = 1
        args.warmup = 1
    if args.rounds < 1:
        parser.error("--rounds must be >= 1")
    if args.warmup < 0:
        parser.error("--warmup must be >= 0")
    if args.fleet:
        return fleet_bench(baseline, args.rounds, args.warmup)
    if args.check_regression:
        return check_regression(baseline, args.rounds, args.warmup)
    if args.output is None:
        # Smoke runs must not clobber the tracked perf-trajectory file.
        name = "BENCH_smoke.json" if args.smoke else "BENCH_simulator.json"
        args.output = Path(__file__).resolve().parent.parent / name

    results = {}
    for name, factory in BENCHES.items():
        med = run_bench(factory, args.rounds, args.warmup)
        best = min(med[eng] for eng in ENGINES)
        results[name] = {
            "seed_s": SEED_BASELINE_S[name],
            "ticks_s": med["ticks"],
            "macro_s": med["macro"],
            "events_s": med["events"],
            "traced_s": med["traced"],
            "macro_vs_ticks": med["ticks"] / med["macro"],
            "events_vs_ticks": med["ticks"] / med["events"],
            "speedup_vs_seed": SEED_BASELINE_S[name] / best,
            "trace_on_overhead": med["traced"] / med["events"] - 1.0,
        }
        print(
            f"{name:28s} ticks {med['ticks'] * 1e3:8.3f} ms  "
            f"macro {med['macro'] * 1e3:8.3f} ms  "
            f"events {med['events'] * 1e3:8.3f} ms  "
            f"traced {med['traced'] * 1e3:8.3f} ms  "
            f"{results[name]['speedup_vs_seed']:6.1f}x vs seed"
        )

    hpl_speedup = results["hpl_simulation_rate"]["speedup_vs_seed"]
    payload = {
        "machine": MACHINE,
        "unit": "seconds (median wall time of warmed rounds)",
        "engines": {
            "ticks": "Machine(engine='ticks') — plain single-tick loop",
            "macro": "Machine(engine='macro') — macro-tick record/replay",
            "events": "Machine(engine='events') — event-driven core",
        },
        "traced": "Machine(engine='events', trace=True) — full tracing on",
        "rounds": args.rounds,
        "warmup": args.warmup,
        "hpl_sim_time_s": hpl_sim_time(trace=False),
        "floors": {
            # --check-regression gate: the floor records what this
            # baseline actually measured (CI applies FLOOR_SLACK).
            "hpl_speedup_vs_seed": hpl_speedup,
        },
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
