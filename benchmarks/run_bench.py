#!/usr/bin/env python
"""Simulator performance tracker.

Times the three substrate microbenchmarks (engine tick throughput,
perf-account hook overhead, small-HPL simulation rate) on both engine
paths and writes ``BENCH_simulator.json`` at the repo root so future
PRs can track the perf trajectory::

    PYTHONPATH=src python benchmarks/run_bench.py

The "before" numbers come from running the same workloads with
``fastpath=False`` (the original single-tick engine); "after" uses the
macro-tick fast path.  Mean wall times in seconds, plus the speedup.
Each benchmark also reports a ``traced_s`` column (fast path with full
tracing on) so the cost of observation is tracked alongside.

``--check-trace-overhead`` is the deterministic regression guard: the
*simulated* completion time of the small HPL run (a pure function of
the machine and seed, immune to host noise) must stay within 2% of the
``hpl_sim_time_s`` recorded in ``BENCH_simulator.json``, and tracing
must not move it at all.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.hpl import HplConfig, run_hpl  # noqa: E402
from repro.kernel.perf import PerfEventAttr  # noqa: E402
from repro.kernel.perf.subsystem import PerfIoctl  # noqa: E402
from repro.sim.task import Program, SimThread  # noqa: E402
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates  # noqa: E402
from repro.system import System  # noqa: E402

RATES = constant_rates(
    PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.5)
)
MACHINE = "raptor-lake-i7-13700"


def _loaded_system(fastpath: bool, with_events: bool, trace: bool = False) -> System:
    system = System(MACHINE, dt_s=0.001, fastpath=fastpath, trace=trace)
    threads = [
        system.machine.spawn(
            SimThread(f"w{cpu}", Program([ComputePhase(1e12, RATES)]), affinity={cpu})
        )
        for cpu in system.topology.primary_threads()
    ]
    if with_events:
        for t in threads:
            for pmu in ("cpu_core", "cpu_atom"):
                ptype = system.perf.registry.by_name[pmu].type
                # Events deliberately stay open: the benchmark measures
                # steady-state tick cost *with* live counters attached.
                fd = system.perf.perf_event_open(  # repro-lint: disable=PAPI-FD-LEAK
                    PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
                )
                system.perf.ioctl(fd, PerfIoctl.ENABLE)
    system.machine.run_ticks(5)  # warm placement
    return system


def bench_tick(
    fastpath: bool, with_events: bool, rounds: int, trace: bool = False
) -> float:
    """Mean cost of one fully loaded ``run_ticks`` tick, in seconds."""
    system = _loaded_system(fastpath, with_events, trace=trace)
    batch = 50
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        system.machine.run_ticks(batch)
        times.append((time.perf_counter() - t0) / batch)
    return statistics.mean(times)


def bench_hpl(fastpath: bool, rounds: int, trace: bool = False) -> float:
    """Mean wall time of one small full HPL run (16 threads), in seconds."""
    times = []
    for _ in range(rounds):
        system = System(MACHINE, dt_s=0.01, fastpath=fastpath, trace=trace)
        t0 = time.perf_counter()
        result = run_hpl(
            system,
            HplConfig(n=4608, nb=192),
            variant="intel",
            cpus=system.topology.primary_threads(),
        )
        times.append(time.perf_counter() - t0)
        assert result.gflops > 0
    return statistics.mean(times)


def hpl_sim_time(trace: bool) -> float:
    """*Simulated* completion time of the small HPL run — deterministic,
    so usable as a bit-stable regression reference."""
    system = System(MACHINE, dt_s=0.01, trace=trace)
    run_hpl(
        system,
        HplConfig(n=4608, nb=192),
        variant="intel",
        cpus=system.topology.primary_threads(),
    )
    return system.machine.now_s


BENCHES = {
    "engine_tick_throughput": lambda fp, r, tr=False: bench_tick(fp, False, r, tr),
    "perf_account_hook_overhead": lambda fp, r, tr=False: bench_tick(fp, True, r, tr),
    "hpl_simulation_rate": lambda fp, r, tr=False: bench_hpl(fp, r, tr),
}

#: pytest-benchmark means measured on the pre-fast-path engine (commit
#: 77ce6b6), for trajectory tracking.  ``fastpath=False`` today is *not*
#: the seed engine: the vectorized accounting kernel is shared by both
#: paths, so the slow path also got faster.
SEED_BASELINE_S = {
    "engine_tick_throughput": 391e-6,
    "perf_account_hook_overhead": 508e-6,
    "hpl_simulation_rate": 123.3e-3,
}


def check_trace_overhead(baseline_path: Path, tolerance: float = 0.02) -> int:
    """Deterministic guard: trace-off HPL *sim* time within ``tolerance``
    of the recorded baseline, and tracing must not move sim time at all."""
    baseline = json.loads(baseline_path.read_text()).get("hpl_sim_time_s")
    if baseline is None:
        print(f"{baseline_path} has no hpl_sim_time_s; regenerate the baseline")
        return 1
    off = hpl_sim_time(trace=False)
    on = hpl_sim_time(trace=True)
    drift = abs(off - baseline) / baseline
    print(
        f"hpl sim time: baseline {baseline:.6f}s  trace-off {off:.6f}s "
        f"(drift {drift * 100:.3f}%)  trace-on {on:.6f}s"
    )
    ok = True
    if drift > tolerance:
        print(f"FAIL: trace-off sim time drifted more than {tolerance * 100:.0f}%")
        ok = False
    if on != off:
        print("FAIL: tracing changed the simulated completion time")
        ok = False
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single-round CI smoke run; timings are not representative",
    )
    parser.add_argument(
        "--check-trace-overhead",
        action="store_true",
        help="compare HPL simulated time against BENCH_simulator.json "
        "(deterministic; fails on >2%% drift or any trace-on divergence)",
    )
    args = parser.parse_args(argv)
    if args.check_trace_overhead:
        baseline = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
        return check_trace_overhead(baseline)
    if args.smoke:
        args.rounds = 1
    if args.rounds < 1:
        parser.error("--rounds must be >= 1")
    if args.output is None:
        # Smoke runs must not clobber the tracked perf-trajectory file.
        name = "BENCH_smoke.json" if args.smoke else "BENCH_simulator.json"
        args.output = Path(__file__).resolve().parent.parent / name

    results = {}
    for name, fn in BENCHES.items():
        before = fn(False, args.rounds)
        after = fn(True, args.rounds)
        traced = fn(True, args.rounds, True)
        results[name] = {
            "seed_s": SEED_BASELINE_S[name],
            "before_s": before,
            "after_s": after,
            "traced_s": traced,
            "speedup": before / after,
            "speedup_vs_seed": SEED_BASELINE_S[name] / after,
            "trace_on_overhead": traced / after - 1.0,
        }
        print(
            f"{name:32s} before {before * 1e3:9.3f} ms   "
            f"after {after * 1e3:9.3f} ms   {before / after:5.2f}x   "
            f"traced {traced * 1e3:9.3f} ms"
        )

    payload = {
        "machine": MACHINE,
        "unit": "seconds (mean wall time)",
        "before": "Machine(fastpath=False) — original single-tick engine",
        "after": "Machine(fastpath=True) — macro-tick fast path",
        "traced": "Machine(fastpath=True, trace=True) — full tracing on",
        "rounds": args.rounds,
        "hpl_sim_time_s": hpl_sim_time(trace=False),
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
