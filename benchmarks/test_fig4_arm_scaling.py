"""F4: regenerate Figure 4 — OrangePi HPL performance as cores are added."""

from benchmarks.conftest import emit
from repro.experiments import fig4_arm_scaling


def test_fig4_orangepi_scaling(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: fig4_arm_scaling.run_fig4(full_scale=full_scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 4 — OrangePi HPL performance as more cores are added",
        fig4_arm_scaling.render(result),
    )
    holds = fig4_arm_scaling.shape_holds(result)
    assert all(holds.values()), holds
    # The paper's headline orderings.
    assert result.wall_s["4 little"] < result.wall_s["2 big"]
    assert result.gflops["all 6"] >= result.gflops["4 little"]
    assert result.gflops["all 6"] / result.gflops["4 little"] < 1.25
