"""T3: regenerate Table III — per-core-type counter measurements."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import table3_counters


def test_table3_hardware_counter_measurements(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: table3_counters.run_table3(full_scale=full_scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Table III — Hardware counter measurements for all-core runs",
        table3_counters.render(result),
    )
    holds = table3_counters.shape_holds(result)
    assert all(holds.values()), holds
    # Quantitative vicinity of the paper's cells.
    assert result.miss_rate["openblas"]["P"] == pytest.approx(0.86, abs=0.06)
    assert result.miss_rate["intel"]["P"] == pytest.approx(0.64, abs=0.06)
    assert result.miss_rate["openblas"]["E"] < 0.01
    assert result.miss_rate["intel"]["E"] < 0.01
    assert result.instr_share["openblas"]["P"] == pytest.approx(0.80, abs=0.10)
    assert result.instr_share["intel"]["P"] == pytest.approx(0.68, abs=0.10)
