"""T2: regenerate Table II — the six HPL Gflop/s cells.

Shape assertions (vs the paper's measured values, DESIGN.md anchors):
Intel wins every core set; the all-core gap dwarfs the others; OpenBLAS
regresses on all cores while Intel gains.  Each regenerated cell must
land within 15% of the paper's absolute number.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import table2_hpl
from repro.experiments.table2_hpl import CORE_SET_ORDER, PAPER_GFLOPS


def test_table2_benchmark_performance_comparison(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: table2_hpl.run_table2(full_scale=full_scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Table II — Benchmark performance comparison (Gflop/s)",
        table2_hpl.render(result),
    )
    holds = table2_hpl.shape_holds(result)
    assert all(holds.values()), holds
    for core_set in CORE_SET_ORDER:
        paper_ob, paper_intel = PAPER_GFLOPS[core_set]
        assert result.gflops(core_set, "openblas") == pytest.approx(
            paper_ob, rel=0.15
        ), core_set
        assert result.gflops(core_set, "intel") == pytest.approx(
            paper_intel, rel=0.15
        ), core_set
    # The signature 57.4% all-core gap, within a generous band.
    assert 35.0 < result.change_pct("P and E") < 80.0
