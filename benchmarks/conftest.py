"""Benchmark harness configuration.

Every benchmark regenerates one table or figure from the paper (see
DESIGN.md's experiment index), prints the regenerated rows/series next
to the paper's values, and asserts the qualitative shape.  Experiment
pipelines are heavy, so each runs exactly once per session
(``benchmark.pedantic(rounds=1)``); the microbenchmarks (A1 overhead)
use normal timing loops.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale",
        action="store_true",
        default=False,
        help="use the paper's exact problem sizes (much slower)",
    )


@pytest.fixture(scope="session")
def full_scale(request) -> bool:
    return request.config.getoption("--full-scale")


def emit(title: str, body: str) -> None:
    """Print a regenerated artifact in a recognizable block."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
