"""F1: regenerate Figure 1 — core frequencies over time, both builds."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig1_frequencies


def test_fig1_core_frequencies(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: fig1_frequencies.run_fig1(full_scale=full_scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 1 — Measured core frequencies, all-core runs (1 Hz series)",
        fig1_frequencies.render(result),
    )
    holds = fig1_frequencies.shape_holds(result)
    assert all(holds.values()), holds
    # Medians in the paper's neighbourhood (GHz).
    assert result.medians_ghz["openblas"]["P-core"] == pytest.approx(2.94, abs=0.5)
    assert result.medians_ghz["intel"]["P-core"] == pytest.approx(2.61, abs=0.45)
    assert result.medians_ghz["intel"]["E-core"] == pytest.approx(2.32, abs=0.45)
    # Both traces actually sampled at 1 Hz for the bulk of the run.
    for trace in result.traces.values():
        assert len(trace.times_s) > 20
