"""R1: regenerate the §IV-F functional result
(``papi_hybrid_100m_one_eventset``) on both testbeds."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import hybrid_eventset


def test_papi_hybrid_100m_one_eventset_raptor(benchmark):
    results = benchmark.pedantic(
        lambda: hybrid_eventset.run_paper_scenarios("raptor-lake-i7-13700"),
        rounds=1,
        iterations=1,
    )
    emit(
        "§IV-F — papi_hybrid_100m_one_eventset (Raptor Lake)",
        hybrid_eventset.render(results),
    )
    by_key = {(r.mode, r.pinned): r for r in results}

    free = by_key[("hybrid", None)]
    p, e = free.average(0), free.average(1)
    # The paper's exemplar: p ~836848, e ~167487, sum ~1M.
    assert p > e > 0
    assert 1e6 <= free.avg_total <= 1.05e6

    assert by_key[("hybrid", "P-core")].average(1) == 0
    assert by_key[("hybrid", "E-core")].average(0) == 0
    # Legacy: partial counts only.
    assert by_key[("legacy", "E-core")].avg_total == 0
    assert 0 < by_key[("legacy", None)].avg_total < 1e6


def test_papi_hybrid_on_orangepi(benchmark):
    results = benchmark.pedantic(
        lambda: hybrid_eventset.run_paper_scenarios("orangepi-800"),
        rounds=1,
        iterations=1,
    )
    emit(
        "§IV-F — papi_hybrid_100m_one_eventset (OrangePi 800)",
        hybrid_eventset.render(results),
    )
    by_key = {(r.mode, r.pinned): r for r in results}
    free = by_key[("hybrid", None)]
    assert 1e6 <= free.avg_total <= 1.05e6
    assert by_key[("hybrid", "big")].average(1) == 0
    assert by_key[("hybrid", "LITTLE")].average(0) == 0


def test_homogeneous_machine_control(benchmark):
    """'On a traditional machine you get the expected result.'"""
    result = benchmark.pedantic(
        lambda: hybrid_eventset.run_hybrid_test(
            mode="legacy", machine="xeon-homogeneous", reps=100
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "§IV-F control — homogeneous machine",
        result.summary_line(),
    )
    assert result.avg_total == pytest.approx(1e6, rel=0.05)
