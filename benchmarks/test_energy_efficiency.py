"""Extension: energy efficiency (Gflop/s per watt) across core sets."""

from benchmarks.conftest import emit
from repro.experiments import energy_efficiency


def test_energy_efficiency(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: energy_efficiency.run_energy_efficiency(full_scale=full_scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Extension — Energy efficiency of the Table II runs",
        energy_efficiency.render(result),
    )
    holds = energy_efficiency.shape_holds(result)
    assert all(holds.values()), holds
