"""A1: the §V-5 overhead ablation.

Two halves:

* the *modeled* cost — syscalls and charged instructions per PAPI
  operation as the number of perf event groups grows (regenerated table);
* the *host-level* cost of the library implementation itself, measured
  with pytest-benchmark: PAPI read on a 1-group vs 2-group EventSet.
"""

from benchmarks.conftest import emit
from repro.experiments import overhead
from repro.papi import Papi
from repro.sim.task import Program, SimThread
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates
from repro.system import System

RATES = constant_rates(PhaseRates(ipc=2.0))


def test_overhead_table(benchmark):
    result = benchmark.pedantic(
        lambda: overhead.run_overhead(), rounds=1, iterations=1
    )
    emit("§V-5 — Syscall overhead per PAPI operation vs EventSet layout",
         overhead.render(result))
    holds = overhead.shape_holds(result)
    assert all(holds.values()), holds
    # Syscall counts scale linearly with the group count.
    one = result.costs["1 PMU, 2 events"]
    four = result.costs["2 PMUs + uncore + RAPL"]
    assert four["read"].syscalls == 4 * one["read"].syscalls


def _reader(n_pmus: int):
    system = System("raptor-lake-i7-13700", dt_s=1e-3)
    papi = Papi(system)
    t = system.machine.spawn(
        SimThread("app", Program([ComputePhase(1e9, RATES)]), affinity={0})
    )
    es = papi.create_eventset()
    papi.attach(es, t)
    papi.add_event(es, "adl_glc::INST_RETIRED:ANY")
    if n_pmus == 2:
        papi.add_event(es, "adl_grt::INST_RETIRED:ANY")
    papi.start(es)
    system.machine.run_ticks(5)
    return papi, es


def test_read_latency_one_group(benchmark):
    papi, es = _reader(1)
    benchmark(papi.read, es)


def test_read_latency_two_groups(benchmark):
    papi, es = _reader(2)
    benchmark(papi.read, es)
