"""F2: regenerate Figure 2 — package power and temperature traces."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import fig2_power


def test_fig2_power_and_temperature(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: fig2_power.run_fig2(full_scale=full_scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 2 — Measured power and package temperature, all-core runs",
        fig2_power.render(result),
    )
    holds = fig2_power.shape_holds(result)
    assert all(holds.values()), holds
    # OpenBLAS peaks well below PL2 (paper: 165.7 W), Intel much higher.
    assert result.peak_w["openblas"] == pytest.approx(165.7, rel=0.25)
    assert result.peak_w["intel"] > 180.0
    # Both settle at the PL1 long-term limit.
    for variant in ("openblas", "intel"):
        assert result.steady_w[variant] == pytest.approx(65.0, rel=0.12)
    # Adequate cooling: nowhere near the 100 C Tjmax.
    assert max(result.max_temp_c.values()) < 90.0
