"""T1: regenerate Table I (Raptor Lake) and Table IV (OrangePi 800)."""

from benchmarks.conftest import emit
from repro.experiments import table1_hw
from repro.experiments.common import orangepi_system, raptor_system


def test_table1_raptor_lake(benchmark):
    result = benchmark.pedantic(
        lambda: table1_hw.run_hw_config(raptor_system()), rounds=1, iterations=1
    )
    text = table1_hw.render(result)
    emit("Table I — Hardware configuration of the Raptor Lake system", text)
    assert "13th Gen Intel(R) Core(TM) i7-13700" in text
    by_name = {c.name: c for c in result.info.core_classes}
    assert by_name["P-core"].n_physical_cores == 8
    assert by_name["P-core"].n_logical_cpus == 16
    assert by_name["E-core"].n_physical_cores == 8
    assert result.info.memory_gib == 32


def test_table4_orangepi(benchmark):
    result = benchmark.pedantic(
        lambda: table1_hw.run_hw_config(orangepi_system()), rounds=1, iterations=1
    )
    text = table1_hw.render(result)
    emit("Table IV — Hardware configuration of the OrangePi 800 system", text)
    by_name = {c.name: c for c in result.info.core_classes}
    assert by_name["big"].n_physical_cores == 2
    assert by_name["big"].max_mhz == 1800
    assert by_name["LITTLE"].n_physical_cores == 4
    assert by_name["LITTLE"].max_mhz == 1400
    assert result.info.memory_gib == 4
