#!/usr/bin/env python3
"""Trace-capture launcher.

Equivalent to ``PYTHONPATH=src python -m repro.trace`` but runnable from
anywhere in the repo without environment setup::

    python tools/trace.py run --workload migrate --chrome out.trace.json
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.trace.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
