#!/usr/bin/env python3
"""Deterministic cProfile harness for the simulation engines.

Profiles canned scenarios — the small HPL run and a fully loaded tick
loop with live perf counters, the same workloads ``benchmarks/
run_bench.py`` times — and prints a ``pstats`` table sorted by
cumulative time::

    python tools/profile.py hpl --engine events --top 25
    python tools/profile.py ticks --engine macro --top 40
    python tools/profile.py all

The *workload* is deterministic (a pure function of machine and seed);
only the measured wall times vary run to run.  That makes call counts
directly comparable across commits — a hot-path regression shows up as
a call-count delta long before it is visible over host noise, which is
how the PR 2–5 fastpath erosion was eventually diagnosed (see
EXPERIMENTS.md).  ``--dump FILE`` saves the raw stats for ``pstats``
or snakeviz-style explorers.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
# ``python tools/profile.py`` puts tools/ first on sys.path, where this
# very file shadows the stdlib ``profile`` module that cProfile imports
# — drop the script directory before touching the profilers.
sys.path[:] = [
    p for p in sys.path if Path(p or ".").resolve() != REPO_ROOT / "tools"
]
sys.modules.pop("profile", None)

import cProfile  # noqa: E402
import pstats  # noqa: E402

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.hpl import HplConfig, run_hpl  # noqa: E402
from repro.kernel.perf import PerfEventAttr  # noqa: E402
from repro.kernel.perf.subsystem import PerfIoctl  # noqa: E402
from repro.sim.task import Program, SimThread  # noqa: E402
from repro.sim.workload import ComputePhase, PhaseRates, constant_rates  # noqa: E402
from repro.system import System  # noqa: E402

MACHINE = "raptor-lake-i7-13700"
RATES = constant_rates(
    PhaseRates(ipc=2.0, llc_refs_per_instr=0.01, llc_miss_rate=0.5)
)


def scenario_hpl(engine: str) -> None:
    """The small HPL run the bench suite times (n=4608, nb=192)."""
    system = System(MACHINE, dt_s=0.01, engine=engine)
    result = run_hpl(
        system,
        HplConfig(n=4608, nb=192),
        variant="intel",
        cpus=system.topology.primary_threads(),
    )
    assert result.gflops > 0


def scenario_ticks(engine: str) -> None:
    """2000 fully loaded ticks with live perf counters on every thread."""
    system = System(MACHINE, dt_s=0.001, engine=engine)
    threads = [
        system.machine.spawn(
            SimThread(f"w{cpu}", Program([ComputePhase(1e12, RATES)]), affinity={cpu})
        )
        for cpu in system.topology.primary_threads()
    ]
    for t in threads:
        for pmu in ("cpu_core", "cpu_atom"):
            ptype = system.perf.registry.by_name[pmu].type
            fd = system.perf.perf_event_open(  # repro-lint: disable=PAPI-FD-LEAK
                PerfEventAttr(type=ptype, config=0x00C0), pid=t.tid, cpu=-1
            )
            system.perf.ioctl(fd, PerfIoctl.ENABLE)
    system.machine.run_ticks(2000)


SCENARIOS = {
    "hpl": scenario_hpl,
    "ticks": scenario_ticks,
}


def profile_scenario(
    name: str, engine: str, top: int, dump: Path | None = None
) -> None:
    fn = SCENARIOS[name]
    prof = cProfile.Profile()
    prof.enable()
    fn(engine)
    prof.disable()
    print(f"=== {name} (engine={engine}) ===")
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    if dump is not None:
        stats.dump_stats(str(dump))
        print(f"raw stats written to {dump}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scenario",
        choices=[*SCENARIOS, "all"],
        help="canned workload to profile ('all' runs every scenario)",
    )
    parser.add_argument(
        "--engine",
        default="events",
        choices=("ticks", "macro", "events"),
        help="engine mode to drive the scenario with (default: events)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=25,
        help="rows of the pstats table to print (default: 25)",
    )
    parser.add_argument(
        "--dump",
        type=Path,
        default=None,
        help="also write raw pstats data to this file",
    )
    args = parser.parse_args(argv)
    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    for name in names:
        profile_scenario(name, args.engine, args.top, args.dump)
    return 0


if __name__ == "__main__":
    sys.exit(main())
