#!/usr/bin/env python3
"""Ground-truth event validation scorecard CLI.

Runs the workload x machine x event validation matrix (see
``src/repro/validate/``) and prints per-event accuracy classes::

    python tools/validate.py                      # all preset machines
    python tools/validate.py --machines raptor-lake-i7-13700
    python tools/validate.py --strict             # any 'broken' -> exit 1
    python tools/validate.py --engines ticks,macro,events
    python tools/validate.py --json scorecard.json
    python tools/validate.py --selftest           # seeded-bug mutation test

``--engines`` additionally checks that accuracy classes are
bit-identical across the requested engines (the parity law extended to
the measurement stack).  ``--selftest`` arms the deliberate kernel
decode bug behind ``REPRO_VALIDATE_SELFTEST`` and exits 2 unless the
harness reports it as ``broken`` — a mutation test of the validator.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import render_table  # noqa: E402
from repro.hw.machines import MACHINE_PRESETS  # noqa: E402
from repro.validate.harness import (  # noqa: E402
    SELFTEST_ENV,
    Accuracy,
    run_validation,
    selftest_detected,
)


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="validate native events against analytic ground truth"
    )
    parser.add_argument(
        "--machines",
        default="all",
        help="comma-separated machine presets, or 'all' (default)",
    )
    parser.add_argument(
        "--engines",
        default=None,
        help="comma-separated engines to cross-check (ticks,macro,events); "
        "default: single auto-selected engine",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-mux",
        action="store_true",
        help="skip the deliberately multiplexed run",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write scorecards as JSON"
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any event classifies 'broken'",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="arm the seeded counter bug and require its detection",
    )
    parser.add_argument(
        "--per-event", action="store_true", help="print every event row"
    )
    return parser.parse_args(argv)


def _machines(arg: str) -> list[str]:
    if arg == "all":
        return sorted(MACHINE_PRESETS)
    names = [m.strip() for m in arg.split(",") if m.strip()]
    for name in names:
        if name not in MACHINE_PRESETS:
            raise SystemExit(
                f"unknown machine {name!r}; known: {sorted(MACHINE_PRESETS)}"
            )
    return names


def _run_selftest(args: argparse.Namespace) -> int:
    machine = _machines(args.machines)[0]
    old = os.environ.get(SELFTEST_ENV)
    os.environ[SELFTEST_ENV] = "1"
    try:
        card = run_validation(
            machine, seed=args.seed, include_mux=not args.no_mux
        )
    finally:
        if old is None:
            del os.environ[SELFTEST_ENV]
        else:
            os.environ[SELFTEST_ENV] = old
    detected = selftest_detected(card)
    broken = [r.event for r in card.broken()]
    print(f"selftest on {machine}: seeded decode bug, broken rows: {broken}")
    if not detected:
        print("SELFTEST FAILED: the harness did not flag the seeded bug")
        return 2
    clean = run_validation(machine, seed=args.seed, include_mux=not args.no_mux)
    if clean.broken():
        print("SELFTEST FAILED: broken rows without the seeded bug")
        return 2
    print("selftest OK: bug detected as 'broken', clean run has none")
    return 0


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    if args.selftest:
        return _run_selftest(args)

    engines = (
        [e.strip() for e in args.engines.split(",") if e.strip()]
        if args.engines
        else [None]
    )
    summary_rows = []
    cards = {}
    parity_ok = True
    any_broken = False
    for machine in _machines(args.machines):
        maps = {}
        for engine in engines:
            card = run_validation(
                machine,
                engine=engine,
                seed=args.seed,
                include_mux=not args.no_mux,
            )
            maps[card.engine] = card.class_map()
            cards[machine] = card
        first = next(iter(maps.values()))
        machine_parity = all(m == first for m in maps.values())
        parity_ok = parity_ok and machine_parity
        card = cards[machine]
        counts = card.counts()
        any_broken = any_broken or counts["broken"] > 0
        summary_rows.append(
            [
                machine,
                str(len(card.rows)),
                str(counts[Accuracy.EXACT.value]),
                str(counts[Accuracy.PROPORTIONAL.value]),
                str(counts[Accuracy.NOISY.value]),
                str(counts[Accuracy.BROKEN.value]),
                "yes" if machine_parity else "NO",
            ]
        )
        if args.per_event:
            for row in card.rows:
                mux = " [mux]" if row.multiplexed else ""
                print(
                    f"  {machine} {row.pmu:12s} {row.event:44s}"
                    f"{mux:6s} {row.accuracy.value}"
                )
    print(
        render_table(
            [
                "machine",
                "events",
                "exact",
                "proportional",
                "noisy",
                "broken",
                "engine-parity",
            ],
            summary_rows,
        )
    )
    if args.json:
        payload = {m: c.to_dict() for m, c in cards.items()}
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"scorecards written to {args.json}")
    if not parity_ok:
        print("FAIL: accuracy classes differ across engines")
        return 1
    if args.strict and any_broken:
        print("FAIL (--strict): some events classified 'broken'")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
