#!/usr/bin/env python3
"""repro-lint launcher.

Equivalent to ``PYTHONPATH=src python -m repro.analysis`` but runnable
from anywhere in the repo without environment setup::

    python tools/lint.py [--strict] [--json] [paths...]
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--root" not in argv:
        argv = ["--root", str(REPO_ROOT), *argv]
    sys.exit(main(argv))
